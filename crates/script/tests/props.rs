//! Property tests for the condition language: the lexer/parser/evaluator
//! must be total (no panics on any input) and algebraically sane.

use proptest::prelude::*;

use vgbl_script::action::split_args;
use vgbl_script::{eval, eval_str, parse_expr, Expr, MapEnv, Value};

proptest! {
    #[test]
    fn lexer_and_parser_total_on_any_unicode(src in "\\PC{0,60}") {
        // Must never panic; errors are fine.
        let _ = parse_expr(&src);
    }

    #[test]
    fn split_args_total(src in "\\PC{0,60}") {
        let _ = split_args(&src);
    }

    #[test]
    fn eval_total_on_parsed_exprs(src in "[a-z0-9 ()+\\-*/%<>=!&|\"]{0,48}") {
        if let Ok(expr) = parse_expr(&src) {
            let mut env = MapEnv::new();
            env.set_var("a", Value::Int(3));
            env.set_var("b", Value::Bool(true));
            // Must never panic — type errors, unknown idents, div-by-zero
            // all surface as Err.
            let _ = eval(&expr, &env);
        }
    }

    #[test]
    fn integer_arithmetic_matches_rust(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let env = MapEnv::new();
        let check = |src: String, expected: i64| {
            assert_eq!(eval_str(&src, &env).unwrap(), Value::Int(expected), "{src}");
        };
        check(format!("{a} + {b}"), a + b);
        check(format!("{a} - {b}"), a - b);
        check(format!("{a} * {b}"), a * b);
        if b != 0 {
            check(format!("{a} / {b}"), a / b);
            check(format!("{a} % {b}"), a % b);
        }
    }

    #[test]
    fn comparison_total_order(a in any::<i32>(), b in any::<i32>()) {
        let env = MapEnv::new();
        let (a, b) = (a as i64, b as i64);
        let results: Vec<bool> = ["<", "<=", ">", ">=", "==", "!="]
            .iter()
            .map(|op| {
                eval_str(&format!("{a} {op} {b}"), &env)
                    .unwrap()
                    .as_condition()
                    .unwrap()
            })
            .collect();
        prop_assert_eq!(results[0], a < b);
        prop_assert_eq!(results[1], a <= b);
        prop_assert_eq!(results[2], a > b);
        prop_assert_eq!(results[3], a >= b);
        prop_assert_eq!(results[4], a == b);
        prop_assert_eq!(results[5], a != b);
    }

    #[test]
    fn boolean_algebra_laws(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        let mut env = MapEnv::new();
        env.set_var("a", Value::Bool(a));
        env.set_var("b", Value::Bool(b));
        env.set_var("c", Value::Bool(c));
        let run = |src: &str| {
            eval_str(src, &env).unwrap().as_condition().unwrap()
        };
        // De Morgan.
        prop_assert_eq!(run("!(a && b)"), run("!a || !b"));
        prop_assert_eq!(run("!(a || b)"), run("!a && !b"));
        // Distribution.
        prop_assert_eq!(run("a && (b || c)"), run("a && b || a && c"));
        // Double negation.
        prop_assert_eq!(run("!!a"), a);
    }

    #[test]
    fn display_parse_fixpoint(depth_seed in any::<u64>()) {
        // Generate a deterministic expression from the seed, then check
        // Display → parse is the identity, and is itself a fixpoint.
        let mut s = depth_seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as u32
        };
        fn gen(next: &mut impl FnMut() -> u32, depth: u32) -> String {
            if depth == 0 {
                return match next() % 4 {
                    0 => format!("{}", (next() % 1000) as i64),
                    1 => "true".into(),
                    2 => "x_var".into(),
                    _ => "\"str\"".into(),
                };
            }
            match next() % 6 {
                0 => format!("({} + {})", gen(next, depth - 1), gen(next, depth - 1)),
                1 => format!("({} && {})", gen(next, depth - 1), gen(next, depth - 1)),
                2 => format!("!({})", gen(next, depth - 1)),
                3 => format!("f({}, {})", gen(next, depth - 1), gen(next, depth - 1)),
                4 => format!("({} == {})", gen(next, depth - 1), gen(next, depth - 1)),
                _ => format!("-({})", gen(next, depth - 1)),
            }
        }
        let src = gen(&mut next, 3);
        let e1: Expr = parse_expr(&src).unwrap();
        let printed = e1.to_string();
        let e2 = parse_expr(&printed).unwrap();
        prop_assert_eq!(&e2, &e1);
        prop_assert_eq!(e2.to_string(), printed);
    }

    #[test]
    fn node_count_positive_and_vars_subset(src in "[a-z ()+<>0-9&|!]{1,32}") {
        if let Ok(expr) = parse_expr(&src) {
            prop_assert!(expr.node_count() >= 1);
            for v in expr.variables() {
                prop_assert!(src.contains(&v), "var {} not in {}", v, src);
            }
        }
    }
}
