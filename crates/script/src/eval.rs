//! The expression evaluator.
//!
//! Strictly typed: no implicit coercions, short-circuiting `&&`/`||`,
//! checked integer arithmetic (overflow and division by zero are errors,
//! not panics), and a recursion-depth limit mirroring the parser's.

use crate::ast::{BinOp, Expr, UnOp};
use crate::env::Env;
use crate::error::ScriptError;
use crate::value::Value;
use crate::Result;

/// Depth limit for evaluation (matches the parser's nesting bound).
const MAX_DEPTH: usize = 512;

/// Evaluates `expr` in `env`.
pub fn eval(expr: &Expr, env: &dyn Env) -> Result<Value> {
    eval_depth(expr, env, 0)
}

fn eval_depth(expr: &Expr, env: &dyn Env, depth: usize) -> Result<Value> {
    if depth > MAX_DEPTH {
        return Err(ScriptError::TooDeep);
    }
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Var(name) => env
            .get_var(name)
            .ok_or_else(|| ScriptError::UnknownVariable(name.clone())),
        Expr::Unary { op, expr } => {
            let v = eval_depth(expr, env, depth + 1)?;
            match op {
                UnOp::Not => match v {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(ScriptError::TypeMismatch {
                        message: format!("`!` needs bool, got {}", other.type_name()),
                    }),
                },
                UnOp::Neg => match v {
                    Value::Int(i) => i
                        .checked_neg()
                        .map(Value::Int)
                        .ok_or(ScriptError::TypeMismatch {
                            message: "negation overflow".into(),
                        }),
                    other => Err(ScriptError::TypeMismatch {
                        message: format!("unary `-` needs int, got {}", other.type_name()),
                    }),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::And => {
                let l = eval_depth(lhs, env, depth + 1)?;
                match l {
                    Value::Bool(false) => Ok(Value::Bool(false)),
                    Value::Bool(true) => {
                        let r = eval_depth(rhs, env, depth + 1)?;
                        bool_only("&&", r)
                    }
                    other => Err(ScriptError::TypeMismatch {
                        message: format!("`&&` needs bool, got {}", other.type_name()),
                    }),
                }
            }
            BinOp::Or => {
                let l = eval_depth(lhs, env, depth + 1)?;
                match l {
                    Value::Bool(true) => Ok(Value::Bool(true)),
                    Value::Bool(false) => {
                        let r = eval_depth(rhs, env, depth + 1)?;
                        bool_only("||", r)
                    }
                    other => Err(ScriptError::TypeMismatch {
                        message: format!("`||` needs bool, got {}", other.type_name()),
                    }),
                }
            }
            BinOp::Eq | BinOp::Ne => {
                let l = eval_depth(lhs, env, depth + 1)?;
                let r = eval_depth(rhs, env, depth + 1)?;
                if l.type_name() != r.type_name() {
                    return Err(ScriptError::TypeMismatch {
                        message: format!(
                            "cannot compare {} with {}",
                            l.type_name(),
                            r.type_name()
                        ),
                    });
                }
                let eq = l == r;
                Ok(Value::Bool(if *op == BinOp::Eq { eq } else { !eq }))
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = eval_depth(lhs, env, depth + 1)?.as_int()?;
                let r = eval_depth(rhs, env, depth + 1)?.as_int()?;
                let b = match op {
                    BinOp::Lt => l < r,
                    BinOp::Le => l <= r,
                    BinOp::Gt => l > r,
                    BinOp::Ge => l >= r,
                    _ => unreachable!(),
                };
                Ok(Value::Bool(b))
            }
            BinOp::Add => {
                let l = eval_depth(lhs, env, depth + 1)?;
                let r = eval_depth(rhs, env, depth + 1)?;
                match (l, r) {
                    (Value::Int(a), Value::Int(b)) => a
                        .checked_add(b)
                        .map(Value::Int)
                        .ok_or(ScriptError::TypeMismatch {
                            message: "integer overflow in `+`".into(),
                        }),
                    (Value::Str(a), Value::Str(b)) => Ok(Value::Str(a + &b)),
                    (l, r) => Err(ScriptError::TypeMismatch {
                        message: format!(
                            "`+` needs two ints or two strings, got {} and {}",
                            l.type_name(),
                            r.type_name()
                        ),
                    }),
                }
            }
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let l = eval_depth(lhs, env, depth + 1)?.as_int()?;
                let r = eval_depth(rhs, env, depth + 1)?.as_int()?;
                let out = match op {
                    BinOp::Sub => l.checked_sub(r),
                    BinOp::Mul => l.checked_mul(r),
                    BinOp::Div => {
                        if r == 0 {
                            return Err(ScriptError::DivisionByZero);
                        }
                        l.checked_div(r)
                    }
                    BinOp::Mod => {
                        if r == 0 {
                            return Err(ScriptError::DivisionByZero);
                        }
                        l.checked_rem(r)
                    }
                    _ => unreachable!(),
                };
                out.map(Value::Int).ok_or(ScriptError::TypeMismatch {
                    message: format!("integer overflow in `{op}`"),
                })
            }
        },
        Expr::Call { name, args } => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_depth(a, env, depth + 1)?);
            }
            env.call(name, &values)
        }
    }
}

fn bool_only(op: &str, v: Value) -> Result<Value> {
    match v {
        Value::Bool(_) => Ok(v),
        other => Err(ScriptError::TypeMismatch {
            message: format!("`{op}` needs bool, got {}", other.type_name()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{expect_arity, MapEnv};
    use crate::parser::parse_expr;

    fn env() -> MapEnv {
        let mut e = MapEnv::new();
        e.set_var("score", Value::Int(15));
        e.set_var("alive", Value::Bool(true));
        e.set_var("name", Value::Str("kim".into()));
        e.set_func("has", |args| {
            expect_arity("has", args, 1)?;
            Ok(Value::Bool(args[0].as_str()? == "umbrella"))
        });
        e.set_func("min", |args| {
            expect_arity("min", args, 2)?;
            Ok(Value::Int(args[0].as_int()?.min(args[1].as_int()?)))
        });
        e
    }

    fn run(src: &str) -> Result<Value> {
        eval(&parse_expr(src).unwrap(), &env())
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(run("(1 + 2) * 3").unwrap(), Value::Int(9));
        assert_eq!(run("10 / 3").unwrap(), Value::Int(3));
        assert_eq!(run("10 % 3").unwrap(), Value::Int(1));
        assert_eq!(run("-score").unwrap(), Value::Int(-15));
        assert_eq!(run("10 - 3 - 2").unwrap(), Value::Int(5));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("score >= 10 && score < 20").unwrap(), Value::Bool(true));
        assert_eq!(run("score > 100 || alive").unwrap(), Value::Bool(true));
        assert_eq!(run("!alive").unwrap(), Value::Bool(false));
        assert_eq!(run("name == \"kim\"").unwrap(), Value::Bool(true));
        assert_eq!(run("name != \"lee\"").unwrap(), Value::Bool(true));
        assert_eq!(run("true == false").unwrap(), Value::Bool(false));
    }

    #[test]
    fn string_concat() {
        assert_eq!(run("name + \"!\"").unwrap(), Value::Str("kim!".into()));
    }

    #[test]
    fn function_calls() {
        assert_eq!(run("has(\"umbrella\")").unwrap(), Value::Bool(true));
        assert_eq!(run("has(\"sword\")").unwrap(), Value::Bool(false));
        assert_eq!(run("min(score, 7) + 1").unwrap(), Value::Int(8));
        assert!(matches!(run("nope()"), Err(ScriptError::UnknownFunction(_))));
        assert!(matches!(run("has()"), Err(ScriptError::ArityMismatch { .. })));
    }

    #[test]
    fn short_circuit_skips_rhs() {
        // RHS would error (unknown var) but must never evaluate.
        assert_eq!(run("false && missing").unwrap(), Value::Bool(false));
        assert_eq!(run("true || missing").unwrap(), Value::Bool(true));
        // Without short-circuit the error surfaces.
        assert!(matches!(
            run("true && missing"),
            Err(ScriptError::UnknownVariable(_))
        ));
    }

    #[test]
    fn type_errors() {
        assert!(matches!(run("1 && true"), Err(ScriptError::TypeMismatch { .. })));
        assert!(matches!(run("true + 1"), Err(ScriptError::TypeMismatch { .. })));
        assert!(matches!(run("\"a\" < \"b\""), Err(ScriptError::TypeMismatch { .. })));
        assert!(matches!(run("1 == \"1\""), Err(ScriptError::TypeMismatch { .. })));
        assert!(matches!(run("!1"), Err(ScriptError::TypeMismatch { .. })));
        assert!(matches!(run("-name"), Err(ScriptError::TypeMismatch { .. })));
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(run("1 / 0"), Err(ScriptError::DivisionByZero));
        assert_eq!(run("1 % 0"), Err(ScriptError::DivisionByZero));
        // Guarded by short-circuit, no error:
        assert_eq!(run("false && 1 / 0 == 0").unwrap(), Value::Bool(false));
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        assert!(matches!(
            run("9223372036854775807 + 1"),
            Err(ScriptError::TypeMismatch { .. })
        ));
        assert!(matches!(
            run("9223372036854775807 * 2"),
            Err(ScriptError::TypeMismatch { .. })
        ));
        // i64::MIN is not directly writable (lexer reads magnitude first),
        // but MIN / -1 via arithmetic must not panic either.
        assert!(matches!(
            run("(-9223372036854775807 - 1) / -1"),
            Err(ScriptError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_variable() {
        assert_eq!(run("ghost"), Err(ScriptError::UnknownVariable("ghost".into())));
    }
}
