//! Abstract syntax of the condition language.

use crate::value::Value;
use std::fmt;

/// Binary operators, in one enum so the evaluator can match exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical and (`&&`), short-circuiting.
    And,
    /// Logical or (`||`), short-circuiting.
    Or,
    /// Equality (`==`), defined for same-typed operands.
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Less-than (`<`), integers only.
    Lt,
    /// Less-or-equal (`<=`), integers only.
    Le,
    /// Greater-than (`>`), integers only.
    Gt,
    /// Greater-or-equal (`>=`), integers only.
    Ge,
    /// Addition on integers; concatenation on strings.
    Add,
    /// Subtraction, integers only.
    Sub,
    /// Multiplication, integers only.
    Mul,
    /// Division, integers only; division by zero is an error.
    Div,
    /// Remainder, integers only; modulo zero is an error.
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation (`!`), booleans only.
    Not,
    /// Arithmetic negation (unary `-`), integers only.
    Neg,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A variable reference, resolved by the environment.
    Var(String),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A function call, resolved by the environment.
    Call {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Number of nodes in the tree (used in tests and lints).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Literal(_) | Expr::Var(_) => 1,
            Expr::Unary { expr, .. } => 1 + expr.node_count(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
        }
    }

    /// Collects the names of all variables referenced by the expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Var(name) => out.push(name.clone()),
            Expr::Unary { expr, .. } => expr.collect_vars(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Collects the names of all functions called by the expression.
    pub fn functions(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_fns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_fns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) | Expr::Var(_) => {}
            Expr::Unary { expr, .. } => expr.collect_fns(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_fns(out);
                rhs.collect_fns(out);
            }
            Expr::Call { name, args } => {
                out.push(name.clone());
                for a in args {
                    a.collect_fns(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Emits fully parenthesised source that re-parses to the same tree —
    /// how conditions are persisted in `.vgp` files.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Var(name) => f.write_str(name),
            Expr::Unary { op, expr } => match op {
                UnOp::Not => write!(f, "!({expr})"),
                UnOp::Neg => write!(f, "-({expr})"),
            },
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // has("key") && (score + 1) >= limit
        Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(Expr::Call {
                name: "has".into(),
                args: vec![Expr::Literal(Value::Str("key".into()))],
            }),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Ge,
                lhs: Box::new(Expr::Binary {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::Var("score".into())),
                    rhs: Box::new(Expr::Literal(Value::Int(1))),
                }),
                rhs: Box::new(Expr::Var("limit".into())),
            }),
        }
    }

    #[test]
    fn node_count_counts_all() {
        // && , has(), "key", >=, +, score, 1, limit → 8 nodes.
        assert_eq!(sample().node_count(), 8);
    }

    #[test]
    fn variables_and_functions_dedup_sorted() {
        let e = sample();
        assert_eq!(e.variables(), vec!["limit".to_string(), "score".to_string()]);
        assert_eq!(e.functions(), vec!["has".to_string()]);
    }

    #[test]
    fn display_is_reparseable() {
        let e = sample();
        let s = e.to_string();
        let back = crate::parser::parse_expr(&s).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn display_unary() {
        let e = Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(Expr::Var("x".into())),
        };
        assert_eq!(e.to_string(), "!(x)");
        let e = Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(Expr::Literal(Value::Int(5))),
        };
        assert_eq!(e.to_string(), "-(5)");
    }
}
