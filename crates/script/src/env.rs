//! Evaluation environments.
//!
//! The expression language is deliberately ignorant of the game: variables
//! and functions resolve through an [`Env`] that the runtime implements
//! over live game state (inventory, flags, score, visit history). This
//! module also provides [`MapEnv`], a simple hash-map environment used by
//! tests, the authoring tool's lint pass and the benches.

use crate::error::ScriptError;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;

/// Resolves variables and function calls during evaluation.
pub trait Env {
    /// Resolves a variable. `None` means "not defined".
    fn get_var(&self, name: &str) -> Option<Value>;

    /// Calls a function. Implementations should return
    /// [`ScriptError::UnknownFunction`] for names they do not define and
    /// [`ScriptError::ArityMismatch`] for wrong argument counts.
    fn call(&self, name: &str, args: &[Value]) -> Result<Value>;
}

/// A hash-map-backed environment with optional closure-style functions.
#[derive(Default)]
pub struct MapEnv {
    vars: HashMap<String, Value>,
    #[allow(clippy::type_complexity)]
    funcs: HashMap<String, Box<dyn Fn(&[Value]) -> Result<Value>>>,
}

impl MapEnv {
    /// Creates an empty environment.
    pub fn new() -> MapEnv {
        MapEnv::default()
    }

    /// Defines (or redefines) a variable.
    pub fn set_var(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    /// Defines (or redefines) a function.
    pub fn set_func(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Result<Value> + 'static,
    ) {
        self.funcs.insert(name.into(), Box::new(f));
    }
}

impl std::fmt::Debug for MapEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapEnv")
            .field("vars", &self.vars)
            .field("funcs", &self.funcs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Env for MapEnv {
    fn get_var(&self, name: &str) -> Option<Value> {
        self.vars.get(name).cloned()
    }

    fn call(&self, name: &str, args: &[Value]) -> Result<Value> {
        match self.funcs.get(name) {
            Some(f) => f(args),
            None => Err(ScriptError::UnknownFunction(name.to_owned())),
        }
    }
}

/// Checks the arity of a builtin and returns a typed error on mismatch —
/// a helper for `Env` implementations.
pub fn expect_arity(name: &str, args: &[Value], expected: usize) -> Result<()> {
    if args.len() == expected {
        Ok(())
    } else {
        Err(ScriptError::ArityMismatch {
            name: name.to_owned(),
            expected,
            got: args.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_env_vars() {
        let mut env = MapEnv::new();
        assert_eq!(env.get_var("x"), None);
        env.set_var("x", Value::Int(3));
        assert_eq!(env.get_var("x"), Some(Value::Int(3)));
        env.set_var("x", Value::Bool(false));
        assert_eq!(env.get_var("x"), Some(Value::Bool(false)));
    }

    #[test]
    fn map_env_funcs() {
        let mut env = MapEnv::new();
        env.set_func("double", |args| {
            expect_arity("double", args, 1)?;
            Ok(Value::Int(args[0].as_int()? * 2))
        });
        assert_eq!(env.call("double", &[Value::Int(21)]).unwrap(), Value::Int(42));
        assert!(matches!(
            env.call("double", &[]),
            Err(ScriptError::ArityMismatch { .. })
        ));
        assert!(matches!(
            env.call("nope", &[]),
            Err(ScriptError::UnknownFunction(_))
        ));
    }

    #[test]
    fn debug_lists_function_names() {
        let mut env = MapEnv::new();
        env.set_func("f", |_| Ok(Value::Bool(true)));
        let s = format!("{env:?}");
        assert!(s.contains('f'));
    }
}
