//! # vgbl-script — the VGBL event and condition engine
//!
//! The paper's object editor lets course designers "set the properties and
//! events of objects in video and produce adequate feedback when users
//! trigger them" (§4.2), and knowledge delivery happens "in the process of
//! solving a problem" (§3.2) — i.e. through conditions over game state
//! (items held, flags set, scenarios visited) guarding actions (switch
//! scenario, pop up text/images/web pages, grant items, award bonuses).
//!
//! This crate implements that wiring as a small, fully specified language:
//!
//! * [`value`] — the value model (booleans, integers, strings).
//! * [`lexer`] / [`parser`] / [`ast`] — a boolean/arithmetic expression
//!   language for trigger conditions, e.g.
//!   `has("screwdriver") && !flag("fixed") && score() >= 10`.
//! * [`eval()`] — the evaluator, generic over an [`env::Env`] supplied by
//!   the runtime (which binds `has`, `flag`, `score`, `visited`, …).
//! * [`action`] — the action vocabulary the runtime executes.
//! * [`trigger`] — events (click, drag, key, item use, scenario entry,
//!   timers) paired with a condition and actions.
//!
//! Everything round-trips through text because the `.vgp` project format
//! stores conditions and actions as source strings.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod ast;
pub mod env;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod trigger;
pub mod value;

pub use action::Action;
pub use ast::Expr;
pub use env::{Env, MapEnv};
pub use error::ScriptError;
pub use eval::eval;
pub use parser::parse_expr;
pub use trigger::{EventKind, Trigger, TriggerSet};
pub use value::Value;

/// Result alias for script operations.
pub type Result<T> = std::result::Result<T, ScriptError>;

/// Parses and immediately evaluates `source` in `env` — the one-shot
/// entry point used by the runtime for stored condition strings.
///
/// # Examples
///
/// ```
/// use vgbl_script::{eval_str, MapEnv, Value};
/// use vgbl_script::env::expect_arity;
///
/// let mut env = MapEnv::new();
/// env.set_var("score", Value::Int(12));
/// env.set_func("has", |args| {
///     expect_arity("has", args, 1)?;
///     Ok(Value::Bool(args[0].as_str()? == "fan"))
/// });
///
/// let v = eval_str("has(\"fan\") && score >= 10", &env).unwrap();
/// assert_eq!(v, Value::Bool(true));
/// ```
pub fn eval_str(source: &str, env: &dyn Env) -> Result<Value> {
    let expr = parse_expr(source)?;
    eval(&expr, env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_str_end_to_end() {
        let mut env = MapEnv::new();
        env.set_var("score", Value::Int(12));
        let v = eval_str("score >= 10 && score < 20", &env).unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn eval_str_propagates_parse_errors() {
        let env = MapEnv::new();
        assert!(eval_str("1 +", &env).is_err());
        assert!(eval_str("", &env).is_err());
    }
}
