//! Errors for the scripting engine, with source positions where known.

use std::fmt;

/// Errors from lexing, parsing or evaluating scripts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// A character the lexer does not understand.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Byte offset in the source.
        pos: usize,
    },
    /// A string literal without a closing quote.
    UnterminatedString {
        /// Byte offset where the literal started.
        pos: usize,
    },
    /// An integer literal that does not fit `i64`.
    IntOverflow {
        /// Byte offset of the literal.
        pos: usize,
    },
    /// The parser expected something else.
    Parse {
        /// Human-readable description of what went wrong.
        message: String,
        /// Byte offset of the offending token.
        pos: usize,
    },
    /// A variable the environment does not define.
    UnknownVariable(String),
    /// A function the environment does not define.
    UnknownFunction(String),
    /// Wrong number of arguments to a builtin.
    ArityMismatch {
        /// Function name.
        name: String,
        /// Arguments expected.
        expected: usize,
        /// Arguments provided.
        got: usize,
    },
    /// An operator applied to incompatible operand types.
    TypeMismatch {
        /// Description of the operation and operand types.
        message: String,
    },
    /// Integer division or modulo by zero.
    DivisionByZero,
    /// Expression nesting exceeded the evaluator's depth limit.
    TooDeep,
    /// An action string that does not parse.
    BadAction(String),
    /// A trigger event string that does not parse.
    BadEvent(String),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::UnexpectedChar { ch, pos } => {
                write!(f, "unexpected character {ch:?} at byte {pos}")
            }
            ScriptError::UnterminatedString { pos } => {
                write!(f, "unterminated string literal starting at byte {pos}")
            }
            ScriptError::IntOverflow { pos } => {
                write!(f, "integer literal at byte {pos} overflows i64")
            }
            ScriptError::Parse { message, pos } => write!(f, "parse error at byte {pos}: {message}"),
            ScriptError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            ScriptError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            ScriptError::ArityMismatch { name, expected, got } => {
                write!(f, "function `{name}` expects {expected} argument(s), got {got}")
            }
            ScriptError::TypeMismatch { message } => write!(f, "type mismatch: {message}"),
            ScriptError::DivisionByZero => write!(f, "division by zero"),
            ScriptError::TooDeep => write!(f, "expression nesting too deep"),
            ScriptError::BadAction(s) => write!(f, "cannot parse action: {s}"),
            ScriptError::BadEvent(s) => write!(f, "cannot parse event: {s}"),
        }
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = ScriptError::UnexpectedChar { ch: '§', pos: 3 };
        assert!(e.to_string().contains('§'));
        let e = ScriptError::ArityMismatch { name: "has".into(), expected: 1, got: 2 };
        let s = e.to_string();
        assert!(s.contains("has") && s.contains('1') && s.contains('2'));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&ScriptError::DivisionByZero);
    }
}
