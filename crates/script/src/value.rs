//! The value model of the condition language.

use crate::error::ScriptError;
use std::fmt;

/// A runtime value: boolean, 64-bit integer or string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    Int(i64),
    /// A string.
    Str(String),
}

impl Value {
    /// Human-readable name of the value's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "string",
        }
    }

    /// Interprets the value as a condition result.
    ///
    /// Only booleans may guard triggers — integers and strings are *not*
    /// implicitly truthy, so an authoring typo like `score` (instead of
    /// `score > 0`) is caught instead of silently passing.
    pub fn as_condition(&self) -> Result<bool, ScriptError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ScriptError::TypeMismatch {
                message: format!("condition must be bool, got {}", other.type_name()),
            }),
        }
    }

    /// Extracts an integer or errors with a typed message.
    pub fn as_int(&self) -> Result<i64, ScriptError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ScriptError::TypeMismatch {
                message: format!("expected int, got {}", other.type_name()),
            }),
        }
    }

    /// Extracts a string slice or errors with a typed message.
    pub fn as_str(&self) -> Result<&str, ScriptError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ScriptError::TypeMismatch {
                message: format!("expected string, got {}", other.type_name()),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Bool(true).type_name(), "bool");
        assert_eq!(Value::Int(0).type_name(), "int");
        assert_eq!(Value::Str(String::new()).type_name(), "string");
    }

    #[test]
    fn conditions_require_bool() {
        assert!(Value::Bool(true).as_condition().unwrap());
        assert!(!Value::Bool(false).as_condition().unwrap());
        assert!(Value::Int(1).as_condition().is_err());
        assert!(Value::Str("true".into()).as_condition().is_err());
    }

    #[test]
    fn typed_extractors() {
        assert_eq!(Value::Int(9).as_int().unwrap(), 9);
        assert!(Value::Bool(true).as_int().is_err());
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
        assert!(Value::Int(1).as_str().is_err());
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from(-3i64).to_string(), "-3");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
    }
}
