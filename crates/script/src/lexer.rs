//! Tokeniser for the condition language.

use crate::error::ScriptError;
use crate::Result;

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub pos: usize,
}

/// Token kinds of the condition language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// A double-quoted string literal (escapes `\"`, `\\`, `\n`, `\t`).
    Str(String),
    /// An identifier or keyword (`true`/`false` are resolved by the parser).
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
}

/// Tokenises `source` completely.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos: start });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos: start });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos: start });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, pos: start });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, pos: start });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, pos: start });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, pos: start });
                i += 1;
            }
            '%' => {
                tokens.push(Token { kind: TokenKind::Percent, pos: start });
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token { kind: TokenKind::AndAnd, pos: start });
                    i += 2;
                } else {
                    return Err(ScriptError::UnexpectedChar { ch: '&', pos: start });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token { kind: TokenKind::OrOr, pos: start });
                    i += 2;
                } else {
                    return Err(ScriptError::UnexpectedChar { ch: '|', pos: start });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::NotEq, pos: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Bang, pos: start });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::EqEq, pos: start });
                    i += 2;
                } else {
                    return Err(ScriptError::UnexpectedChar { ch: '=', pos: start });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Le, pos: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, pos: start });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, pos: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, pos: start });
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(ScriptError::UnterminatedString { pos: start }),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes
                                .get(i + 1)
                                .ok_or(ScriptError::UnterminatedString { pos: start })?;
                            s.push(match esc {
                                b'"' => '"',
                                b'\\' => '\\',
                                b'n' => '\n',
                                b't' => '\t',
                                other => {
                                    return Err(ScriptError::UnexpectedChar {
                                        ch: *other as char,
                                        pos: i + 1,
                                    })
                                }
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            // Multi-byte UTF-8: copy the full scalar.
                            if b < 0x80 {
                                s.push(b as char);
                                i += 1;
                            } else {
                                let ch = source[i..]
                                    .chars()
                                    .next()
                                    .expect("valid utf-8 in source");
                                s.push(ch);
                                i += ch.len_utf8();
                            }
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), pos: start });
            }
            '0'..='9' => {
                let mut end = i;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                let text = &source[i..end];
                let v: i64 = text
                    .parse()
                    .map_err(|_| ScriptError::IntOverflow { pos: start })?;
                tokens.push(Token { kind: TokenKind::Int(v), pos: start });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(source[i..end].to_owned()),
                    pos: start,
                });
                i = end;
            }
            other => return Err(ScriptError::UnexpectedChar { ch: other, pos: start }),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("&& || ! == != < <= > >= + - * / % ( ) ,"),
            vec![
                AndAnd, OrOr, Bang, EqEq, NotEq, Lt, Le, Gt, Ge, Plus, Minus, Star, Slash,
                Percent, LParen, RParen, Comma
            ]
        );
    }

    #[test]
    fn lexes_literals_and_idents() {
        assert_eq!(
            kinds(r#"has("key") && score >= 42"#),
            vec![
                Ident("has".into()),
                LParen,
                Str("key".into()),
                RParen,
                AndAnd,
                Ident("score".into()),
                Ge,
                Int(42),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\"b\\c\nd\te""#), vec![Str("a\"b\\c\nd\te".into())]);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds(r#""傘 umbrella""#), vec![Str("傘 umbrella".into())]);
    }

    #[test]
    fn reports_positions() {
        let toks = lex("a  && b").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
        assert_eq!(toks[2].pos, 6);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(lex("a & b"), Err(ScriptError::UnexpectedChar { ch: '&', .. })));
        assert!(matches!(lex("a | b"), Err(ScriptError::UnexpectedChar { ch: '|', .. })));
        assert!(matches!(lex("a = b"), Err(ScriptError::UnexpectedChar { ch: '=', .. })));
        assert!(matches!(lex("\"abc"), Err(ScriptError::UnterminatedString { .. })));
        assert!(matches!(lex("\"abc\\"), Err(ScriptError::UnterminatedString { .. })));
        assert!(matches!(lex("\"a\\q\""), Err(ScriptError::UnexpectedChar { .. })));
        assert!(matches!(lex("99999999999999999999"), Err(ScriptError::IntOverflow { .. })));
        assert!(matches!(lex("a # b"), Err(ScriptError::UnexpectedChar { ch: '#', .. })));
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("  \t\n ").unwrap().is_empty());
    }

    #[test]
    fn negative_numbers_are_minus_then_int() {
        assert_eq!(kinds("-5"), vec![Minus, Int(5)]);
    }
}
