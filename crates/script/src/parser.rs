//! Recursive-descent parser for the condition language.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr     := or
//! or       := and ( "||" and )*
//! and      := cmp ( "&&" cmp )*
//! cmp      := add ( ("==" | "!=" | "<" | "<=" | ">" | ">=") add )?
//! add      := mul ( ("+" | "-") mul )*
//! mul      := unary ( ("*" | "/" | "%") unary )*
//! unary    := ("!" | "-") unary | primary
//! primary  := INT | STRING | "true" | "false"
//!           | IDENT "(" args? ")" | IDENT | "(" expr ")"
//! args     := expr ( "," expr )*
//! ```
//!
//! Comparison is deliberately non-associative (`a < b < c` is a parse
//! error) — chained comparisons are a classic authoring bug.

use crate::ast::{BinOp, Expr, UnOp};
use crate::error::ScriptError;
use crate::lexer::{lex, Token, TokenKind};
use crate::value::Value;
use crate::Result;

/// Maximum rule-recursion depth the parser accepts, bounding stack use on
/// hostile input. Each parenthesis level costs ~7 rule frames, so this
/// allows roughly 70 levels of literal nesting.
const MAX_DEPTH: usize = 512;

/// Parses a complete expression; trailing tokens are an error.
pub fn parse_expr(source: &str) -> Result<Expr> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    if p.tokens.is_empty() {
        return Err(ScriptError::Parse { message: "empty expression".into(), pos: 0 });
    }
    let expr = p.expr()?;
    if let Some(tok) = p.peek() {
        return Err(ScriptError::Parse {
            message: format!("unexpected trailing token {:?}", tok.kind),
            pos: tok.pos,
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<()> {
        match self.advance() {
            Some(t) if t.kind == kind => Ok(()),
            Some(t) => Err(ScriptError::Parse {
                message: format!("expected {what}, found {:?}", t.kind),
                pos: t.pos,
            }),
            None => Err(ScriptError::Parse {
                message: format!("expected {what}, found end of input"),
                pos: self.end_pos(),
            }),
        }
    }

    fn end_pos(&self) -> usize {
        self.tokens.last().map(|t| t.pos + 1).unwrap_or(0)
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(ScriptError::TooDeep)
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or()
    }

    fn or(&mut self) -> Result<Expr> {
        self.enter()?;
        let mut lhs = self.and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        self.leave();
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr> {
        self.enter()?;
        let mut lhs = self.cmp()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        self.leave();
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr> {
        self.enter()?;
        let lhs = self.add()?;
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::EqEq) => Some(BinOp::Eq),
            Some(TokenKind::NotEq) => Some(BinOp::Ne),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        let result = if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add()?;
            // Reject chained comparison explicitly for a better message.
            if let Some(t) = self.peek() {
                if matches!(
                    t.kind,
                    TokenKind::EqEq
                        | TokenKind::NotEq
                        | TokenKind::Lt
                        | TokenKind::Le
                        | TokenKind::Gt
                        | TokenKind::Ge
                ) {
                    return Err(ScriptError::Parse {
                        message: "comparison operators cannot be chained".into(),
                        pos: t.pos,
                    });
                }
            }
            Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
        } else {
            lhs
        };
        self.leave();
        Ok(result)
    }

    fn add(&mut self) -> Result<Expr> {
        self.enter()?;
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        self.leave();
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr> {
        self.enter()?;
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        self.leave();
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        self.enter()?;
        let result = if self.eat(&TokenKind::Bang) {
            Expr::Unary { op: UnOp::Not, expr: Box::new(self.unary()?) }
        } else if self.eat(&TokenKind::Minus) {
            Expr::Unary { op: UnOp::Neg, expr: Box::new(self.unary()?) }
        } else {
            self.primary()?
        };
        self.leave();
        Ok(result)
    }

    fn primary(&mut self) -> Result<Expr> {
        let tok = self.advance().ok_or_else(|| ScriptError::Parse {
            message: "expected expression, found end of input".into(),
            pos: self.end_pos(),
        })?;
        match tok.kind {
            TokenKind::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            TokenKind::Ident(name) => {
                if name == "true" {
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name == "false" {
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(TokenKind::RParen, "`)`")?;
                            break;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::LParen => {
                let inner = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            other => Err(ScriptError::Parse {
                message: format!("expected expression, found {other:?}"),
                pos: tok.pos,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Expr {
        parse_expr(src).unwrap()
    }

    #[test]
    fn precedence_or_lowest() {
        // a || b && c parses as a || (b && c)
        let e = p("a || b && c");
        match e {
            Expr::Binary { op: BinOp::Or, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn precedence_arithmetic() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let e = p("1 + 2 * 3");
        match e {
            Expr::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn comparison_binds_tighter_than_and() {
        let e = p("x > 1 && y < 2");
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn left_associativity() {
        // 10 - 3 - 2 parses as (10 - 3) - 2
        let e = p("10 - 3 - 2");
        match e {
            Expr::Binary { op: BinOp::Sub, lhs, rhs } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::Sub, .. }));
                assert_eq!(*rhs, Expr::Literal(Value::Int(2)));
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn parens_override() {
        let e = p("(1 + 2) * 3");
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn keywords_and_calls() {
        assert_eq!(p("true"), Expr::Literal(Value::Bool(true)));
        assert_eq!(p("false"), Expr::Literal(Value::Bool(false)));
        assert_eq!(
            p("f()"),
            Expr::Call { name: "f".into(), args: vec![] }
        );
        assert_eq!(
            p(r#"has("key", 2)"#),
            Expr::Call {
                name: "has".into(),
                args: vec![
                    Expr::Literal(Value::Str("key".into())),
                    Expr::Literal(Value::Int(2)),
                ],
            }
        );
    }

    #[test]
    fn nested_calls() {
        let e = p("max(min(a, b), c + 1)");
        assert!(matches!(e, Expr::Call { ref name, ref args } if name == "max" && args.len() == 2));
    }

    #[test]
    fn unary_composition() {
        assert_eq!(
            p("!!x"),
            Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(Expr::Var("x".into())),
                }),
            }
        );
        assert!(matches!(p("--3"), Expr::Unary { op: UnOp::Neg, .. }));
    }

    #[test]
    fn rejects_chained_comparison() {
        let err = parse_expr("1 < 2 < 3").unwrap_err();
        assert!(err.to_string().contains("chained"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("(1").is_err());
        assert!(parse_expr("1)").is_err());
        assert!(parse_expr("f(1,").is_err());
        assert!(parse_expr("f(1 2)").is_err());
        assert!(parse_expr("* 3").is_err());
        assert!(parse_expr("1 2").is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = format!("{}1{}", "(".repeat(500), ")".repeat(500));
        assert_eq!(parse_expr(&deep).unwrap_err(), ScriptError::TooDeep);
        let ok = format!("{}1{}", "(".repeat(50), ")".repeat(50));
        assert!(parse_expr(&ok).is_ok());
    }
}
