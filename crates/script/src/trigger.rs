//! Events, triggers and trigger dispatch.
//!
//! A [`Trigger`] is the paper's "event of an object" (§4.2): an input
//! [`EventKind`] (click, drag-to-inventory, item use, key press, scenario
//! entry, timer), an optional guard condition over game state, and the
//! ordered [`Action`]s to run when it fires. [`TriggerSet`] is the
//! per-object collection with the dispatch rule the runtime calls on every
//! input event.

use crate::action::{split_args, Action};
use crate::ast::Expr;
use crate::env::Env;
use crate::error::ScriptError;
use crate::parser::parse_expr;
use crate::Result;
use std::fmt;

/// The kinds of events a trigger can listen for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A mouse click on the object ("examine").
    Click,
    /// The object was dragged to the inventory window.
    Drag,
    /// An inventory item was used on the object.
    Use(String),
    /// A key was pressed while the object has focus.
    Key(char),
    /// The scenario containing the object was entered.
    Enter,
    /// `ms` milliseconds elapsed since scenario entry.
    Timer(u64),
}

impl EventKind {
    /// Parses the textual event form used by `.vgp` files:
    /// `click`, `drag`, `use <item>`, `key <c>`, `enter`, `timer <ms>`.
    pub fn parse(source: &str) -> Result<EventKind> {
        use crate::action::Arg;
        let bad = || ScriptError::BadEvent(source.to_owned());
        let args = split_args(source).map_err(|_| bad())?;
        // `key <c>` accepts a bare or quoted single character (quotes are
        // needed for `"`, `\` and whitespace keys).
        if let [Arg::Word(w), k] = args.as_slice() {
            if w == "key" {
                let s = match k {
                    Arg::Word(s) | Arg::Quoted(s) => s,
                };
                let mut chars = s.chars();
                return match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(EventKind::Key(c)),
                    _ => Err(bad()),
                };
            }
        }
        let words: Vec<&str> = args
            .iter()
            .map(|a| match a {
                Arg::Word(w) => Ok(w.as_str()),
                Arg::Quoted(_) => Err(bad()),
            })
            .collect::<Result<_>>()?;
        match words.as_slice() {
            ["click"] => Ok(EventKind::Click),
            ["drag"] => Ok(EventKind::Drag),
            ["use", item] => Ok(EventKind::Use((*item).to_owned())),
            ["enter"] => Ok(EventKind::Enter),
            ["timer", ms] => Ok(EventKind::Timer(ms.parse().map_err(|_| bad())?)),
            _ => Err(bad()),
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Click => f.write_str("click"),
            EventKind::Drag => f.write_str("drag"),
            EventKind::Use(item) => write!(f, "use {item}"),
            EventKind::Key(c) => {
                if c.is_whitespace() || *c == '"' || *c == '\\' {
                    // Quote keys the bare form cannot carry.
                    let escaped = match c {
                        '"' => "\\\"".to_owned(),
                        '\\' => "\\\\".to_owned(),
                        '\n' => "\\n".to_owned(),
                        '\t' => "\\t".to_owned(),
                        other => other.to_string(),
                    };
                    write!(f, "key \"{escaped}\"")
                } else {
                    write!(f, "key {c}")
                }
            }
            EventKind::Enter => f.write_str("enter"),
            EventKind::Timer(ms) => write!(f, "timer {ms}"),
        }
    }
}

/// An event → condition → actions rule attached to an object.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    /// The event this trigger listens for.
    pub event: EventKind,
    /// Optional guard; `None` always fires.
    pub condition: Option<Expr>,
    /// Actions executed, in order, when the trigger fires.
    pub actions: Vec<Action>,
}

impl Trigger {
    /// A trigger without a condition.
    pub fn unconditional(event: EventKind, actions: Vec<Action>) -> Trigger {
        Trigger { event, condition: None, actions }
    }

    /// A trigger guarded by `condition` source text.
    ///
    /// # Errors
    /// Propagates parse errors from the condition.
    pub fn guarded(event: EventKind, condition: &str, actions: Vec<Action>) -> Result<Trigger> {
        Ok(Trigger { event, condition: Some(parse_expr(condition)?), actions })
    }

    /// Whether this trigger matches the event and its guard passes in
    /// `env`. Guard type errors propagate so authoring bugs surface.
    pub fn fires(&self, event: &EventKind, env: &dyn Env) -> Result<bool> {
        if self.event != *event {
            return Ok(false);
        }
        match &self.condition {
            None => Ok(true),
            Some(cond) => crate::eval::eval(cond, env)?.as_condition(),
        }
    }
}

/// The ordered set of triggers attached to an interactive object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriggerSet {
    triggers: Vec<Trigger>,
}

impl TriggerSet {
    /// An empty set.
    pub fn new() -> TriggerSet {
        TriggerSet::default()
    }

    /// Appends a trigger (authoring order = dispatch order).
    pub fn push(&mut self, trigger: Trigger) {
        self.triggers.push(trigger);
    }

    /// All triggers, in dispatch order.
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// Mutable access for the object editor.
    pub fn triggers_mut(&mut self) -> &mut Vec<Trigger> {
        &mut self.triggers
    }

    /// Number of triggers.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// True when no triggers are attached.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Dispatches `event`: collects the actions of every matching trigger
    /// whose guard passes, in authoring order.
    pub fn dispatch(&self, event: &EventKind, env: &dyn Env) -> Result<Vec<Action>> {
        let mut out = Vec::new();
        for t in &self.triggers {
            if t.fires(event, env)? {
                out.extend(t.actions.iter().cloned());
            }
        }
        Ok(out)
    }

    /// The distinct events this set listens for (for authoring UI).
    pub fn listened_events(&self) -> Vec<EventKind> {
        let mut out: Vec<EventKind> = Vec::new();
        for t in &self.triggers {
            if !out.contains(&t.event) {
                out.push(t.event.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MapEnv;
    use crate::value::Value;

    fn env_with_score(score: i64) -> MapEnv {
        let mut env = MapEnv::new();
        env.set_var("score", Value::Int(score));
        env
    }

    #[test]
    fn event_parse_display_roundtrip() {
        for e in [
            EventKind::Click,
            EventKind::Drag,
            EventKind::Use("screwdriver".into()),
            EventKind::Key('e'),
            EventKind::Enter,
            EventKind::Timer(1500),
        ] {
            let s = e.to_string();
            assert_eq!(EventKind::parse(&s).unwrap(), e, "source {s}");
        }
    }

    #[test]
    fn event_parse_rejects_malformed() {
        for bad in ["", "click now", "use", "key", "key ab", "timer", "timer x", "hover", "use \"q\""] {
            assert!(EventKind::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unconditional_fires_on_match_only() {
        let t = Trigger::unconditional(EventKind::Click, vec![Action::AddScore(1)]);
        let env = MapEnv::new();
        assert!(t.fires(&EventKind::Click, &env).unwrap());
        assert!(!t.fires(&EventKind::Drag, &env).unwrap());
        assert!(!t.fires(&EventKind::Use("x".into()), &env).unwrap());
    }

    #[test]
    fn use_events_match_by_item() {
        let t = Trigger::unconditional(EventKind::Use("ram".into()), vec![]);
        let env = MapEnv::new();
        assert!(t.fires(&EventKind::Use("ram".into()), &env).unwrap());
        assert!(!t.fires(&EventKind::Use("rom".into()), &env).unwrap());
    }

    #[test]
    fn guard_gates_firing() {
        let t = Trigger::guarded(EventKind::Click, "score >= 10", vec![Action::End("win".into())])
            .unwrap();
        assert!(!t.fires(&EventKind::Click, &env_with_score(5)).unwrap());
        assert!(t.fires(&EventKind::Click, &env_with_score(10)).unwrap());
    }

    #[test]
    fn guard_errors_propagate() {
        let t = Trigger::guarded(EventKind::Click, "score", vec![]).unwrap();
        // Non-bool condition is a type error at dispatch time.
        assert!(t.fires(&EventKind::Click, &env_with_score(1)).is_err());
        let t = Trigger::guarded(EventKind::Click, "missing_var", vec![]).unwrap();
        assert!(t.fires(&EventKind::Click, &MapEnv::new()).is_err());
        assert!(Trigger::guarded(EventKind::Click, "((", vec![]).is_err());
    }

    #[test]
    fn dispatch_collects_in_order() {
        let mut set = TriggerSet::new();
        set.push(Trigger::unconditional(EventKind::Click, vec![Action::AddScore(1)]));
        set.push(
            Trigger::guarded(EventKind::Click, "score >= 10", vec![Action::AddScore(100)])
                .unwrap(),
        );
        set.push(Trigger::unconditional(EventKind::Click, vec![Action::GoTo("next".into())]));
        set.push(Trigger::unconditional(EventKind::Drag, vec![Action::GiveItem("it".into())]));

        let low = set.dispatch(&EventKind::Click, &env_with_score(0)).unwrap();
        assert_eq!(low, vec![Action::AddScore(1), Action::GoTo("next".into())]);

        let high = set.dispatch(&EventKind::Click, &env_with_score(10)).unwrap();
        assert_eq!(
            high,
            vec![Action::AddScore(1), Action::AddScore(100), Action::GoTo("next".into())]
        );

        let drag = set.dispatch(&EventKind::Drag, &env_with_score(0)).unwrap();
        assert_eq!(drag, vec![Action::GiveItem("it".into())]);
    }

    #[test]
    fn listened_events_dedup_in_order() {
        let mut set = TriggerSet::new();
        set.push(Trigger::unconditional(EventKind::Click, vec![]));
        set.push(Trigger::unconditional(EventKind::Drag, vec![]));
        set.push(Trigger::unconditional(EventKind::Click, vec![]));
        assert_eq!(set.listened_events(), vec![EventKind::Click, EventKind::Drag]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert!(TriggerSet::new().is_empty());
    }
}
