//! The action vocabulary.
//!
//! Actions are what triggers *do*: change the play sequence ("switch to
//! other video segments"), pop up feedback ("text messages, images and
//! webpage are also popped up", §2.1), manipulate the backpack (§3.1),
//! grant rewards (§3.3) and speak NPC lines. The runtime interprets them;
//! the authoring tool and the `.vgp` format store them in the textual form
//! defined by [`Action::parse`] / `Display`, which round-trip exactly.

use crate::error::ScriptError;
use crate::Result;
use std::fmt;

/// One executable effect of a fired trigger.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Switch playback to another scenario (by scenario name).
    GoTo(String),
    /// Pop up a text message (knowledge delivery / object descriptions).
    ShowText(String),
    /// Pop up an image asset (by asset name).
    ShowImage(String),
    /// Open a web page in the player's browser pane.
    OpenUrl(String),
    /// Put an item into the player's backpack.
    GiveItem(String),
    /// Remove an item from the backpack (consume it).
    TakeItem(String),
    /// Set a named boolean flag.
    SetFlag(String, bool),
    /// Add to (or, when negative, subtract from) the score.
    AddScore(i64),
    /// Grant a named achievement object — the special inventory objects
    /// that "represent the achievements which players have" (§3.3).
    Award(String),
    /// An NPC speaks a line ("non player characters give fixed
    /// conversation to guide players", §3.1).
    Say {
        /// The speaking NPC's name.
        npc: String,
        /// The spoken line.
        line: String,
    },
    /// End the game session with a named outcome.
    End(String),
}

impl Action {
    /// Parses the textual action form used by `.vgp` files, e.g.
    /// `goto market`, `text "Look closer…"`, `flag fixed on`,
    /// `say teacher "The computer is broken."`.
    pub fn parse(source: &str) -> Result<Action> {
        let args = split_args(source)?;
        let bad = || ScriptError::BadAction(source.to_owned());
        let mut it = args.iter();
        let verb = it.next().ok_or_else(bad)?;
        let action = match (verb.as_word().ok_or_else(bad)?, it.as_slice()) {
            ("goto", [Arg::Word(s)]) => Action::GoTo(s.clone()),
            ("text", [Arg::Quoted(s)]) => Action::ShowText(s.clone()),
            ("image", [Arg::Word(s)]) => Action::ShowImage(s.clone()),
            ("url", [Arg::Quoted(s)]) => Action::OpenUrl(s.clone()),
            ("give", [Arg::Word(s)]) => Action::GiveItem(s.clone()),
            ("take", [Arg::Word(s)]) => Action::TakeItem(s.clone()),
            ("flag", [Arg::Word(name), Arg::Word(state)]) => match state.as_str() {
                "on" => Action::SetFlag(name.clone(), true),
                "off" => Action::SetFlag(name.clone(), false),
                _ => return Err(bad()),
            },
            ("score", [Arg::Word(n)]) => {
                Action::AddScore(n.parse::<i64>().map_err(|_| bad())?)
            }
            ("award", [Arg::Word(s)]) => Action::Award(s.clone()),
            ("say", [Arg::Word(npc), Arg::Quoted(line)]) => {
                Action::Say { npc: npc.clone(), line: line.clone() }
            }
            ("end", [Arg::Quoted(s)]) => Action::End(s.clone()),
            _ => return Err(bad()),
        };
        Ok(action)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::GoTo(s) => write!(f, "goto {s}"),
            Action::ShowText(s) => write!(f, "text {}", quote(s)),
            Action::ShowImage(s) => write!(f, "image {s}"),
            Action::OpenUrl(s) => write!(f, "url {}", quote(s)),
            Action::GiveItem(s) => write!(f, "give {s}"),
            Action::TakeItem(s) => write!(f, "take {s}"),
            Action::SetFlag(name, on) => {
                write!(f, "flag {name} {}", if *on { "on" } else { "off" })
            }
            Action::AddScore(n) => write!(f, "score {n}"),
            Action::Award(s) => write!(f, "award {s}"),
            Action::Say { npc, line } => write!(f, "say {npc} {}", quote(line)),
            Action::End(s) => write!(f, "end {}", quote(s)),
        }
    }
}

/// Escapes and quotes a string for the textual form.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// A parsed argument of a command line: a bare word or a quoted string.
/// Public because the `.vgp` project parser reuses the same lexical
/// conventions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// Bare word (identifier-ish, may contain `-`, `_`, `.`, `:`, `/`).
    Word(String),
    /// Double-quoted string with escapes resolved.
    Quoted(String),
}

impl Arg {
    fn as_word(&self) -> Option<&str> {
        match self {
            Arg::Word(w) => Some(w),
            Arg::Quoted(_) => None,
        }
    }
}

/// Splits a command line into words and quoted strings (double quotes,
/// `\"`, `\\`, `\n`, `\t` escapes).
pub fn split_args(source: &str) -> Result<Vec<Arg>> {
    let mut out = Vec::new();
    let mut chars = source.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    None => return Err(ScriptError::UnterminatedString { pos: i }),
                    Some((_, '"')) => break,
                    Some((j, '\\')) => match chars.next() {
                        Some((_, '"')) => s.push('"'),
                        Some((_, '\\')) => s.push('\\'),
                        Some((_, 'n')) => s.push('\n'),
                        Some((_, 't')) => s.push('\t'),
                        Some((_, other)) => {
                            return Err(ScriptError::UnexpectedChar { ch: other, pos: j + 1 })
                        }
                        None => return Err(ScriptError::UnterminatedString { pos: i }),
                    },
                    Some((_, other)) => s.push(other),
                }
            }
            out.push(Arg::Quoted(s));
        } else {
            let mut w = String::new();
            while let Some(&(_, c)) = chars.peek() {
                if c.is_whitespace() || c == '"' {
                    break;
                }
                w.push(c);
                chars.next();
            }
            out.push(Arg::Word(w));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(a: Action) {
        let s = a.to_string();
        let back = Action::parse(&s).unwrap_or_else(|e| panic!("reparse {s:?}: {e}"));
        assert_eq!(back, a, "source: {s}");
    }

    #[test]
    fn all_actions_roundtrip() {
        roundtrip(Action::GoTo("market".into()));
        roundtrip(Action::ShowText("Look: a \"broken\" fan.\nReplace it.".into()));
        roundtrip(Action::ShowImage("umbrella_png".into()));
        roundtrip(Action::OpenUrl("https://example.edu/ram".into()));
        roundtrip(Action::GiveItem("screwdriver".into()));
        roundtrip(Action::TakeItem("coin".into()));
        roundtrip(Action::SetFlag("fixed".into(), true));
        roundtrip(Action::SetFlag("door-open".into(), false));
        roundtrip(Action::AddScore(25));
        roundtrip(Action::AddScore(-5));
        roundtrip(Action::Award("computer_medic".into()));
        roundtrip(Action::Say { npc: "teacher".into(), line: "Fix it, please.".into() });
        roundtrip(Action::End("victory".into()));
    }

    #[test]
    fn parse_examples_from_text() {
        assert_eq!(Action::parse("goto classroom").unwrap(), Action::GoTo("classroom".into()));
        assert_eq!(
            Action::parse("say guide \"Welcome to the market\"").unwrap(),
            Action::Say { npc: "guide".into(), line: "Welcome to the market".into() }
        );
        assert_eq!(Action::parse("  score   -3 ").unwrap(), Action::AddScore(-3));
        assert_eq!(Action::parse("flag solved on").unwrap(), Action::SetFlag("solved".into(), true));
    }

    #[test]
    fn rejects_malformed_actions() {
        for bad in [
            "",
            "goto",
            "goto a b",
            "text unquoted",
            "flag x maybe",
            "flag x",
            "score abc",
            "score",
            "say npc",
            "say \"x\" \"y\"",
            "launch missiles",
            "end victory", // must be quoted
            "\"quoted-verb\" x",
        ] {
            assert!(Action::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn split_args_handles_quotes_and_spaces() {
        let args = split_args(r#"say bob "hi there" extra"#).unwrap();
        assert_eq!(
            args,
            vec![
                Arg::Word("say".into()),
                Arg::Word("bob".into()),
                Arg::Quoted("hi there".into()),
                Arg::Word("extra".into()),
            ]
        );
        assert!(split_args("\"open").is_err());
        assert!(split_args(r#""bad\q""#).is_err());
        assert!(split_args("").unwrap().is_empty());
    }
}
