//! The paper's worked example, built end-to-end through the tool.
//!
//! §3.2 narrates the game: an NPC in a classroom asks the player to fix a
//! broken computer; examining it reveals a broken part; the market next
//! door sells the replacement; installing it wins. Unlike the fixture in
//! `vgbl-runtime` (which wires the scene graph directly for unit tests),
//! this module does it the way a *course designer* would: synthesise
//! "camera footage" of the two locations, run the §4.1 import (shot
//! detection + encoding), then drive the scenario editor and object
//! editor command by command.

use vgbl_author::import::{import_footage, ImportConfig, ImportReport};
use vgbl_author::object_editor::ObjectEditor;
use vgbl_author::scenario_editor::ScenarioEditor;
use vgbl_author::{CommandStack, Project};
use vgbl_media::color::Rgb;
use vgbl_media::synth::{FootageSpec, ShotSpec, SpriteShape, SpriteSpec};
use vgbl_media::{FrameRate, SegmentId};
use vgbl_scene::npc::{DialogueChoice, DialogueNode};
use vgbl_scene::{DialogueTree, Rect};

use crate::Result;

/// Frame size of the sample footage.
pub const FRAME: (u32, u32) = (64, 48);

/// Synthesises the "shot footage": one classroom shot and one market
/// shot of `seconds_per_scene` seconds each, with mild motion and noise
/// so the codec and shot detector have real work.
pub fn sample_footage(seconds_per_scene: usize) -> vgbl_media::synth::Footage {
    let frames = (seconds_per_scene * 30).max(30);
    let spec = FootageSpec {
        width: FRAME.0,
        height: FRAME.1,
        rate: FrameRate::FPS30,
        shots: vec![
            // Classroom: muted walls, a dark desk block, slow pan feel.
            ShotSpec {
                frames,
                background: Rgb::new(168, 160, 140),
                sprites: vec![
                    SpriteSpec {
                        shape: SpriteShape::Rect(22, 14),
                        color: Rgb::new(70, 50, 40),
                        pos: (28.0, 26.0),
                        vel: (0.1, 0.0),
                    },
                    SpriteSpec {
                        shape: SpriteShape::Circle(4),
                        color: Rgb::new(40, 40, 60),
                        pos: (8.0, 14.0),
                        vel: (0.3, 0.2),
                    },
                ],
                luma_drift: -6,
                noise: 2,
            },
            // Market: warmer, busier, a moving vendor cart.
            ShotSpec {
                frames,
                background: Rgb::new(190, 150, 110),
                sprites: vec![
                    SpriteSpec {
                        shape: SpriteShape::Rect(16, 10),
                        color: Rgb::new(120, 40, 40),
                        pos: (16.0, 14.0),
                        vel: (0.8, 0.0),
                    },
                    SpriteSpec {
                        shape: SpriteShape::Circle(5),
                        color: Rgb::new(60, 110, 60),
                        pos: (44.0, 34.0),
                        vel: (-0.5, 0.3),
                    },
                ],
                luma_drift: 8,
                noise: 2,
            },
        ],
        noise_seed: 42,
    };
    spec.render().expect("sample footage spec is valid")
}

/// Builds the complete "Fix the Computer" project through the authoring
/// pipeline. Returns the project and the import report (which includes
/// shot-detection accuracy against the synthetic ground truth).
pub fn fix_the_computer_project(seconds_per_scene: usize) -> Result<(Project, ImportReport)> {
    let footage = sample_footage(seconds_per_scene);
    let mut project = Project::new("Fix the Computer", FRAME, FrameRate::FPS30);
    let report = import_footage(
        &mut project,
        &footage.frames,
        footage.rate,
        &ImportConfig::default(),
        Some(&footage.cuts),
    )?;
    // A designer reviews the auto-cut in the timeline and fixes it up:
    // merge away false cuts (busy sprite motion can fool the detector),
    // add any missed ones. We play that reviewer here, using the
    // synthetic ground truth as the designer's knowledge of the footage.
    let mut stack = CommandStack::new();
    let truth = &footage.cuts;
    let boundaries: Vec<usize> =
        project.segments.segments().iter().skip(1).map(|s| s.start).collect();
    for b in boundaries {
        if !truth.iter().any(|t| t.abs_diff(b) <= 1) {
            let mut ed = ScenarioEditor::new(&mut project, &mut stack);
            ed.merge_after(b - 1)?;
        }
    }
    for &t in truth {
        let have = project
            .segments
            .segments()
            .iter()
            .skip(1)
            .any(|s| s.start.abs_diff(t) <= 1);
        if !have {
            let mut ed = ScenarioEditor::new(&mut project, &mut stack);
            ed.cut_at(t)?;
        }
    }

    {
        let mut ed = ScenarioEditor::new(&mut project, &mut stack);
        ed.create_scenario("classroom", SegmentId(0))?;
        ed.create_scenario("market", SegmentId(1))?;
        ed.set_start("classroom")?;
        ed.describe("classroom", "A classroom with a broken computer.")?;
        ed.describe("market", "A market stall selling computer parts.")?;
        ed.on_enter(
            "classroom",
            Some("!flag(\"greeted\")"),
            &[
                "say teacher \"Oh good, you're here. The computer is broken!\"",
                "flag greeted on",
            ],
        )?;
        // A gentle hint if the player idles.
        ed.after_ms(
            "classroom",
            8000,
            Some("!flag(\"diagnosed\")"),
            &["text \"Hint: click the computer to examine it.\""],
        )?;
    }

    // The teacher NPC with the paper's conversation.
    {
        let mut dialogue = DialogueTree::new();
        dialogue.insert(
            0,
            DialogueNode {
                line: "The computer is not working. Please fix it for the class.".into(),
                choices: vec![
                    DialogueChoice { text: "What happened?".into(), next: Some(1) },
                    DialogueChoice { text: "I'm on it.".into(), next: None },
                ],
            },
        );
        dialogue.insert(
            1,
            DialogueNode {
                line: "It just stopped. Maybe a part inside broke.".into(),
                choices: vec![DialogueChoice { text: "I'll take a look.".into(), next: None }],
            },
        );
        stack.apply(
            &mut project,
            vgbl_author::command::Command::AddNpcDialogue {
                name: "teacher".into(),
                dialogue,
            },
        )?;
    }

    {
        let mut ed = ObjectEditor::new(&mut project, &mut stack, "classroom");
        ed.add_npc_anchor("teacher", "teacher", Rect::new(2, 8, 12, 20))?;
        ed.add_item(
            "computer",
            "pc",
            "An old computer. It will not boot.",
            false,
            Rect::new(20, 16, 16, 12),
        )?;
        ed.wire(
            "computer",
            "click",
            Some("!flag(\"diagnosed\")"),
            &[
                "text \"You open the case. The cooling fan is broken!\"",
                "flag diagnosed on",
                "score 5",
            ],
        )?;
        ed.wire(
            "computer",
            "click",
            Some("flag(\"diagnosed\") && !flag(\"fixed\")"),
            &["text \"The broken fan needs a replacement part.\""],
        )?;
        ed.wire(
            "computer",
            "use fan",
            Some("!flag(\"diagnosed\")"),
            &["text \"You are not sure where this goes. Examine the computer first.\""],
        )?;
        ed.wire(
            "computer",
            "use fan",
            Some("flag(\"diagnosed\") && !flag(\"fixed\")"),
            &[
                "take fan",
                "flag fixed on",
                "text \"You install the new fan. The computer boots!\"",
                "score 20",
                "award computer_medic",
                "say teacher \"Well done! Thank you.\"",
                "end \"fixed\"",
            ],
        )?;
        ed.add_button("to_market", "To market", Rect::new(40, 2, 8, 8))?;
        ed.wire("to_market", "click", None, &["goto market"])?;
    }

    {
        let mut ed = ObjectEditor::new(&mut project, &mut stack, "market");
        ed.add_item("fan", "fan", "A replacement cooling fan.", true, Rect::new(10, 10, 10, 8))?;
        ed.set_visible_when("fan", Some("!has(\"fan\")"))?;
        ed.wire("fan", "drag", None, &["text \"You pick up the fan.\""])?;
        ed.add_button("spec_sheet", "Fan specs", Rect::new(26, 10, 8, 6))?;
        ed.wire(
            "spec_sheet",
            "click",
            None,
            &["url \"https://example.edu/cooling-fans\""],
        )?;
        ed.add_button("to_classroom", "Back to class", Rect::new(40, 2, 8, 8))?;
        ed.wire("to_classroom", "click", None, &["goto classroom"])?;
    }

    Ok((project, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_author::lint::lint_project;

    #[test]
    fn sample_footage_has_one_true_cut() {
        let f = sample_footage(3);
        assert_eq!(f.cuts.len(), 1);
        assert_eq!(f.len(), 180);
    }

    #[test]
    fn project_builds_and_lints_clean() {
        let (project, report) = fix_the_computer_project(3).unwrap();
        assert!(project.has_video());
        // After the designer's review pass: exactly classroom + market.
        assert_eq!(project.segments.len(), 2);
        // The true cut itself must have been detected (false positives are
        // tolerable; the review pass removed them).
        let acc = report.accuracy.unwrap();
        assert_eq!(acc.recall(), 1.0, "detector missed the scene cut: {acc:?}");
        let lint = lint_project(&project);
        assert!(lint.is_publishable(), "{:?}", lint.scene.issues);
        assert!(lint.author.is_empty(), "{:?}", lint.author);
    }

    #[test]
    fn project_round_trips_through_vgp() {
        let (project, _) = fix_the_computer_project(2).unwrap();
        let text = vgbl_author::serialize::to_vgp(&project).unwrap();
        let back = vgbl_author::serialize::from_vgp(&text).unwrap();
        assert_eq!(back.graph, project.graph);
        assert_eq!(back.segments, project.segments);
    }
}
