//! Publishing: authoring document → immutable playable game.
//!
//! The paper separates the authoring tool from the "runtime environment
//! … implemented for users to participate the games" (§4.3). Publishing
//! is the hand-off: lint the project, refuse structural errors, freeze
//! the content behind an `Arc` so any number of player sessions share it.

use std::sync::Arc;

use vgbl_author::lint::lint_project;
use vgbl_author::Project;
use vgbl_media::codec::EncodedVideo;
use vgbl_media::{FrameRate, SegmentTable};
use vgbl_runtime::SessionConfig;
use vgbl_scene::SceneGraph;

use crate::{Result, VgblError};

/// A frozen, shareable game: content + footage + player defaults.
#[derive(Debug, Clone)]
pub struct PublishedGame {
    /// The immutable scene graph, shared across sessions.
    pub graph: Arc<SceneGraph>,
    /// The encoded footage.
    pub video: EncodedVideo,
    /// The segment table over the footage.
    pub segments: SegmentTable,
    /// Frame size sessions are configured for.
    pub frame_size: (u32, u32),
    /// Footage frame rate.
    pub rate: FrameRate,
    /// Game title.
    pub title: String,
}

impl PublishedGame {
    /// The default session configuration (inventory window docked right,
    /// as in Figure 2).
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig::for_frame(self.frame_size.0, self.frame_size.1)
    }
}

/// Publishes a project.
///
/// # Errors
/// * [`VgblError::NotPublishable`] when footage is missing or validation
///   finds structural errors.
pub fn publish(project: Project) -> Result<PublishedGame> {
    let report = lint_project(&project);
    if !report.is_publishable() {
        let msgs: Vec<String> = report.scene.errors().map(|e| e.to_string()).collect();
        return Err(VgblError::NotPublishable(msgs.join("; ")));
    }
    project.check_integrity()?;
    let video = project
        .video
        .ok_or_else(|| VgblError::NotPublishable("no footage imported".into()))?;
    Ok(PublishedGame {
        graph: Arc::new(project.graph),
        segments: project.segments,
        frame_size: project.frame_size,
        rate: project.rate,
        title: project.name,
        video,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::fix_the_computer_project;

    #[test]
    fn sample_project_publishes() {
        let (project, _) = fix_the_computer_project(3).unwrap();
        let game = publish(project).unwrap();
        assert_eq!(game.title, "Fix the Computer");
        assert_eq!(game.frame_size, (64, 48));
        assert!(game.graph.len() >= 2);
        assert_eq!(game.segments.frame_count(), game.video.len());
    }

    #[test]
    fn unpublished_footage_rejected() {
        let project = vgbl_author::wizard::tour_template("t", 2);
        let err = publish(project).unwrap_err();
        assert!(matches!(err, VgblError::NotPublishable(_)));
    }

    #[test]
    fn structural_errors_block_publish() {
        let (mut project, _) = fix_the_computer_project(3).unwrap();
        let mut stack = vgbl_author::CommandStack::new();
        stack
            .apply(
                &mut project,
                vgbl_author::command::Command::AddTrigger {
                    scenario: "classroom".into(),
                    target: vgbl_author::command::TriggerTarget::Entry,
                    event: "enter".into(),
                    condition: None,
                    actions: vec!["goto nowhere".into()],
                },
            )
            .unwrap();
        assert!(matches!(publish(project), Err(VgblError::NotPublishable(_))));
    }
}
