//! Deriving streaming traces from real play sessions.
//!
//! EXP-7 needs playback traces; rather than inventing them, this module
//! converts the analytics log of an actual session (human or bot) into a
//! [`TraceStep`] sequence over the published game's segments — dwell
//! times from the scenario-entry timestamps, branch targets from the
//! scenario graph's out-edges. The streaming simulation then answers
//! "how would *this exact playthrough* have streamed over link X?"

use vgbl_media::SegmentId;
use vgbl_runtime::analytics::{LogEvent, SessionLog};
use vgbl_stream::TraceStep;

use crate::publish::PublishedGame;

/// Minimum dwell applied when a scenario was left instantly (a pure
/// pass-through still has to show at least one chunk).
const MIN_DWELL_MS: f64 = 1.0;

/// Converts a session log into a streaming trace over `game`'s segments.
///
/// Scenarios unknown to the graph (impossible for logs produced by this
/// runtime) are skipped.
pub fn trace_from_log(game: &PublishedGame, log: &SessionLog) -> Vec<TraceStep> {
    let entries: Vec<(&str, u64)> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            LogEvent::ScenarioEntered { name, t_ms } => Some((name.as_str(), *t_ms)),
            _ => None,
        })
        .collect();
    let end = log.duration_ms();
    let mut out = Vec::with_capacity(entries.len());
    for (i, &(name, start)) in entries.iter().enumerate() {
        let Some(scenario) = game.graph.scenario_by_name(name) else {
            continue;
        };
        let stop = entries.get(i + 1).map(|&(_, t)| t).unwrap_or(end);
        let dwell = (stop.saturating_sub(start)) as f64;
        let branch_targets: Vec<SegmentId> = scenario
            .goto_targets()
            .iter()
            .filter_map(|t| game.graph.scenario_by_name(t))
            .map(|s| s.segment)
            .collect();
        out.push(TraceStep {
            segment: scenario.segment,
            watch_ms: dwell.max(MIN_DWELL_MS),
            branch_targets,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::publish;
    use crate::sample::fix_the_computer_project;
    use vgbl_runtime::bot::{run_session, GuidedBot};
    use vgbl_stream::{simulate, ChunkMap, LinkModel, PrefetchPolicy};

    #[test]
    fn guided_playthrough_becomes_a_streamable_trace() {
        let (project, _) = fix_the_computer_project(2).unwrap();
        let game = publish(project).unwrap();
        let mut bot = GuidedBot::new();
        let run = run_session(game.graph.clone(), game.session_config(), &mut bot, 100, 100)
            .unwrap();
        assert_eq!(run.state.ended.as_deref(), Some("fixed"));

        let trace = trace_from_log(&game, &run.log);
        // The solution path visits classroom → market → classroom.
        let visited: Vec<u32> = trace.iter().map(|s| s.segment.0).collect();
        assert_eq!(visited, vec![0, 1, 0]);
        assert!(trace.iter().all(|s| s.watch_ms >= MIN_DWELL_MS));
        // classroom branches to market and vice versa.
        assert_eq!(trace[0].branch_targets, vec![SegmentId(1)]);
        assert_eq!(trace[1].branch_targets, vec![SegmentId(0)]);

        // And the trace actually streams.
        let map = ChunkMap::build(&game.video, &game.segments).unwrap();
        let link = LinkModel::mbps(4.0, 20.0).unwrap();
        let stats =
            simulate(&map, &link, PrefetchPolicy::BranchAware { per_branch: 2 }, &trace)
                .unwrap();
        assert!(stats.play_ms > 0.0);
        assert!(stats.startup_ms > 0.0);
    }

    #[test]
    fn empty_log_gives_empty_trace() {
        let (project, _) = fix_the_computer_project(2).unwrap();
        let game = publish(project).unwrap();
        let trace = trace_from_log(&game, &vgbl_runtime::SessionLog::new());
        assert!(trace.is_empty());
    }
}
