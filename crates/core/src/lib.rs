//! # vgbl — the interactive Video Game-Based Learning platform
//!
//! A from-scratch Rust reproduction of *"Using Interactive Video
//! Technology for the Development of Game-Based Learning"* (Chang, Hsu &
//! Shih, ICPPW 2007): an authoring tool and runtime environment where
//! course designers cut video into scenario segments, mount interactive
//! objects on the frames, and students learn by examining, collecting and
//! combining things across branching video scenarios.
//!
//! This crate is the facade: it re-exports every subsystem and adds the
//! pieces that tie them together —
//!
//! * [`publish`] — turning an authored [`vgbl_author::Project`] into an
//!   immutable, shareable [`publish::PublishedGame`];
//! * [`player`] — the complete runtime: a game session fused with video
//!   playback, frame compositing and the Figure-2 UI;
//! * [`sample`] — the paper's §3.2 "fix the computer" game built
//!   end-to-end *through the authoring tool* (synthetic footage → import
//!   → editors → publish);
//! * [`playtest`] — automated playthroughs of authored projects with
//!   coverage reports (which content a student might never see);
//! * [`trace`] — converting real session logs into streaming traces for
//!   the EXP-7 delivery simulation.
//!
//! ## Quickstart
//!
//! ```
//! use vgbl::prelude::*;
//!
//! // Author the paper's example game (footage + content) and publish it.
//! let (project, _report) = vgbl::sample::fix_the_computer_project(7).unwrap();
//! let game = vgbl::publish::publish(project).unwrap();
//!
//! // Play it.
//! let mut player = vgbl::player::Player::new(&game).unwrap();
//! player.handle(InputEvent::click(25, 20)).unwrap(); // examine the computer
//! assert!(player.session().state().flag("diagnosed"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use vgbl_author as author;
pub use vgbl_media as media;
pub use vgbl_obs as obs;
pub use vgbl_runtime as runtime;
pub use vgbl_scene as scene;
pub use vgbl_script as script;
pub use vgbl_store as store;
pub use vgbl_stream as stream;

pub mod player;
pub mod playtest;
pub mod publish;
pub mod sample;
pub mod trace;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::player::Player;
    pub use crate::publish::{publish, PublishedGame};
    pub use vgbl_author::{CommandStack, Project};
    pub use vgbl_media::{Frame, FrameRate, SegmentId, SegmentTable};
    pub use vgbl_runtime::{Feedback, GameSession, InputEvent, SessionConfig};
    pub use vgbl_scene::{ObjectKind, Rect, SceneGraph};
    pub use vgbl_script::{Action, EventKind, Trigger};
}

/// Unified error for the facade layer.
#[derive(Debug)]
pub enum VgblError {
    /// Authoring-side failure.
    Author(vgbl_author::AuthorError),
    /// Runtime-side failure.
    Runtime(vgbl_runtime::RuntimeError),
    /// Media failure.
    Media(vgbl_media::MediaError),
    /// The project is not publishable (validation errors inside).
    NotPublishable(String),
}

impl std::fmt::Display for VgblError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VgblError::Author(e) => write!(f, "authoring error: {e}"),
            VgblError::Runtime(e) => write!(f, "runtime error: {e}"),
            VgblError::Media(e) => write!(f, "media error: {e}"),
            VgblError::NotPublishable(msg) => write!(f, "project not publishable: {msg}"),
        }
    }
}

impl std::error::Error for VgblError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VgblError::Author(e) => Some(e),
            VgblError::Runtime(e) => Some(e),
            VgblError::Media(e) => Some(e),
            VgblError::NotPublishable(_) => None,
        }
    }
}

impl From<vgbl_author::AuthorError> for VgblError {
    fn from(e: vgbl_author::AuthorError) -> Self {
        VgblError::Author(e)
    }
}

impl From<vgbl_runtime::RuntimeError> for VgblError {
    fn from(e: vgbl_runtime::RuntimeError) -> Self {
        VgblError::Runtime(e)
    }
}

impl From<vgbl_media::MediaError> for VgblError {
    fn from(e: vgbl_media::MediaError) -> Self {
        VgblError::Media(e)
    }
}

/// Result alias for the facade layer.
pub type Result<T> = std::result::Result<T, VgblError>;
