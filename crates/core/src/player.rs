//! The complete player — "an augmented video player with the interaction
//! functionalities" (§4.3).
//!
//! [`Player`] fuses a [`GameSession`] (interaction, inventory, rewards)
//! with a [`PlaybackController`] (decoded video, segment looping, seeks):
//! scenario changes become segment switches, ticks advance both clocks,
//! and [`Player::frame`] returns the composited picture — the video frame
//! with the mounted objects, exactly Figure 2.

use vgbl_media::Frame;
use vgbl_runtime::engine::GameSession;
use vgbl_runtime::feedback::Feedback;
use vgbl_runtime::input::InputEvent;
use vgbl_runtime::playback::{PlaybackController, PlaybackStats};
use vgbl_runtime::render;

use crate::publish::PublishedGame;
use crate::Result;

/// A live playthrough: session + synchronized video playback.
#[derive(Debug)]
pub struct Player {
    session: GameSession,
    playback: PlaybackController,
    /// Feedback from the most recent input (shown in the UI).
    last_feedback: Vec<Feedback>,
}

impl Player {
    /// Starts a new playthrough of a published game.
    pub fn new(game: &PublishedGame) -> Result<Player> {
        let (session, feedback) =
            GameSession::new(game.graph.clone(), game.session_config())?;
        let initial_segment = session.current_scenario().segment;
        let playback = PlaybackController::new(
            game.video.clone(),
            game.segments.clone(),
            initial_segment,
        )?;
        Ok(Player { session, playback, last_feedback: feedback })
    }

    /// Resumes a playthrough from saved state (see
    /// [`vgbl_runtime::save::SaveGame`]); playback picks up at the start
    /// of the saved scenario's segment.
    pub fn restore(
        game: &PublishedGame,
        state: vgbl_runtime::GameState,
        inventory: vgbl_runtime::Inventory,
    ) -> Result<Player> {
        let session = GameSession::restore(
            game.graph.clone(),
            game.session_config(),
            state,
            inventory,
        )?;
        let segment = session.current_scenario().segment;
        let playback =
            PlaybackController::new(game.video.clone(), game.segments.clone(), segment)?;
        Ok(Player { session, playback, last_feedback: Vec::new() })
    }

    /// The underlying game session (state, inventory, analytics).
    pub fn session(&self) -> &GameSession {
        &self.session
    }

    /// Playback cost counters.
    pub fn playback_stats(&self) -> PlaybackStats {
        self.playback.stats()
    }

    /// Feedback produced by the most recent input.
    pub fn last_feedback(&self) -> &[Feedback] {
        &self.last_feedback
    }

    /// Handles one input: game logic first, then playback follows —
    /// ticks advance the video clock, scenario changes seek to the new
    /// segment. Returns the feedback.
    pub fn handle(&mut self, input: InputEvent) -> Result<Vec<Feedback>> {
        if let InputEvent::Tick(ms) = input {
            self.playback.advance_ms(ms);
        }
        let feedback = self.session.handle(input)?;
        for fb in &feedback {
            if let Feedback::ScenarioChanged { .. } = fb {
                // The session's current scenario already reflects the
                // final hop; follow it (intermediate hops need no decode).
                let segment = self.session.current_scenario().segment;
                self.playback.switch_segment(segment)?;
            }
        }
        self.last_feedback = feedback.clone();
        Ok(feedback)
    }

    /// The current composited frame: decoded video + visible objects +
    /// avatar (the pixels Figure 2 shows).
    pub fn frame(&mut self) -> Result<Frame> {
        let base = self.playback.current_frame()?;
        Ok(render::compose_frame(&self.session, &base)?)
    }

    /// The full text UI (Figure 2): video area, backpack pane, buttons
    /// and the latest feedback.
    pub fn ui(&mut self) -> Result<String> {
        let base = self.playback.current_frame()?;
        Ok(render::ascii_ui(&self.session, Some(&base), &self.last_feedback))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::publish;
    use crate::sample::fix_the_computer_project;

    fn player() -> Player {
        let (project, _) = fix_the_computer_project(2).unwrap();
        let game = publish(project).unwrap();
        Player::new(&game).unwrap()
    }

    #[test]
    fn full_playthrough_with_video() {
        let mut p = player();
        assert_eq!(p.session().state().current_scenario, "classroom");

        // Examine → diagnose.
        p.handle(InputEvent::click(25, 20)).unwrap();
        assert!(p.session().state().flag("diagnosed"));

        // Market: the playback must switch segments.
        let before = p.playback_stats().switches;
        p.handle(InputEvent::click(42, 4)).unwrap();
        assert_eq!(p.session().state().current_scenario, "market");
        assert_eq!(p.playback_stats().switches, before + 1);

        // Watch a little (advances the video cursor).
        p.handle(InputEvent::Tick(500)).unwrap();

        // Collect the fan, return, fix.
        p.handle(InputEvent::drag(12, 12, 60, 20)).unwrap();
        p.handle(InputEvent::click(42, 4)).unwrap();
        let fb = p.handle(InputEvent::apply("fan", 25, 20)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::GameEnded(_))));
        assert_eq!(p.session().state().score, 25);
    }

    #[test]
    fn frame_composites_video_and_objects() {
        let mut p = player();
        let frame = p.frame().unwrap();
        assert_eq!((frame.width(), frame.height()), (64, 48));
        // The classroom backdrop is warm grey-beige; check video showed up
        // (not black).
        assert!(frame.mean_luma() > 40.0);
    }

    #[test]
    fn ui_shows_figure2_with_live_video() {
        let mut p = player();
        p.handle(InputEvent::click(42, 4)).unwrap(); // market
        p.handle(InputEvent::drag(12, 12, 60, 20)).unwrap(); // take fan
        let ui = p.ui().unwrap();
        assert!(ui.contains("VGBL Runtime Environment"));
        assert!(ui.contains("scenario: market"));
        assert!(ui.contains("fan"));
        assert!(ui.contains("[backpack] + fan"));
    }

    #[test]
    fn ticks_advance_playback_within_segment() {
        let mut p = player();
        let seg = p.session().current_scenario().segment;
        p.handle(InputEvent::Tick(700)).unwrap();
        let frame_after = p.frame().unwrap();
        // Still inside the same segment...
        assert_eq!(p.session().current_scenario().segment, seg);
        // ...and frames keep rendering (cursor moved ~21 frames).
        assert_eq!((frame_after.width(), frame_after.height()), (64, 48));
    }
}
