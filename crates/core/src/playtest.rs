//! Automated playtesting of authored projects.
//!
//! Validation (static) tells a course designer the game *can't* break;
//! playtesting (dynamic) tells them it actually *works*: a guided bot
//! plays the project and the report says whether an ending was reached,
//! how many decisions it took, and — the part designers act on — which
//! scenarios and objects the playthrough never touched (content students
//! may never see).

use std::collections::BTreeSet;
use std::sync::Arc;

use vgbl_author::Project;
use vgbl_runtime::bot::{run_session, Bot, ExplorerBot, GuidedBot};
use vgbl_runtime::SessionConfig;

use crate::{Result, VgblError};

/// How thoroughly to playtest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaytestStyle {
    /// An efficient player heading straight for an ending.
    Guided,
    /// A completionist who examines everything first.
    Explorer,
}

/// The outcome of one automated playtest.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaytestReport {
    /// The ending reached, if any.
    pub outcome: Option<String>,
    /// Decisions the bot made.
    pub steps: usize,
    /// Final score.
    pub score: i64,
    /// Rewards earned.
    pub rewards: Vec<String>,
    /// Scenarios the playthrough never entered.
    pub unvisited_scenarios: Vec<String>,
    /// `(scenario, object)` pairs never examined (content the play style
    /// never surfaced).
    pub unexamined_objects: Vec<(String, String)>,
    /// Knowledge events delivered.
    pub knowledge_events: usize,
}

impl PlaytestReport {
    /// Whether the playtest reached an ending.
    pub fn completed(&self) -> bool {
        self.outcome.is_some()
    }

    /// Fraction of objects the playthrough examined.
    pub fn object_coverage(&self, total_objects: usize) -> f64 {
        if total_objects == 0 {
            return 1.0;
        }
        1.0 - self.unexamined_objects.len() as f64 / total_objects as f64
    }
}

/// Playtests `project` with the given style and step budget.
///
/// The project's *graph* is played directly (no footage needed — this is
/// the authoring-time loop, run before any video is even imported).
pub fn playtest(
    project: &Project,
    style: PlaytestStyle,
    max_steps: usize,
) -> Result<PlaytestReport> {
    let graph = Arc::new(project.graph.clone());
    let config = SessionConfig::for_frame(project.frame_size.0, project.frame_size.1);
    let mut bot: Box<dyn Bot> = match style {
        PlaytestStyle::Guided => Box::new(GuidedBot::new()),
        PlaytestStyle::Explorer => Box::new(ExplorerBot::new()),
    };
    let run = run_session(graph.clone(), config, &mut *bot, max_steps, 50)
        .map_err(VgblError::Runtime)?;

    let mut unvisited: Vec<String> = Vec::new();
    let mut unexamined: Vec<(String, String)> = Vec::new();
    let examined: BTreeSet<&String> = run.state.examined.iter().collect();
    for s in graph.scenarios() {
        if !run.state.visited.contains(&s.name) {
            unvisited.push(s.name.clone());
        }
        for o in s.objects() {
            if !examined.contains(&o.name) {
                unexamined.push((s.name.clone(), o.name.clone()));
            }
        }
    }

    Ok(PlaytestReport {
        outcome: run.state.ended.clone(),
        steps: run.steps,
        score: run.state.score,
        rewards: run.inventory.rewards().to_vec(),
        unvisited_scenarios: unvisited,
        unexamined_objects: unexamined,
        knowledge_events: run.log.knowledge_events(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_author::wizard::{escape_template, tour_template};

    #[test]
    fn guided_playtest_completes_sample() {
        let (project, _) = crate::sample::fix_the_computer_project(2).unwrap();
        let report = playtest(&project, PlaytestStyle::Guided, 150).unwrap();
        assert_eq!(report.outcome.as_deref(), Some("fixed"));
        assert!(report.completed());
        assert_eq!(report.score, 25);
        assert!(report.unvisited_scenarios.is_empty());
        assert!(report.knowledge_events >= 2);
    }

    #[test]
    fn explorer_playtest_covers_more_objects() {
        let (project, _) = crate::sample::fix_the_computer_project(2).unwrap();
        let guided = playtest(&project, PlaytestStyle::Guided, 150).unwrap();
        let explorer = playtest(&project, PlaytestStyle::Explorer, 200).unwrap();
        let total: usize = project.graph.scenarios().iter().map(|s| s.objects().len()).sum();
        assert!(explorer.object_coverage(total) >= guided.object_coverage(total));
        assert!(explorer.completed());
    }

    #[test]
    fn playtest_flags_unreachable_content() {
        // A tour where the exit needs every room, but the bot's budget is
        // too small to finish: the report surfaces what was missed.
        let project = tour_template("t", 6);
        let report = playtest(&project, PlaytestStyle::Guided, 8).unwrap();
        assert!(!report.completed());
        assert!(!report.unvisited_scenarios.is_empty());
    }

    #[test]
    fn playtest_escape_room_coverage() {
        let project = escape_template("e", 3);
        let report = playtest(&project, PlaytestStyle::Guided, 200).unwrap();
        assert_eq!(report.outcome.as_deref(), Some("escaped"));
        assert!(report.unvisited_scenarios.is_empty());
        assert_eq!(report.rewards, vec!["escape_artist".to_string()]);
    }

    #[test]
    fn unplayable_project_reports_error() {
        use vgbl_author::command::{Command, CommandStack, TriggerTarget};
        let mut project = tour_template("t", 2);
        let mut stack = CommandStack::new();
        stack
            .apply(
                &mut project,
                Command::AddTrigger {
                    scenario: "hub".into(),
                    target: TriggerTarget::Entry,
                    event: "enter".into(),
                    condition: None,
                    actions: vec!["goto nowhere".into()],
                },
            )
            .unwrap();
        assert!(playtest(&project, PlaytestStyle::Guided, 50).is_err());
    }
}
