//! EXP-4 — reaching deep content: interactive branching vs the linear /
//! DVD-menu baselines (navigation-model evaluation plus engine
//! click-through latency at depth).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vgbl::media::SegmentTable;
use vgbl::runtime::baseline::{dvd_menu_cost, interactive_cost, linear_cost};
use vgbl::runtime::{GameSession, InputEvent, SessionConfig};
use vgbl_bench::chain_graph;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp4_branching");

    // Model evaluation cost at increasing depth.
    for depth in [4usize, 16, 64] {
        let graph = chain_graph(depth);
        let cuts: Vec<usize> = (1..depth).map(|i| i * 30).collect();
        let table = SegmentTable::from_cuts(depth * 30, &cuts).unwrap();
        group.bench_with_input(BenchmarkId::new("models", depth), &depth, |b, &depth| {
            b.iter(|| {
                let l = linear_cost(&table, depth - 1).unwrap();
                let d = dvd_menu_cost(&table, depth - 1, 15).unwrap();
                let i = interactive_cost(&graph, &format!("s{}", depth - 1), 30).unwrap();
                (l, d, i)
            });
        });
    }

    // Live engine: clicking through the whole chain.
    for depth in [4usize, 16, 64] {
        let graph = Arc::new(chain_graph(depth));
        group.bench_with_input(BenchmarkId::new("click_through", depth), &depth, |b, &depth| {
            let config = SessionConfig {
                frame_size: (1000, 1000),
                inventory_window: vgbl::scene::Rect::new(900, 0, 100, 1000),
                validate_on_start: false,
                reach: None,
            };
            b.iter(|| {
                let (mut session, _) = GameSession::new(graph.clone(), config.clone()).unwrap();
                for _ in 0..depth {
                    let _ = session.handle(InputEvent::click(2, 2));
                    if session.state().is_over() {
                        break;
                    }
                }
                assert!(session.state().is_over());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
