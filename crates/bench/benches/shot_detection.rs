//! EXP-1 — shot-boundary detection throughput vs worker threads, and
//! fixed vs adaptive thresholds (ablation from DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vgbl::media::shot::{ShotDetector, ShotDetectorConfig, Threshold};
use vgbl_bench::bench_footage;

fn bench(c: &mut Criterion) {
    let footage = bench_footage(160, 120, 12, 1);
    let mut group = c.benchmark_group("exp1_shot_detection");
    group.throughput(Throughput::Elements(footage.len() as u64));

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("adaptive_threads", threads),
            &threads,
            |b, &threads| {
                let det = ShotDetector::new(ShotDetectorConfig { threads, ..Default::default() });
                b.iter(|| det.detect(&footage.frames));
            },
        );
    }

    // Threshold ablation at a fixed thread count.
    group.bench_function("fixed_threshold", |b| {
        let det = ShotDetector::new(ShotDetectorConfig {
            threshold: Threshold::Fixed(0.35),
            threads: 2,
            ..Default::default()
        });
        b.iter(|| det.detect(&footage.frames));
    });
    group.bench_function("no_downsample", |b| {
        let det = ShotDetector::new(ShotDetectorConfig {
            downsample: false,
            threads: 2,
            ..Default::default()
        });
        b.iter(|| det.detect(&footage.frames));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
