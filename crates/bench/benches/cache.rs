//! EXP-11 — shared decoded-GOP cache: seek latency and cohort decode
//! reuse as functions of cache capacity and session count.
//!
//! Three groups:
//!
//! * `exp11_seek` — warm vs cold cached-seek latency at several cache
//!   capacities (capacity 0 = cache disabled, the pre-cache baseline).
//! * `exp11_cohort` — a playback cohort over one shared cache; the
//!   interesting output is wall time *and* the hit rate printed once per
//!   configuration.
//! * `exp11_contention` — many threads hammering the same hot GOP, the
//!   worst case for the sharded locks and miss coalescing.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vgbl::media::cache::{GopCache, VideoId};
use vgbl::media::codec::{Decoder, Quality};
use vgbl::media::seek::seek_cached;
use vgbl::runtime::server::run_playback_cohort;
use vgbl_bench::{bench_footage, encode, table_for};

fn bench(c: &mut Criterion) {
    let footage = bench_footage(96, 64, 6, 3);
    let video = encode(&footage, 15, Quality::High, 2);
    let id = VideoId::of(&video);
    let dec = Decoder::default();
    let targets: Vec<usize> = (0..16).map(|i| (i * 37) % video.len()).collect();

    let mut group = c.benchmark_group("exp11_seek");
    group.sample_size(20);
    for capacity in [0usize, 2, 8, 32] {
        // Cold: a fresh cache every iteration — every seek decodes.
        group.bench_with_input(
            BenchmarkId::new("cold_cap", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let cache = GopCache::new(cap);
                    for &t in &targets {
                        seek_cached(&dec, &video, id, &cache, t).unwrap();
                    }
                });
            },
        );
        // Warm: one shared cache, warmed before measurement — seeks whose
        // GOP stayed resident are pure lookups.
        group.bench_with_input(
            BenchmarkId::new("warm_cap", capacity),
            &capacity,
            |b, &cap| {
                let cache = GopCache::new(cap);
                for &t in &targets {
                    seek_cached(&dec, &video, id, &cache, t).unwrap();
                }
                b.iter(|| {
                    for &t in &targets {
                        seek_cached(&dec, &video, id, &cache, t).unwrap();
                    }
                });
            },
        );
    }
    group.finish();

    let video = Arc::new(encode(&footage, 15, Quality::High, 2));
    let table = table_for(&footage);
    let mut group = c.benchmark_group("exp11_cohort");
    group.sample_size(10);
    for &(sessions, capacity) in &[(8usize, 0usize), (8, 32), (32, 0), (32, 32)] {
        group.throughput(Throughput::Elements(sessions as u64));
        let name = format!("sessions_{sessions}_cap_{capacity}");
        group.bench_function(BenchmarkId::new("shared", name), |b| {
            b.iter(|| {
                run_playback_cohort(
                    video.clone(),
                    &table,
                    Arc::new(GopCache::new(capacity)),
                    sessions,
                    4,
                    24,
                )
                .unwrap()
            });
        });
    }
    group.finish();

    // Contention: all threads want the same GOP at once; coalescing must
    // collapse the decode storm into one decode plus notifications.
    let mut group = c.benchmark_group("exp11_contention");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("hot_gop_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cache = GopCache::new(4);
                    crossbeam::scope(|s| {
                        for _ in 0..threads {
                            s.spawn(|_| {
                                for _ in 0..8 {
                                    seek_cached(&dec, &video, id, &cache, 3).unwrap();
                                }
                            });
                        }
                    })
                    .unwrap();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
