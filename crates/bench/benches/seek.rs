//! EXP-3 — random-access (scenario switch) latency vs keyframe interval,
//! direct and through a warm decoded-GOP cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vgbl::media::cache::{GopCache, VideoId};
use vgbl::media::codec::{Decoder, Quality};
use vgbl::media::seek::{seek, seek_cached};
use vgbl_bench::{bench_footage, encode};

fn bench(c: &mut Criterion) {
    let footage = bench_footage(96, 64, 6, 3);
    let mut group = c.benchmark_group("exp3_seek");
    group.sample_size(20);

    for gop in [1usize, 5, 15, 30, 60] {
        let video = encode(&footage, gop, Quality::High, 2);
        let dec = Decoder::default();
        // Deterministic seek targets spread across the stream.
        let targets: Vec<usize> = (0..16).map(|i| (i * 37) % video.len()).collect();
        group.bench_with_input(BenchmarkId::new("gop", gop), &gop, |b, _| {
            b.iter(|| {
                for &t in &targets {
                    seek(&dec, &video, t).unwrap();
                }
            });
        });
        // The same targets against a warm shared cache: the GOP walk
        // (what the direct rows above pay for) disappears, so latency
        // stops depending on the keyframe interval.
        let id = VideoId::of(&video);
        let cache = GopCache::new(64);
        for &t in &targets {
            seek_cached(&dec, &video, id, &cache, t).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("gop_warm", gop), &gop, |b, _| {
            b.iter(|| {
                for &t in &targets {
                    seek_cached(&dec, &video, id, &cache, t).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
