//! EXP-5 — event-engine dispatch throughput vs object count and guard
//! complexity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vgbl::scene::Point;
use vgbl::script::{EventKind, MapEnv, Value};
use vgbl_bench::dense_scene;

fn env() -> MapEnv {
    let mut e = MapEnv::new();
    e.set_var("score", Value::Int(1_000_000));
    e
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp5_events");

    for objects in [10usize, 100, 1000, 10_000] {
        let graph = dense_scene(objects, 2);
        let scenario = graph.scenarios().first().unwrap();
        let env = env();
        group.throughput(Throughput::Elements(objects as u64));
        group.bench_with_input(
            BenchmarkId::new("dispatch_all_objects", objects),
            &objects,
            |b, _| {
                b.iter(|| {
                    let mut fired = 0usize;
                    for o in scenario.objects() {
                        fired += o.triggers.dispatch(&EventKind::Click, &env).unwrap().len();
                    }
                    fired
                });
            },
        );
    }

    for terms in [1usize, 2, 4, 8] {
        let graph = dense_scene(100, terms);
        let scenario = graph.scenarios().first().unwrap();
        let env = env();
        group.bench_with_input(BenchmarkId::new("guard_terms", terms), &terms, |b, _| {
            b.iter(|| {
                let mut fired = 0usize;
                for o in scenario.objects() {
                    fired += o.triggers.dispatch(&EventKind::Click, &env).unwrap().len();
                }
                fired
            });
        });
    }

    // Hit-testing across a crowded frame.
    let graph = dense_scene(1000, 1);
    let scenario = graph.scenarios().first().unwrap();
    let env = env();
    group.bench_function("hit_test_1000_objects", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..100 {
                let p = Point::new((i * 97) % 1000, (i * 41) % 1000);
                if scenario.topmost_at(p, &env).unwrap().is_some() {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
