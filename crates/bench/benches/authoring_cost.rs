//! EXP-6 — authoring throughput: editor commands per second (with full
//! undo snapshots), template construction, and the §5 cost-model
//! evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vgbl::author::command::{Command, CommandStack};
use vgbl::author::cost::{estimate, CostParams};
use vgbl::author::wizard::{quiz_template, tour_template};
use vgbl::author::Project;
use vgbl::media::{FrameRate, SegmentId};
use vgbl::scene::{ObjectKind, Rect};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp6_authoring");

    group.bench_function("template_quiz_10", |b| {
        b.iter(|| quiz_template("bench", 10));
    });
    group.bench_function("template_tour_10", |b| {
        b.iter(|| tour_template("bench", 10));
    });

    // Raw command application with snapshots (the undo tax).
    for objects in [10usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("add_objects_with_undo", objects),
            &objects,
            |b, &objects| {
                b.iter(|| {
                    let mut p = Project::new("bench", (640, 480), FrameRate::FPS30);
                    let mut stack = CommandStack::new();
                    stack
                        .apply(&mut p, Command::AddScenario {
                            name: "s".into(),
                            segment: SegmentId(0),
                        })
                        .unwrap();
                    for i in 0..objects {
                        stack
                            .apply(&mut p, Command::AddObject {
                                scenario: "s".into(),
                                name: format!("o{i}"),
                                kind: ObjectKind::Button { label: "b".into() },
                                bounds: Rect::new(i as i32 % 600, 0, 8, 8),
                            })
                            .unwrap();
                    }
                    p
                });
            },
        );
    }

    let quiz = quiz_template("bench", 10);
    group.bench_function("cost_model_estimate", |b| {
        b.iter(|| estimate(&quiz, &CostParams::default()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
