//! EXP-7 — streaming simulation throughput and policy comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vgbl::media::codec::Quality;
use vgbl::media::SegmentId;
use vgbl::stream::{simulate, ChunkMap, LinkModel, PrefetchPolicy, TraceStep};
use vgbl_bench::{bench_footage, encode, table_for};

fn trace(n_segments: u32, hops: usize) -> Vec<TraceStep> {
    (0..hops)
        .map(|i| {
            let seg = SegmentId(((i as u32) * 7 + 3) % n_segments);
            TraceStep {
                segment: seg,
                watch_ms: 1200.0,
                branch_targets: (0..n_segments)
                    .filter(|&s| s != seg.0)
                    .take(3)
                    .map(SegmentId)
                    .collect(),
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let footage = bench_footage(96, 64, 8, 7);
    let video = encode(&footage, 10, Quality::Medium, 2);
    let table = table_for(&footage);
    let map = ChunkMap::build(&video, &table).unwrap();
    let n = table.len() as u32;
    let link = LinkModel::mbps(2.0, 30.0).unwrap();

    let mut group = c.benchmark_group("exp7_streaming");
    for policy in [
        PrefetchPolicy::None,
        PrefetchPolicy::Linear { lookahead: 3 },
        PrefetchPolicy::BranchAware { per_branch: 2 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("simulate_20hops", policy.label()),
            &policy,
            |b, &policy| {
                let t = trace(n, 20);
                b.iter(|| simulate(&map, &link, policy, &t).unwrap());
            },
        );
    }

    group.bench_function("chunk_map_build", |b| {
        b.iter(|| ChunkMap::build(&video, &table).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
