//! EXP-8 — multi-session server scalability: bot sessions per second vs
//! worker threads over shared immutable content.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vgbl::runtime::bot::{Bot, GuidedBot};
use vgbl::runtime::fixtures::{fix_the_computer, FRAME};
use vgbl::runtime::server::run_cohort;
use vgbl::runtime::SessionConfig;

fn bench(c: &mut Criterion) {
    let graph = Arc::new(fix_the_computer());
    let config = SessionConfig::for_frame(FRAME.0, FRAME.1);
    let sessions = 64usize;

    let mut group = c.benchmark_group("exp8_server");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sessions as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            b.iter(|| {
                run_cohort(
                    graph.clone(),
                    config.clone(),
                    sessions,
                    workers,
                    &|_| Box::new(GuidedBot::new()) as Box<dyn Bot>,
                    100,
                    50,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
