//! EXP-8 — multi-session server scalability: bot sessions per second vs
//! worker threads over shared immutable content, plus playback cohorts
//! decoding through a shared (warm) vs per-session (cold) GOP cache.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vgbl::media::cache::GopCache;
use vgbl::media::Quality;
use vgbl::runtime::bot::{Bot, GuidedBot};
use vgbl::runtime::fixtures::{fix_the_computer, FRAME};
use vgbl::runtime::server::{run_cohort, run_playback_cohort};
use vgbl::runtime::SessionConfig;
use vgbl_bench::{bench_footage, encode, table_for};

fn bench(c: &mut Criterion) {
    let graph = Arc::new(fix_the_computer());
    let config = SessionConfig::for_frame(FRAME.0, FRAME.1);
    let sessions = 64usize;

    let mut group = c.benchmark_group("exp8_server");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sessions as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            b.iter(|| {
                run_cohort(
                    graph.clone(),
                    config.clone(),
                    sessions,
                    workers,
                    &|_| Box::new(GuidedBot::new()) as Box<dyn Bot>,
                    100,
                    50,
                )
                .unwrap()
            });
        });
    }
    group.finish();

    // Playback cohorts: the decode cost of hosting N video sessions with
    // a shared cache (each GOP decoded ~once in total) vs one private
    // cache per session (cold — each session decodes its own GOPs).
    let footage = bench_footage(96, 64, 6, 3);
    let video = Arc::new(encode(&footage, 15, Quality::High, 2));
    let table = table_for(&footage);
    let mut group = c.benchmark_group("exp8_playback");
    group.sample_size(10);
    for sessions in [16usize, 64] {
        group.throughput(Throughput::Elements(sessions as u64));
        group.bench_with_input(
            BenchmarkId::new("shared_cache", sessions),
            &sessions,
            |b, &sessions| {
                b.iter(|| {
                    run_playback_cohort(
                        video.clone(),
                        &table,
                        Arc::new(GopCache::new(32)),
                        sessions,
                        4,
                        24,
                    )
                    .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("no_shared_cache", sessions),
            &sessions,
            |b, &sessions| {
                b.iter(|| {
                    run_playback_cohort(
                        video.clone(),
                        &table,
                        Arc::new(GopCache::new(0)),
                        sessions,
                        4,
                        24,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
