//! EXP-10 — persistence throughput: `.vgp` project save/load, `VGV`
//! container write/read, and save games, vs project size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vgbl::author::serialize::{from_vgp, to_vgp};
use vgbl::media::codec::Quality;
use vgbl::media::{ContainerReader, ContainerWriter};
use vgbl::runtime::{GameState, Inventory, SaveGame};
use vgbl_bench::{bench_footage, big_project, encode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp10_serialize");

    for scenarios in [5usize, 17, 65] {
        let project = big_project(scenarios);
        let text = to_vgp(&project).unwrap();
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("vgp_save", scenarios),
            &scenarios,
            |b, _| b.iter(|| to_vgp(&project).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("vgp_load", scenarios),
            &scenarios,
            |b, _| b.iter(|| from_vgp(&text).unwrap()),
        );
    }

    let footage = bench_footage(96, 64, 4, 10);
    let video = encode(&footage, 15, Quality::High, 2);
    let bytes = ContainerWriter::write(&video);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("vgv_write", |b| b.iter(|| ContainerWriter::write(&video)));
    group.bench_function("vgv_read", |b| b.iter(|| ContainerReader::read(&bytes).unwrap()));

    // Save games.
    let mut state = GameState::new("classroom");
    let mut inv = Inventory::new();
    for i in 0..20 {
        state.set_flag(format!("flag{i}"), i % 2 == 0);
        state.visited.insert(format!("scene{i}"));
        inv.add(format!("item{i}"));
    }
    let project = big_project(5);
    let save = SaveGame::capture(&project.graph, &state, &inv);
    let save_text = save.to_text();
    group.bench_function("save_game_write", |b| b.iter(|| save.to_text()));
    group.bench_function("save_game_read", |b| {
        b.iter(|| SaveGame::from_text(&save_text).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
