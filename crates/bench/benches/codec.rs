//! EXP-2 — codec encode/decode throughput vs quality preset, plus
//! GOP-parallel encode scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vgbl::media::codec::{Decoder, Quality};
use vgbl_bench::{bench_footage, encode};

fn bench(c: &mut Criterion) {
    let footage = bench_footage(160, 120, 4, 2);
    let pixels = footage.len() as u64 * 160 * 120;

    let mut group = c.benchmark_group("exp2_codec");
    group.throughput(Throughput::Elements(pixels));
    group.sample_size(10);

    for quality in Quality::all() {
        group.bench_with_input(
            BenchmarkId::new("encode", format!("{quality:?}")),
            &quality,
            |b, &quality| {
                b.iter(|| encode(&footage, 15, quality, 1));
            },
        );
    }

    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("encode_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| encode(&footage, 15, Quality::High, threads));
            },
        );
    }

    let video = encode(&footage, 15, Quality::High, 1);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("decode_threads", threads),
            &threads,
            |b, &threads| {
                let dec = Decoder::new(threads);
                b.iter(|| dec.decode_all(&video).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
