//! Hot-path overhead guard for the observability layer.
//!
//! Every pillar calls its obs taps unconditionally; only the handle
//! decides whether anything happens. This bench pins the contract that
//! a `Obs::noop()` tap is near-free (one `Option` check) so the series
//! taps added to the decode/fetch/playback hot paths cost nothing when
//! observability is off:
//!
//! * `obs_noop` — counter increments, histogram records, and series
//!   records against noop handles; the numbers to watch, these should
//!   sit at or under a nanosecond per op.
//! * `obs_recording` — the same ops against a recording backend, the
//!   price actually paid when a run is instrumented.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vgbl::obs::{Obs, SeriesSpec};

const OPS: u64 = 1_000;

fn bench(c: &mut Criterion) {
    for (name, obs) in [("obs_noop", Obs::noop()), ("obs_recording", Obs::recording())] {
        let mut group = c.benchmark_group(name);
        group.throughput(Throughput::Elements(OPS));

        let counter = obs.counter("bench.counter", &[("pillar", "bench")]);
        group.bench_function("counter_inc", |b| {
            b.iter(|| {
                for _ in 0..OPS {
                    counter.inc();
                }
            });
        });

        let hist = obs.histogram("bench.hist", &[("pillar", "bench")]);
        group.bench_function("histogram_record", |b| {
            b.iter(|| {
                for i in 0..OPS {
                    hist.record(black_box(i));
                }
            });
        });

        let series = obs.series(SeriesSpec::counter("bench.series", 1_000, 64));
        group.bench_function("series_record", |b| {
            b.iter(|| {
                for i in 0..OPS {
                    series.record(black_box(i * 250), 1);
                }
            });
        });

        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
