//! EXP-9 — simulated-player throughput: full sessions per second for the
//! guided and random play styles on the paper's example game.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vgbl::runtime::bot::{run_session, GuidedBot, RandomBot};
use vgbl::runtime::fixtures::{fix_the_computer, FRAME};
use vgbl::runtime::SessionConfig;

fn bench(c: &mut Criterion) {
    let graph = Arc::new(fix_the_computer());
    let config = SessionConfig::for_frame(FRAME.0, FRAME.1);

    let mut group = c.benchmark_group("exp9_learning");
    group.bench_function("guided_session", |b| {
        b.iter(|| {
            let mut bot = GuidedBot::new();
            run_session(graph.clone(), config.clone(), &mut bot, 100, 50).unwrap()
        });
    });
    group.bench_function("random_session_120steps", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut bot = RandomBot::new(StdRng::seed_from_u64(seed));
            run_session(graph.clone(), config.clone(), &mut bot, 120, 50).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
