//! Golden byte-identity gate for the hot-path optimizations.
//!
//! The four constants below were pinned by running
//! `vgbl-bench --golden` **before** the PR-6 optimizations (chunked
//! `block_sad`, Arc-backed planes/frames, raw-buffer codec loops). The
//! optimizations claim byte-identical output; if any of these
//! fingerprints moves, an "optimization" changed the bitstream or the
//! decoded RGB and must be rejected, not re-pinned. Re-pin only for a
//! deliberate format change that says so in its commit message.

use vgbl_bench::perf::golden_checksums;

const PINNED: [(&str, u64); 4] = [
    ("medium_encoded", 0xd4a787a825f4031c),
    ("medium_decoded", 0x37c61d09646ffcef),
    ("lossless_encoded", 0x4a5755c6b8bf3b8b),
    ("lossless_decoded", 0xdf0fb6fb43c05f24),
];

#[test]
fn codec_output_is_byte_identical_to_pre_optimization_pin() {
    let now = golden_checksums();
    for ((pin_name, pin_sum), (name, sum)) in PINNED.iter().zip(now.iter()) {
        assert_eq!(pin_name, name, "checksum order changed");
        assert_eq!(
            pin_sum, sum,
            "{name} fingerprint moved: an optimization altered codec output"
        );
    }
}
