//! Shared workload builders for the benchmark suite and the
//! `experiments` harness.
//!
//! Every generator is deterministic (fixed seeds) so Criterion runs and
//! the experiment tables are reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod perf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vgbl::author::wizard::{quiz_template, tour_template};
use vgbl::author::Project;
use vgbl::media::codec::{EncodeConfig, EncodedVideo, Encoder, Quality};
use vgbl::media::synth::{Footage, FootageSpec};
use vgbl::media::{FrameRate, SegmentTable};
use vgbl::scene::{ObjectKind, Rect, SceneGraph};
use vgbl::script::{Action, EventKind, Trigger};
use vgbl::media::SegmentId;

/// Deterministic multi-shot footage: `shots` shots of 20–40 frames at the
/// given size.
pub fn bench_footage(width: u32, height: u32, shots: usize, seed: u64) -> Footage {
    let mut rng = StdRng::seed_from_u64(seed);
    FootageSpec::random(&mut rng, width, height, shots, 20, 40)
        .render()
        .expect("bench footage renders")
}

/// Encodes footage with the given GOP and quality.
pub fn encode(footage: &Footage, gop: usize, quality: Quality, threads: usize) -> EncodedVideo {
    Encoder::new(EncodeConfig { quality, gop, threads, search_range: 7 })
        .encode(&footage.frames, footage.rate)
        .expect("bench encode succeeds")
}

/// A linear chain of `n` scenarios (each with a "next" button), the
/// workload for EXP-4's depth sweeps.
pub fn chain_graph(n: usize) -> SceneGraph {
    let mut g = SceneGraph::new();
    for i in 0..n {
        g.add_scenario(format!("s{i}"), SegmentId(0)).expect("unique names");
    }
    for i in 0..n {
        let has_next = i + 1 < n;
        let s = g.scenario_by_name_mut(&format!("s{i}")).expect("exists");
        let btn = s
            .add_object("next", ObjectKind::Button { label: "next".into() }, Rect::new(0, 0, 8, 8))
            .expect("unique");
        let actions = if has_next {
            vec![Action::GoTo(format!("s{}", i + 1))]
        } else {
            vec![Action::End("done".into())]
        };
        s.object_mut(btn).expect("exists").triggers.push(Trigger::unconditional(
            EventKind::Click,
            actions,
        ));
    }
    g
}

/// A scenario packed with `objects` interactive objects, each carrying a
/// trigger guarded by a condition of `terms` conjunctive terms — EXP-5's
/// dispatch workload.
pub fn dense_scene(objects: usize, terms: usize) -> SceneGraph {
    let mut g = SceneGraph::new();
    let id = g.add_scenario("dense", SegmentId(0)).expect("fresh graph");
    let s = g.scenario_mut(id).expect("exists");
    let condition = (0..terms)
        .map(|t| format!("score >= {t}"))
        .collect::<Vec<_>>()
        .join(" && ");
    for i in 0..objects {
        let oid = s
            .add_object(
                format!("o{i}"),
                ObjectKind::Button { label: format!("b{i}") },
                // Spread objects over a 1000x1000 virtual frame.
                Rect::new((i as i32 * 13) % 990, (i as i32 * 29) % 990, 10, 10),
            )
            .expect("unique");
        s.object_mut(oid).expect("exists").triggers.push(
            Trigger::guarded(
                EventKind::Click,
                &condition,
                vec![Action::AddScore(0)],
            )
            .expect("valid condition"),
        );
    }
    g
}

/// A project with `scenarios` scenarios for serialisation benches
/// (alternating quiz/tour shapes for realistic trigger density).
pub fn big_project(scenarios: usize) -> Project {
    if scenarios.max(3).is_multiple_of(2) {
        tour_template("bench", scenarios.max(3) - 1)
    } else {
        quiz_template("bench", scenarios.max(3) - 2)
    }
}

/// A segment table with one segment per shot of the footage.
pub fn table_for(footage: &Footage) -> SegmentTable {
    SegmentTable::from_cuts(footage.len(), &footage.cuts).expect("valid cuts")
}

/// The standard bench frame rate.
pub const RATE: FrameRate = FrameRate::FPS30;
