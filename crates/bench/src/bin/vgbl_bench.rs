//! `vgbl-bench` — the perf-trajectory snapshot tool.
//!
//! Measures the pipeline operations every learner session walks
//! (encode, decode, seek, streaming fetch, cohort playback) on a
//! deterministic workload and emits a machine-readable JSON snapshot.
//! Snapshots accumulate as `BENCH_<n>.json` files at the repo root —
//! the perf trajectory ROADMAP item 2 asks for.
//!
//! ```text
//! vgbl-bench [--quick|--full] [--json-only] [--label NAME]
//!            [--out FILE] [--baseline FILE]
//! vgbl-bench --merge BEFORE AFTER [--out FILE]   # two saved snapshots
//! vgbl-bench --validate FILE     # CI: check a snapshot's shape
//! vgbl-bench --golden            # print codec byte-identity checksums
//! ```
//!
//! With `--baseline FILE` the run is merged with the given earlier
//! snapshot into a `vgbl-bench-trajectory/1` document carrying per-op
//! speedups. With `--json-only` the JSON goes to stdout and nothing is
//! written unless `--out` is given (the CI mode). Otherwise the human
//! table is printed and the JSON is written to `--out`, defaulting to
//! the next free `BENCH_<n>.json` in the current directory.

use std::path::PathBuf;
use std::process::ExitCode;

use vgbl_bench::perf::{
    self, golden_checksums, human_table, merge_trajectory, to_json, validate_json, Mode,
};

struct Cli {
    mode: Mode,
    json_only: bool,
    label: String,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    validate: Option<PathBuf>,
    merge: Option<(PathBuf, PathBuf)>,
    golden: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: vgbl-bench [--quick|--full] [--json-only] [--label NAME] \
         [--out FILE] [--baseline FILE] | --merge BEFORE AFTER [--out FILE] \
         | --validate FILE | --golden"
    );
    std::process::exit(2);
}

fn parse(args: &[String]) -> Cli {
    let mut cli = Cli {
        mode: Mode::Quick,
        json_only: false,
        label: String::from("snapshot"),
        out: None,
        baseline: None,
        validate: None,
        merge: None,
        golden: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cli.mode = Mode::Quick,
            "--full" => cli.mode = Mode::Full,
            "--smoke" => cli.mode = Mode::Smoke,
            "--json-only" => cli.json_only = true,
            "--label" => cli.label = value(&mut i),
            "--out" => cli.out = Some(PathBuf::from(value(&mut i))),
            "--baseline" => cli.baseline = Some(PathBuf::from(value(&mut i))),
            "--validate" => cli.validate = Some(PathBuf::from(value(&mut i))),
            "--merge" => {
                let before = PathBuf::from(value(&mut i));
                let after = PathBuf::from(value(&mut i));
                cli.merge = Some((before, after));
            }
            "--golden" => cli.golden = true,
            _ => usage(),
        }
        i += 1;
    }
    cli
}

/// First `BENCH_<n>.json` (n ≥ 1) that does not exist yet.
fn next_bench_path() -> PathBuf {
    for n in 1.. {
        let p = PathBuf::from(format!("BENCH_{n}.json"));
        if !p.exists() {
            return p;
        }
    }
    unreachable!("some BENCH_<n>.json slot is free");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse(&args);

    if cli.golden {
        for (name, sum) in golden_checksums() {
            println!("{name}: 0x{sum:016x}");
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &cli.validate {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("vgbl-bench: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match validate_json(&json) {
            Ok(()) => {
                println!("{}: ok", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{}: invalid: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    if let Some((before_path, after_path)) = &cli.merge {
        let read = |p: &PathBuf| match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vgbl-bench: cannot read {}: {e}", p.display());
                std::process::exit(1);
            }
        };
        let doc = merge_trajectory(&read(before_path), &read(after_path));
        match &cli.out {
            Some(out) => {
                if let Err(e) = std::fs::write(out, &doc) {
                    eprintln!("vgbl-bench: cannot write {}: {e}", out.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", out.display());
            }
            None => print!("{doc}"),
        }
        return ExitCode::SUCCESS;
    }

    let report = perf::run(cli.mode, &cli.label);
    let json = to_json(&report);
    debug_assert!(validate_json(&json).is_ok(), "emitted JSON must self-validate");

    let doc = match &cli.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(before) => merge_trajectory(&before, &json),
            Err(e) => {
                eprintln!("vgbl-bench: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => json,
    };

    if cli.json_only {
        print!("{doc}");
        if let Some(out) = &cli.out {
            if let Err(e) = std::fs::write(out, &doc) {
                eprintln!("vgbl-bench: cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    print!("{}", human_table(&report));
    let out = cli.out.unwrap_or_else(next_bench_path);
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("vgbl-bench: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("\nwrote {}", out.display());
    ExitCode::SUCCESS
}
