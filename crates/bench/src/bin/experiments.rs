//! The experiment harness: regenerates every figure and experiment table
//! from `DESIGN.md` / `EXPERIMENTS.md` with freshly measured numbers.
//!
//! Usage:
//! ```text
//! cargo run --release -p vgbl-bench --bin experiments            # all
//! cargo run --release -p vgbl-bench --bin experiments -- exp3   # one
//! ```
//!
//! Wall-clock numbers vary with the host; the *shapes* (who wins, where
//! the crossovers sit) are the reproduction targets recorded in
//! `EXPERIMENTS.md`.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vgbl::author::cost::{estimate, CostParams};
use vgbl::author::serialize::{from_vgp, to_vgp};
use vgbl::author::wizard::{quiz_template, tour_template};
use vgbl::media::codec::{Decoder, Quality};
use vgbl::media::seek::{average_seek_cost, expected_seek_cost, seek};
use vgbl::media::shot::{score_detection, ShotDetector, ShotDetectorConfig, Threshold};
use vgbl::media::stats::psnr_from_mse;
use vgbl::media::{ContainerReader, ContainerWriter, SegmentId, SegmentTable};
use vgbl::prelude::*;
use vgbl::runtime::baseline::{dvd_menu_cost, interactive_cost, linear_cost};
use vgbl::runtime::bot::{run_session, Bot, GuidedBot, RandomBot};
use vgbl::runtime::fixtures;
use vgbl::runtime::server::run_cohort;
use vgbl::script::{EventKind, MapEnv, Value};
use vgbl::stream::{simulate, ChunkMap, LinkModel, PrefetchPolicy, TraceStep};
use vgbl_bench::{bench_footage, chain_graph, dense_scene, encode, table_for};

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id} — {title}");
    println!("================================================================");
}

fn fig1() {
    header("FIG-1", "the authoring-tool interface (paper Figure 1)");
    let (project, _) = vgbl::sample::fix_the_computer_project(3).expect("sample builds");
    println!(
        "{}",
        vgbl::author::render::ascii_ui(&project, Some(("classroom", "computer")), None)
    );
}

fn fig2() {
    header("FIG-2", "the runtime environment (paper Figure 2)");
    let (project, _) = vgbl::sample::fix_the_computer_project(3).expect("sample builds");
    let game = vgbl::publish::publish(project).expect("publishable");
    let mut player = Player::new(&game).expect("starts");
    // Reach the Figure-2 moment: an item in the inventory window, the
    // image object mounted on the frame, buttons visible.
    player.handle(InputEvent::click(42, 4)).expect("to market");
    player.handle(InputEvent::Tick(400)).expect("watch");
    player.handle(InputEvent::drag(12, 12, 60, 20)).expect("take fan");
    println!("{}", player.ui().expect("renders"));
}

fn exp1() {
    header("EXP-1", "shot-boundary detection: accuracy and thread scaling");
    let footage = bench_footage(160, 120, 24, 1);
    println!("footage: {} frames, {} true cuts\n", footage.len(), footage.cuts.len());
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>8} {:>12}",
        "config", "precision", "recall", "F1", "ms", "frames/s"
    );
    let run = |label: String, cfg: ShotDetectorConfig| {
        let det = ShotDetector::new(cfg);
        let t0 = Instant::now();
        let cuts: Vec<usize> = det.detect(&footage.frames).iter().map(|c| c.frame).collect();
        let elapsed = ms(t0);
        let score = score_detection(&cuts, &footage.cuts, 1);
        println!(
            "{:<22} {:>9.2} {:>8.2} {:>8.2} {:>8.1} {:>12.0}",
            label,
            score.precision(),
            score.recall(),
            score.f1(),
            elapsed,
            footage.len() as f64 / (elapsed / 1000.0)
        );
    };
    for threads in [1usize, 2, 4, 8] {
        run(
            format!("adaptive, {threads} thr"),
            ShotDetectorConfig { threads, ..Default::default() },
        );
    }
    run(
        "fixed 0.35, 2 thr".to_owned(),
        ShotDetectorConfig {
            threshold: Threshold::Fixed(0.35),
            threads: 2,
            ..Default::default()
        },
    );
    run(
        "no downsample, 2 thr".to_owned(),
        ShotDetectorConfig { downsample: false, threads: 2, ..Default::default() },
    );
}

fn exp2() {
    header("EXP-2", "codec: throughput, compression and fidelity vs quality");
    let footage = bench_footage(160, 120, 4, 2);
    println!("footage: {} frames of 160x120\n", footage.len());
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>10}",
        "quality", "enc fps", "dec fps", "ratio", "PSNR dB"
    );
    for quality in Quality::all() {
        let t0 = Instant::now();
        let video = encode(&footage, 15, quality, 1);
        let enc_ms = ms(t0);
        let dec = Decoder::new(1);
        let t1 = Instant::now();
        let decoded = dec.decode_all(&video).expect("decodes");
        let dec_ms = ms(t1);
        let mse: f64 = footage
            .frames
            .iter()
            .zip(decoded.frames.iter())
            .map(|(a, b)| a.mse(b).expect("same dims"))
            .sum::<f64>()
            / footage.len() as f64;
        println!(
            "{:<10} {:>10.0} {:>10.0} {:>8.1} {:>10.1}",
            format!("{quality:?}"),
            footage.len() as f64 / (enc_ms / 1000.0),
            footage.len() as f64 / (dec_ms / 1000.0),
            video.compression_ratio(),
            psnr_from_mse(mse)
        );
    }
    println!("\nGOP-parallel encode (High quality):");
    println!("{:<10} {:>10}", "threads", "enc fps");
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let video = encode(&footage, 15, Quality::High, threads);
        let enc_ms = ms(t0);
        std::hint::black_box(video);
        println!("{:<10} {:>10.0}", threads, footage.len() as f64 / (enc_ms / 1000.0));
    }

    // SKIP-frame ablation: looping scenario video is often static.
    use vgbl::media::synth::{FootageSpec, ShotSpec};
    use vgbl::media::color::Rgb;
    let static_footage = FootageSpec {
        width: 160,
        height: 120,
        rate: vgbl_bench::RATE,
        shots: vec![ShotSpec::plain(90, Rgb::new(130, 120, 100))],
        noise_seed: 0,
    }
    .render()
    .expect("renders");
    let v = encode(&static_footage, 30, Quality::High, 1);
    let skips = v
        .frames
        .iter()
        .filter(|f| f.kind == vgbl::media::FrameKind::Skip)
        .count();
    println!(
        "\nstatic 90-frame shot: {skips}/90 SKIP frames, {:.0}x compression \
         (the scenario-looping case)",
        v.compression_ratio()
    );
}

fn exp3() {
    header("EXP-3", "seek latency vs keyframe interval (scenario switching)");
    let footage = bench_footage(96, 64, 6, 3);
    println!("footage: {} frames\n", footage.len());
    println!(
        "{:<6} {:>14} {:>14} {:>12} {:>8}",
        "GOP", "frames/seek", "expected", "ms/seek", "ratio"
    );
    for gop in [1usize, 5, 15, 30, 60] {
        let video = encode(&footage, gop, Quality::High, 2);
        let dec = Decoder::default();
        let targets: Vec<usize> = (0..32).map(|i| (i * 37) % video.len()).collect();
        let avg = average_seek_cost(&video, &targets).expect("targets in range");
        let t0 = Instant::now();
        for &t in &targets {
            seek(&dec, &video, t).expect("seeks");
        }
        let per_seek = ms(t0) / targets.len() as f64;
        println!(
            "{:<6} {:>14.1} {:>14.1} {:>12.2} {:>8.1}",
            gop,
            avg,
            expected_seek_cost(gop),
            per_seek,
            video.compression_ratio()
        );
    }
    // Ablation: segment-aligned keyframes. Seeks go to *segment starts*
    // (what scenario switching actually does).
    println!("\nablation — seeks to segment starts (GOP 15):");
    println!("{:<22} {:>14} {:>10}", "encoding", "frames/seek", "ratio");
    let starts: Vec<usize> = {
        let mut v = vec![0usize];
        v.extend(footage.cuts.iter().copied());
        v
    };
    let enc = vgbl::media::codec::Encoder::new(vgbl::media::codec::EncodeConfig {
        gop: 15,
        quality: Quality::High,
        threads: 2,
        search_range: 7,
    });
    let plain = enc.encode(&footage.frames, footage.rate).expect("encodes");
    let aligned = enc
        .encode_aligned(&footage.frames, footage.rate, &footage.cuts)
        .expect("encodes");
    for (label, video) in [("regular cadence", &plain), ("segment-aligned", &aligned)] {
        let avg = average_seek_cost(video, &starts).expect("in range");
        println!("{:<22} {:>14.1} {:>10.1}", label, avg, video.compression_ratio());
    }
    println!("\nsmaller GOP = cheaper seeks but worse compression; aligning");
    println!("keyframes to segment starts gets seek cost 1 where it matters");
    println!("while keeping the long-GOP compression elsewhere.");
}

fn exp4() {
    header("EXP-4", "time-to-content: linear vs DVD menu vs interactive");
    println!(
        "{:<7} {:>14} {:>12} {:>14} {:>12} {:>14}",
        "depth", "linear frames", "dvd presses", "dvd frames", "vgbl clicks", "vgbl frames"
    );
    for depth in [4usize, 8, 16, 32, 64] {
        let graph = chain_graph(depth);
        let cuts: Vec<usize> = (1..depth).map(|i| i * 30).collect();
        let table = SegmentTable::from_cuts(depth * 30, &cuts).expect("valid");
        let lin = linear_cost(&table, depth - 1).expect("in range");
        let dvd = dvd_menu_cost(&table, depth - 1, 15).expect("in range");
        let int = interactive_cost(&graph, &format!("s{}", depth - 1), 30).expect("reachable");
        println!(
            "{:<7} {:>14} {:>12} {:>14} {:>12} {:>14}",
            depth,
            lin.frames_watched,
            dvd.interactions,
            dvd.frames_watched,
            int.interactions,
            int.frames_watched
        );
    }
    println!("\n(a hub-shaped VGBL graph reaches any content in O(1) clicks;");
    println!("this linear chain is interactive video's worst case.)");
}

fn exp5() {
    header("EXP-5", "event-engine dispatch throughput");
    let mut env = MapEnv::new();
    env.set_var("score", Value::Int(1_000_000));
    println!("{:<10} {:>16} {:>14}", "objects", "dispatch/s", "ms/full-scan");
    for objects in [10usize, 100, 1000, 10_000] {
        let graph = dense_scene(objects, 2);
        let scenario = graph.scenarios().first().expect("exists");
        let iters = (100_000 / objects).max(1);
        let t0 = Instant::now();
        for _ in 0..iters {
            for o in scenario.objects() {
                let fired = o.triggers.dispatch(&EventKind::Click, &env).expect("evaluates");
                std::hint::black_box(fired);
            }
        }
        let total = ms(t0);
        let per_scan = total / iters as f64;
        println!(
            "{:<10} {:>16.0} {:>14.3}",
            objects,
            (objects * iters) as f64 / (total / 1000.0),
            per_scan
        );
    }
    println!("\nguard complexity (100 objects):");
    println!("{:<10} {:>16}", "terms", "dispatch/s");
    for terms in [1usize, 2, 4, 8] {
        let graph = dense_scene(100, terms);
        let scenario = graph.scenarios().first().expect("exists");
        let iters = 1000usize;
        let t0 = Instant::now();
        for _ in 0..iters {
            for o in scenario.objects() {
                std::hint::black_box(
                    o.triggers.dispatch(&EventKind::Click, &env).expect("evaluates"),
                );
            }
        }
        let total = ms(t0);
        println!("{:<10} {:>16.0}", terms, (100 * iters) as f64 / (total / 1000.0));
    }
}

fn exp6() {
    header("EXP-6", "authoring cost: video segments vs 3D scenarios (§5)");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12}",
        "game", "scenarios", "video ops", "3D ops", "advantage"
    );
    let games: Vec<(&str, vgbl::author::Project)> = vec![
        ("quiz (3 questions)", quiz_template("q", 3)),
        ("quiz (10 questions)", quiz_template("q", 10)),
        ("tour (4 rooms)", tour_template("t", 4)),
        ("tour (12 rooms)", tour_template("t", 12)),
        ("escape (5 rooms)", vgbl::author::wizard::escape_template("e", 5)),
        (
            "fix-the-computer",
            vgbl::sample::fix_the_computer_project(2).expect("sample builds").0,
        ),
    ];
    for (label, project) in games {
        let cost = estimate(&project, &CostParams::default());
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>11.1}x",
            label,
            project.graph.len(),
            cost.video_ops,
            cost.threed_ops,
            cost.advantage()
        );
    }
}

fn exp7() {
    header("EXP-7", "streaming: startup and rebuffering vs link and policy");
    let footage = bench_footage(96, 64, 6, 7);
    let video = encode(&footage, 10, Quality::Medium, 2);
    let table = table_for(&footage);
    let map = ChunkMap::build(&video, &table).expect("chunks");
    let n = table.len() as u32;
    // A hub-and-rooms trace: non-linear jumps.
    let rooms = [3u32, 1, 5, 2];
    let all: Vec<SegmentId> = (1..n).map(SegmentId).collect();
    let mut trace = Vec::new();
    for &room in rooms.iter().filter(|r| **r < n) {
        trace.push(TraceStep {
            segment: SegmentId(0),
            watch_ms: 1500.0,
            branch_targets: all.clone(),
        });
        trace.push(TraceStep {
            segment: SegmentId(room),
            watch_ms: 2000.0,
            branch_targets: vec![SegmentId(0)],
        });
    }
    println!(
        "{:<10} {:<14} {:>11} {:>8} {:>10} {:>9}",
        "link", "policy", "startup ms", "stalls", "stall ms", "waste %"
    );
    for mbps in [0.5, 1.0, 2.0, 8.0] {
        let link = LinkModel::mbps(mbps, 30.0).expect("valid link");
        for policy in [
            PrefetchPolicy::None,
            PrefetchPolicy::Linear { lookahead: 3 },
            PrefetchPolicy::BranchAware { per_branch: 1 },
        ] {
            let stats = simulate(&map, &link, policy, &trace).expect("simulates");
            println!(
                "{:<10} {:<14} {:>11.0} {:>8} {:>10.0} {:>9.1}",
                format!("{mbps} Mbit/s"),
                policy.label(),
                stats.startup_ms,
                stats.stalls,
                stats.stall_ms,
                stats.waste_ratio() * 100.0
            );
        }
    }

    // A real playthrough: stream the exact trace a guided player produced
    // on the sample game (analytics log → streaming trace).
    println!("\nreal playthrough of 'Fix the Computer' (guided player, 1 Mbit/s):");
    let (project, _) = vgbl::sample::fix_the_computer_project(3).expect("sample builds");
    let game = vgbl::publish::publish(project).expect("publishable");
    let mut bot = GuidedBot::new();
    let run = run_session(game.graph.clone(), game.session_config(), &mut bot, 100, 400)
        .expect("bot plays");
    let real_trace = vgbl::trace::trace_from_log(&game, &run.log);
    let real_map = ChunkMap::build(&game.video, &game.segments).expect("chunks");
    let link = LinkModel::mbps(1.0, 30.0).expect("valid link");
    println!("{:<14} {:>11} {:>8} {:>10} {:>9}", "policy", "startup ms", "stalls", "stall ms", "waste %");
    for policy in [
        PrefetchPolicy::None,
        PrefetchPolicy::Linear { lookahead: 2 },
        PrefetchPolicy::BranchAware { per_branch: 2 },
    ] {
        let stats = simulate(&real_map, &link, policy, &real_trace).expect("simulates");
        println!(
            "{:<14} {:>11.0} {:>8} {:>10.0} {:>9.1}",
            policy.label(),
            stats.startup_ms,
            stats.stalls,
            stats.stall_ms,
            stats.waste_ratio() * 100.0
        );
    }
}

fn exp8() {
    header("EXP-8", "multi-session server scalability");
    let graph = Arc::new(fixtures::fix_the_computer());
    let config = SessionConfig::for_frame(fixtures::FRAME.0, fixtures::FRAME.1);
    let sessions = 1024usize;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "{sessions} random-player sessions (400 steps each), shared immutable \
         content; host has {cores} core(s):\n"
    );
    println!("{:<10} {:>12} {:>14} {:>10}", "workers", "wall ms", "sessions/s", "speedup");
    let mut base = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let report = run_cohort(
            graph.clone(),
            config.clone(),
            sessions,
            workers,
            &|i| Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64))) as Box<dyn Bot>,
            400,
            50,
        )
        .expect("cohort runs");
        let wall = ms(t0);
        assert_eq!(report.sessions, sessions);
        if workers == 1 {
            base = wall;
        }
        println!(
            "{:<10} {:>12.0} {:>14.0} {:>9.2}x",
            workers,
            wall,
            sessions as f64 / (wall / 1000.0),
            base / wall
        );
    }
    if cores == 1 {
        println!("\n(single-core host: flat scaling is the expected result here;");
        println!("the parallel path is correctness-verified by the test suite.)");
    }
}

fn exp9() {
    header("EXP-9", "knowledge delivery and rewarding: guided vs random players");
    let graph = Arc::new(fixtures::fix_the_computer());
    let config = SessionConfig::for_frame(fixtures::FRAME.0, fixtures::FRAME.1);
    let n = 200usize;
    let guided = run_cohort(
        graph.clone(),
        config.clone(),
        n,
        4,
        &|_| Box::new(GuidedBot::new()) as Box<dyn Bot>,
        120,
        50,
    )
    .expect("guided cohort");
    let explorer = run_cohort(
        graph.clone(),
        config.clone(),
        n,
        4,
        &|_| Box::new(vgbl::runtime::ExplorerBot::new()) as Box<dyn Bot>,
        150,
        50,
    )
    .expect("explorer cohort");
    let random = run_cohort(
        graph.clone(),
        config.clone(),
        n,
        4,
        &|i| Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64))) as Box<dyn Bot>,
        120,
        50,
    )
    .expect("random cohort");
    println!("{n} sessions per cohort on 'fix the computer':\n");
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "metric", "guided", "explorer", "random"
    );
    let g = &guided.learning;
    let e = &explorer.learning;
    let r = &random.learning;
    println!(
        "{:<18} {:>11.1}% {:>11.1}% {:>11.1}%",
        "completion",
        g.completion_rate() * 100.0,
        e.completion_rate() * 100.0,
        r.completion_rate() * 100.0
    );
    println!(
        "{:<18} {:>12.1} {:>12.1} {:>12.1}",
        "avg decisions", g.avg_decisions, e.avg_decisions, r.avg_decisions
    );
    println!(
        "{:<18} {:>12.1} {:>12.1} {:>12.1}",
        "avg knowledge ev.", g.avg_knowledge, e.avg_knowledge, r.avg_knowledge
    );
    println!(
        "{:<18} {:>12.2} {:>12.2} {:>12.2}",
        "avg rewards", g.avg_rewards, e.avg_rewards, r.avg_rewards
    );
    println!(
        "{:<18} {:>12.1} {:>12.1} {:>12.1}",
        "avg score", g.avg_score, e.avg_score, r.avg_score
    );
    println!(
        "{:<18} {:>12.0} {:>12.0} {:>12.0}",
        "avg duration ms", g.avg_duration_ms, e.avg_duration_ms, r.avg_duration_ms
    );

    // Per-scenario dwell time of one guided playthrough (§3.2 analytics).
    let mut bot = GuidedBot::new();
    let run = run_session(graph, config, &mut bot, 100, 50).expect("session runs");
    println!("\none guided session, time per scenario:");
    for (scenario, t) in run.log.time_per_scenario() {
        println!("  {scenario:<12} {t:>6} ms");
    }
}

fn exp10() {
    header("EXP-10", "persistence round-trip throughput and fidelity");
    println!("{:<22} {:>10} {:>12} {:>12}", "artifact", "bytes", "write ms", "read ms");
    for scenarios in [5usize, 17, 65] {
        let project = vgbl_bench::big_project(scenarios);
        let t0 = Instant::now();
        let text = to_vgp(&project).expect("serialises");
        let w = ms(t0);
        let t1 = Instant::now();
        let back = from_vgp(&text).expect("parses");
        let r = ms(t1);
        assert_eq!(back.graph, project.graph, "fidelity");
        println!(
            "{:<22} {:>10} {:>12.2} {:>12.2}",
            format!(".vgp {} scenarios", project.graph.len()),
            text.len(),
            w,
            r
        );
    }
    let footage = bench_footage(96, 64, 4, 10);
    let video = encode(&footage, 15, Quality::High, 2);
    let t0 = Instant::now();
    let bytes = ContainerWriter::write(&video);
    let w = ms(t0);
    let t1 = Instant::now();
    let back = ContainerReader::read(&bytes).expect("parses");
    let r = ms(t1);
    assert_eq!(back, video, "fidelity");
    println!(
        "{:<22} {:>10} {:>12.2} {:>12.2}",
        format!(".vgv {} frames", video.len()),
        bytes.len(),
        w,
        r
    );
}

fn exp11() {
    header("EXP-11", "shared decoded-GOP cache: seek latency and cohort decode reuse");
    use vgbl::media::cache::{GopCache, VideoId};
    use vgbl::media::seek::seek_cached;
    use vgbl::runtime::server::run_playback_cohort;

    let footage = bench_footage(96, 64, 6, 3);
    let video = encode(&footage, 15, Quality::High, 2);
    let dec = Decoder::default();
    let id = VideoId::of(&video);
    let targets: Vec<usize> = (0..32).map(|i| (i * 37) % video.len()).collect();

    println!(
        "{} frames, GOP 15, {} seek targets; capacity 0 = cache disabled\n",
        video.len(),
        targets.len()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "capacity", "cold ms/seek", "warm ms/seek", "hit rate"
    );
    for cap in [0usize, 2, 8, 32] {
        let cache = GopCache::new(cap);
        let t0 = Instant::now();
        for &t in &targets {
            seek_cached(&dec, &video, id, &cache, t).expect("seeks");
        }
        let cold = ms(t0) / targets.len() as f64;
        // Keep residents, zero the counters: the second pass is the
        // steady state a looping player sits in.
        cache.reset_counters();
        let t1 = Instant::now();
        for &t in &targets {
            seek_cached(&dec, &video, id, &cache, t).expect("seeks");
        }
        let warm = ms(t1) / targets.len() as f64;
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>9.0}%",
            cap,
            cold,
            warm,
            cache.stats().hit_rate() * 100.0
        );
    }

    let table = table_for(&footage);
    let video = Arc::new(video);
    println!("\nplayback cohorts over one shared cache (4 workers, 40 steps/session):\n");
    println!(
        "{:<10} {:<10} {:>13} {:>14} {:>10} {:>10}",
        "sessions", "capacity", "frames srvd", "frames dec.", "hit rate", "wall ms"
    );
    for &sessions in &[8usize, 64, 256] {
        for &cap in &[0usize, 8, 32] {
            let t0 = Instant::now();
            let report = run_playback_cohort(
                video.clone(),
                &table,
                Arc::new(GopCache::new(cap)),
                sessions,
                4,
                40,
            )
            .expect("cohort runs");
            println!(
                "{:<10} {:<10} {:>13} {:>14} {:>9.0}% {:>10.0}",
                sessions,
                cap,
                report.frames_served,
                report.frames_decoded,
                report.reuse.hit_rate() * 100.0,
                ms(t0)
            );
        }
    }
    println!("\nwith a cache that holds the working set, a cohort's total decode");
    println!("work collapses to ~one pass over the video regardless of cohort");
    println!("size; disabled (capacity 0), every session pays for every GOP.");
}

fn exp12() {
    header("EXP-12", "resilience: stream/playback quality vs injected loss");
    use vgbl::media::GopChecksums;
    use vgbl::runtime::{PlaybackController, ResilienceReport};
    use vgbl::stream::{simulate_faulty, FaultPlan, FaultyLink, RetryPolicy};

    let footage = bench_footage(96, 64, 12, 7);
    let video = encode(&footage, 5, Quality::Medium, 2);
    let table = table_for(&footage);
    let map = ChunkMap::build(&video, &table).expect("chunks");
    let n = table.len() as u32;
    // A hub-and-rooms trace that tours every room, so the sweep touches
    // every chunk of the stream.
    let all: Vec<SegmentId> = (1..n).map(SegmentId).collect();
    let mut trace = Vec::new();
    for room in 1..n {
        trace.push(TraceStep {
            segment: SegmentId(0),
            watch_ms: 1500.0,
            branch_targets: all.clone(),
        });
        trace.push(TraceStep {
            segment: SegmentId(room),
            watch_ms: 2000.0,
            branch_targets: vec![SegmentId(0)],
        });
    }
    println!(
        "{} frames in {} segments, {} chunks toured per run\n",
        video.len(),
        table.len(),
        map.len()
    );
    let link = |plan| FaultyLink::new(LinkModel::mbps(2.0, 30.0).expect("valid link"), plan);
    let policy = PrefetchPolicy::BranchAware { per_branch: 1 };

    // Loss sweep with the default retry budget (3 retries, capped
    // exponential backoff): every lost chunk is recovered within the
    // budget, so degradation is pure rebuffering, never concealment.
    println!("2 Mbit/s link, default retry budget (3 retries, 250 ms base deadline):\n");
    println!(
        "{:<8} {:>11} {:>8} {:>10} {:>8} {:>9} {:>8} {:>11} {:>11}",
        "loss", "startup ms", "stalls", "stall ms", "retries", "timeouts", "gave up", "conceal ms", "delivery %"
    );
    let mut sweep = Vec::new();
    for loss in [0.0, 0.001, 0.01, 0.05] {
        let plan = FaultPlan::new(42).with_loss(loss).expect("valid rate");
        let report = simulate_faulty(&map, &link(plan), policy, &RetryPolicy::default(), &trace)
            .expect("faulty stream completes");
        let s = report.stats;
        println!(
            "{:<8} {:>11.0} {:>8} {:>10.0} {:>8} {:>9} {:>8} {:>11.0} {:>10.1}%",
            format!("{:.1}%", loss * 100.0),
            s.startup_ms,
            s.stalls,
            s.stall_ms,
            s.retries,
            s.timeouts,
            s.gave_up,
            s.conceal_ms,
            s.delivery_ratio() * 100.0
        );
        if loss <= 0.01 {
            assert_eq!(s.gave_up, 0, "≤1% loss recovers every chunk in budget");
        }
        sweep.push(report);
    }

    // The same 5% loss with the retry budget removed: chunks that are
    // lost once are abandoned and concealed — playback still completes.
    let tight = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
    let plan = FaultPlan::new(42).with_loss(0.05).expect("valid rate");
    let report =
        simulate_faulty(&map, &link(plan), policy, &tight, &trace).expect("still completes");
    println!(
        "\n5% loss with the retry budget removed (max_retries = 0): {} of {} chunks\nconcealed as freeze-frame ({:.0} ms), delivery ratio {:.1}% — the stream\ndegrades, it does not fail.",
        report.concealed.len(),
        report.concealed.len() + report.delivered.len(),
        report.stats.conceal_ms,
        report.stats.delivery_ratio() * 100.0
    );
    assert!(!report.concealed.is_empty(), "no-retry 5% loss conceals");

    // Determinism: same seed + same plan ⇒ byte-identical StreamStats
    // and ResilienceReport.
    let again: Vec<_> = [0.0, 0.001, 0.01, 0.05]
        .iter()
        .map(|&loss| {
            let plan = FaultPlan::new(42).with_loss(loss).expect("valid rate");
            simulate_faulty(&map, &link(plan), policy, &RetryPolicy::default(), &trace)
                .expect("faulty stream completes")
        })
        .collect();
    let stats: Vec<_> = sweep.iter().map(|r| r.stats).collect();
    let stats2: Vec<_> = again.iter().map(|r| r.stats).collect();
    let resilience = ResilienceReport::from_sessions(&stats, &[]);
    let resilience2 = ResilienceReport::from_sessions(&stats2, &[]);
    assert_eq!(sweep, again, "same seed + plan ⇒ byte-identical reports");
    assert_eq!(resilience, resilience2);
    println!(
        "\nreplayed the sweep with the same seeds: StreamStats and the\naggregated ResilienceReport are byte-identical across runs\n(cohort: {} sessions, {} retries, {} timeouts, avg delivery {:.1}%).",
        resilience.sessions,
        resilience.retries,
        resilience.timeouts,
        resilience.avg_delivery_ratio * 100.0
    );

    // Bit-exactness on delivered frames: damage one GOP in storage, play
    // with integrity verification on — the damaged GOP is concealed, and
    // every other frame matches the pristine decode bit-for-bit.
    let reference = Decoder::default().decode_all(&video).expect("pristine decode").frames;
    let sums = GopChecksums::build(&video);
    let keys = video.keyframes();
    let keyframe = keys[2];
    let gop_end = keys.get(3).copied().unwrap_or(video.len());
    let mut damaged = video.clone();
    for b in &mut damaged.frames[keyframe].data {
        *b ^= 0xA5;
    }
    let mut player = PlaybackController::new(damaged, table.clone(), SegmentId(0))
        .expect("player builds")
        .with_integrity(sums);
    let mut exact = 0usize;
    let mut concealed = 0usize;
    for sid in 0..table.len() as u32 {
        player.switch_segment(SegmentId(sid)).expect("switch never errors");
        let len = player.current_segment().len();
        for off in 0.. {
            let abs = player.absolute_frame();
            let got = player.current_frame().expect("playback never errors");
            if got == reference[abs] {
                exact += 1;
            } else {
                assert!((keyframe..gop_end).contains(&abs), "only the damaged GOP diverges");
                concealed += 1;
            }
            if off + 1 == len {
                break;
            }
            while player.advance_ms(7) == 0 {}
        }
    }
    println!(
        "\none GOP damaged in storage: {exact} of {} frames bit-exact with the\npristine decode, {concealed} concealed by freeze-frame, zero errors.",
        reference.len()
    );
    assert_eq!(exact + concealed, reference.len());
    assert!(concealed > 0, "the damaged GOP is concealed, not decoded");

    // Fault isolation in the cohort server: one deliberately panicking
    // bot among 64 sessions is one Failed row, not a crashed cohort.
    let graph = Arc::new(fixtures::fix_the_computer());
    let config = SessionConfig::for_frame(fixtures::FRAME.0, fixtures::FRAME.1);
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the demo's output clean
    let report = run_cohort(
        graph,
        config,
        64,
        4,
        &|i| {
            if i == 17 {
                Box::new(PanicBot)
            } else {
                Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64)))
            }
        },
        60,
        40,
    )
    .expect("cohort survives a panicking worker");
    std::panic::set_hook(prev_hook);
    println!(
        "\n64-session cohort with one deliberately panicking bot: {} completed,\n{} failed (row 17: {:?}) — the cohort call returned Ok.",
        report.sessions,
        report.failed,
        report.outcomes[17]
    );
    assert_eq!((report.sessions, report.failed), (63, 1));
}

fn exp13() {
    header("EXP-13", "observability: instrumented cohort profile, counters vs reports");
    use vgbl::media::cache::GopCache;
    use vgbl::obs::Obs;
    use vgbl::runtime::server::run_playback_cohort_observed;
    use vgbl::runtime::ResilienceReport;
    use vgbl::stream::{simulate_faulty_observed, FaultPlan, FaultyLink, RetryPolicy};

    // One instrumented run: a playback cohort decoding through an
    // observed shared cache, then a faulty-streaming sweep, all into a
    // single recording `Obs`. Returns the report triple plus the four
    // deterministic exports.
    let profile = || {
        let obs = Obs::recording();

        // Pillar 1+3: playback cohort over an observed shared cache.
        let footage = bench_footage(96, 64, 6, 3);
        let video = Arc::new(encode(&footage, 15, Quality::High, 2));
        let table = table_for(&footage);
        // One worker: with parallel workers the *split* of cache traffic
        // (which session coalesces onto whose decode) is scheduling-
        // dependent, and this experiment pins byte-identical exports.
        // EXP-11 covers the multi-worker scaling story.
        let cache = Arc::new(GopCache::new(32).observed(&obs));
        let playback = run_playback_cohort_observed(
            video.clone(),
            &table,
            cache.clone(),
            24,
            1,
            40,
            &obs,
        )
        .expect("cohort runs");

        // Pillar 2: streaming under injected loss, one observed session
        // per loss rate.
        let sfootage = bench_footage(96, 64, 12, 7);
        let svideo = encode(&sfootage, 5, Quality::Medium, 2);
        let stable = table_for(&sfootage);
        let map = ChunkMap::build(&svideo, &stable).expect("chunks");
        let n = stable.len() as u32;
        let all: Vec<SegmentId> = (1..n).map(SegmentId).collect();
        let mut trace = Vec::new();
        for room in 1..n {
            trace.push(TraceStep {
                segment: SegmentId(0),
                watch_ms: 1500.0,
                branch_targets: all.clone(),
            });
            trace.push(TraceStep {
                segment: SegmentId(room),
                watch_ms: 2000.0,
                branch_targets: vec![SegmentId(0)],
            });
        }
        let policy = PrefetchPolicy::BranchAware { per_branch: 1 };
        let mut stream_stats = Vec::new();
        for (i, &loss) in [0.0, 0.01, 0.05].iter().enumerate() {
            let plan = FaultPlan::new(42).with_loss(loss).expect("valid rate");
            let link = FaultyLink::new(LinkModel::mbps(2.0, 30.0).expect("valid link"), plan);
            let report = simulate_faulty_observed(
                &map,
                &link,
                policy,
                &RetryPolicy::default(),
                &trace,
                &obs,
                format!("stream-{i:04}"),
            )
            .expect("faulty stream completes");
            stream_stats.push(report.stats);
        }
        let resilience = ResilienceReport::from_sessions(&stream_stats, &[]);

        let snap = obs.snapshot();
        let exports =
            (snap.to_table(), snap.metrics_csv(), snap.spans_csv(), snap.to_jsonl());
        (playback, resilience, snap, exports)
    };

    let (playback, resilience, snap, exports) = profile();

    // The profile itself — the text-table export is the artefact.
    println!("{}", exports.0);

    // Counters vs reports: the obs layer accumulates at the same event
    // sites but through an entirely separate path, so exact agreement
    // is genuine redundancy, not one number printed twice.
    assert_eq!(snap.counter_total("cohort.sessions_completed"), playback.sessions as u64);
    assert_eq!(snap.counter_total("cohort.sessions_failed"), playback.failed as u64);
    assert_eq!(snap.counter_total("playback.frames_served"), playback.frames_served as u64);
    assert_eq!(snap.counter_total("playback.frames_decoded"), playback.frames_decoded as u64);
    assert_eq!(snap.counter_total("playback.switches"), playback.switches as u64);
    assert_eq!(snap.counter_total("cache.hits"), playback.reuse.hits);
    assert_eq!(snap.counter_total("cache.misses"), playback.reuse.misses);
    assert_eq!(snap.counter_total("cache.evictions"), playback.reuse.evictions);
    assert_eq!(
        snap.span_count("render") + snap.span_count("switch"),
        playback.frames_served,
        "one render/switch event per served frame"
    );
    assert_eq!(snap.counter_total("fetch.retries"), resilience.retries as u64);
    assert_eq!(snap.counter_total("fetch.timeouts"), resilience.timeouts as u64);
    assert_eq!(snap.counter_total("fetch.gave_up"), resilience.gave_up as u64);
    println!(
        "cross-check: every obs counter equals its report twin exactly —\n\
         playback ({} served / {} decoded / {} switches), cache ({} hits /\n\
         {} misses), streaming ({} retries / {} timeouts / {} gave up).",
        playback.frames_served,
        playback.frames_decoded,
        playback.switches,
        playback.reuse.hits,
        playback.reuse.misses,
        resilience.retries,
        resilience.timeouts,
        resilience.gave_up,
    );

    // Determinism: the whole instrumented run again, byte-for-byte.
    let (_, _, _, exports2) = profile();
    assert_eq!(exports, exports2, "identical runs ⇒ byte-identical exports");
    println!(
        "\nreplayed the instrumented run: text table, metrics CSV, spans CSV\n\
         and JSON-lines exports are byte-identical ({} metric rows, {} traces).",
        snap.metrics.len(),
        snap.traces.len()
    );
}

fn exp14() {
    header("EXP-14", "supervised sessions: overload, circuit breaking, crash recovery");
    use vgbl::obs::Obs;
    use vgbl::runtime::save::SaveGame;
    use vgbl::runtime::supervisor::{
        resume_session, run_supervised_cohort, run_supervised_cohort_observed, ArrivalPlan,
        SupervisorConfig,
    };
    use vgbl::stream::{FaultPlan, LoadSpike};

    let graph = Arc::new(fixtures::fix_the_computer());
    let config = SessionConfig::for_frame(fixtures::FRAME.0, fixtures::FRAME.1);

    // Part 1: the overload sweep — arrival rate × queue capacity. Every
    // cell satisfies the accounting identity exactly; nothing is lost
    // between the admission queue and the outcome rows.
    println!("overload sweep: 48 guided sessions on 2 slots.\n");
    println!(
        "{:<8} {:>9} {:>6} {:>9} {:>10} {:>13}",
        "gap ms", "capacity", "shed", "degraded", "completed", "p99 wait ms"
    );
    for &gap in &[400.0, 40.0, 4.0] {
        for &cap in &[2usize, 8] {
            let sup = SupervisorConfig {
                queue_capacity: cap,
                slots: 2,
                queue_deadline_ms: 3_000.0,
                step_ms: 50.0,
                ..SupervisorConfig::default()
            };
            let arrivals = ArrivalPlan::new(0xE14, gap).expect("positive mean gap");
            let report = run_supervised_cohort(
                graph.clone(),
                config.clone(),
                &sup,
                48,
                &|_, _| Box::new(GuidedBot::new()),
                &arrivals,
            )
            .expect("supervised cohort runs");
            assert!(
                report.accounts_exactly(),
                "admitted = completed + failed + recovered + gave_up must hold: {report:?}"
            );
            println!(
                "{:<8} {:>9} {:>6} {:>9} {:>10} {:>13.1}",
                gap, cap, report.shed, report.degraded, report.completed,
                report.queue_wait.p99_ms
            );
        }
    }

    // Part 2: a stampede with transient crashes. Every third session
    // panics after its sixth decision on the first incarnation; the
    // supervisor restarts it from the last checkpoint. Warm fetches run
    // over a lossy link behind the shared circuit breaker.
    let factory = |i: usize, incarnation: u32| -> Box<dyn Bot> {
        if i % 3 == 1 && incarnation == 0 {
            Box::new(CrashAfter { inner: GuidedBot::new(), at: 6, seen: 0 })
        } else {
            Box::new(GuidedBot::new())
        }
    };
    let profile = || {
        let obs = Obs::recording();
        let sup = SupervisorConfig {
            queue_capacity: 4,
            slots: 2,
            step_ms: 80.0,
            checkpoint_every: 5,
            warm_faults: FaultPlan::new(0xFEED)
                .with_loss(0.4)
                .expect("valid rate")
                .with_load_spike(LoadSpike::new(0.0, 500.0, 2.0).expect("valid spike")),
            ..SupervisorConfig::default()
        };
        let arrivals = ArrivalPlan::new(9, 20.0)
            .expect("positive mean gap")
            .with_spike(LoadSpike::new(0.0, 200.0, 3.0).expect("valid spike"));
        let report = run_supervised_cohort_observed(
            graph.clone(),
            config.clone(),
            &sup,
            24,
            &factory,
            &arrivals,
            &obs,
            "exp14",
        )
        .expect("supervised cohort runs");
        let snap = obs.snapshot();
        let exports = (snap.to_table(), snap.metrics_csv(), snap.spans_csv(), snap.to_jsonl());
        (sup, report, snap, exports)
    };
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the injected panics quiet
    let (sup, report, snap, exports) = profile();
    let (_, report2, _, exports2) = profile();
    std::panic::set_hook(prev_hook);

    assert!(report.accounts_exactly(), "{report:?}");
    assert!(report.shed > 0, "the spike must shed: {report:?}");
    assert!(report.degraded > 0, "the spike must degrade before shedding");
    assert!(report.recovered >= 1, "at least one session recovers from a checkpoint");
    println!(
        "\nspiked stampede (24 arrivals, queue 4, 2 slots, every 3rd bot crashing):\n\
         {} admitted = {} completed + {} failed + {} recovered + {} gave up;\n\
         {} shed, {} degraded, {} restarts, peak queue {},\n\
         breaker: {} trips / {} fast failures, warm fetches {} sent / {} skipped.",
        report.admitted,
        report.completed,
        report.failed,
        report.recovered,
        report.gave_up,
        report.shed,
        report.degraded,
        report.restarts,
        report.peak_queue_depth,
        report.breaker.trips,
        report.breaker.fast_failures,
        report.warm_attempted,
        report.warm_skipped,
    );

    // The recovery audit trail: restore the recorded checkpoint,
    // re-drive the final incarnation's bot, and the post-restore log
    // tail must replay bit-identically.
    let r = &report.recoveries[0];
    let save = SaveGame::from_text(r.checkpoint.as_ref().expect("crashed past a checkpoint"))
        .expect("checkpoint text parses");
    let mut bot = factory(r.session, r.restarts);
    let replay = resume_session(
        graph.clone(),
        config.clone(),
        &save,
        &mut *bot,
        r.resumed_at_step,
        sup.max_steps,
        sup.tick_ms,
    )
    .expect("recorded checkpoint resumes");
    assert_eq!(replay.log.events(), r.tail.as_slice(), "post-restore tail replays exactly");
    println!(
        "\nrecovery cross-check: session {} resumed at step {} after {} restart(s);\n\
         replaying its checkpoint reproduces all {} post-restore log events bit-identically.",
        r.session,
        r.resumed_at_step,
        r.restarts,
        r.tail.len()
    );

    // Counters vs report: the obs layer counts at the same sites but
    // through a separate path, so exact agreement is real redundancy.
    assert_eq!(snap.counter_total("supervisor.admitted"), report.admitted as u64);
    assert_eq!(snap.counter_total("supervisor.shed"), report.shed as u64);
    assert_eq!(snap.counter_total("supervisor.degraded"), report.degraded as u64);
    assert_eq!(snap.counter_total("supervisor.completed"), report.completed as u64);
    assert_eq!(snap.counter_total("supervisor.recovered"), report.recovered as u64);
    assert_eq!(snap.counter_total("supervisor.failed"), report.failed as u64);
    assert_eq!(snap.counter_total("supervisor.gave_up"), report.gave_up as u64);
    assert_eq!(snap.counter_total("supervisor.restarts"), report.restarts);
    assert_eq!(
        snap.gauge_max("supervisor.queue_depth_peak"),
        report.peak_queue_depth as u64
    );
    let waits = snap.histogram("supervisor.queue_wait_us").expect("histogram recorded");
    assert_eq!(waits.count, report.queue_wait.count as u64);

    // Determinism: the whole supervised run again, byte for byte.
    assert_eq!(report, report2, "identical runs ⇒ identical reports, field for field");
    assert_eq!(exports, exports2, "identical runs ⇒ byte-identical obs exports");
    println!(
        "\nreplayed the whole supervised run: the report and all four obs exports\n\
         (text table, metrics CSV, spans CSV, JSON lines) are byte-identical\n\
         ({} metric rows, {} trace).",
        snap.metrics.len(),
        snap.traces.len()
    );
}

fn exp15() {
    header("EXP-15", "windowed telemetry: SLO-driven ladder, burn-rate alerts, flamegraphs");
    use vgbl::obs::{folded_stacks, hotspot_table, profile_diff, AlertPhase, Obs};
    use vgbl::runtime::supervisor::{
        run_supervised_cohort_observed, ArrivalPlan, LadderPolicy, SloLadderConfig,
        SupervisorConfig,
    };
    use vgbl::stream::{simulate_faulty_observed, FaultPlan, FaultyLink, RetryPolicy};

    let graph = Arc::new(fixtures::fix_the_computer());
    let config = SessionConfig::for_frame(fixtures::FRAME.0, fixtures::FRAME.1);

    // Part 1: the two degradation ladders under the *same* arrival seed.
    // One slot, a short queue, arrivals paced against the service time,
    // so admission keeps up only if the ladder makes sessions cheaper.
    let ladder = SloLadderConfig {
        shed_budget: 0.005,
        wait_target_ms: 50.0,
        wait_budget: 0.05,
        short_ms: 100.0,
        long_ms: 2_000.0,
        degrade_burn: 1.0,
        conceal_burn: 2.0,
    };
    let run = |policy: LadderPolicy| {
        let obs = Obs::recording();
        let sup = SupervisorConfig {
            queue_capacity: 3,
            slots: 1,
            queue_deadline_ms: 10_000.0,
            step_ms: 100.0,
            ladder: policy,
            ..SupervisorConfig::default()
        };
        let arrivals = ArrivalPlan::new(2, 700.0).expect("positive mean gap");
        let report = run_supervised_cohort_observed(
            graph.clone(),
            config.clone(),
            &sup,
            32,
            &|_, _| Box::new(GuidedBot::new()),
            &arrivals,
            &obs,
            "exp15",
        )
        .expect("supervised cohort runs");
        let series_csv = obs.series_csv();
        let alerts_csv = report.alerts.to_csv();
        (report, series_csv, alerts_csv)
    };
    let (occ, _, _) = run(LadderPolicy::Occupancy);
    let (slo, slo_series, slo_alerts) = run(LadderPolicy::SloDriven(ladder));

    println!("32 arrivals (seeded plan, mean gap 700 ms) on 1 slot, queue 3:\n");
    println!(
        "{:<12} {:>6} {:>9} {:>10} {:>13} {:>8}",
        "ladder", "shed", "degraded", "completed", "budget spend", "firing"
    );
    for (name, r) in [("occupancy", &occ), ("slo-driven", &slo)] {
        assert!(r.accounts_exactly(), "{r:?}");
        println!(
            "{:<12} {:>6} {:>9} {:>10} {:>13.1} {:>8}",
            name,
            r.shed,
            r.degraded,
            r.completed,
            r.ledgers[0].spend(),
            r.alerts.count(AlertPhase::Firing),
        );
    }
    assert!(occ.shed > 0, "the stampede must overload the occupancy ladder");
    assert!(slo.shed < occ.shed, "burn-rate memory must shed fewer sessions");
    assert!(slo.ledgers[0].spend() <= occ.ledgers[0].spend(), "equal-or-less budget spent");

    // Ledger vs report: the error-budget ledger is computed from the
    // SLO control series, the report from the outcome rows — two
    // independent accumulation paths that must agree exactly.
    for r in [&occ, &slo] {
        assert_eq!(r.ledgers[0].objective, "shed_rate");
        assert_eq!(r.ledgers[0].bad as usize, r.shed, "ledger bad == report shed");
        assert_eq!(r.ledgers[0].total as usize, r.sessions, "ledger total == arrivals");
        assert_eq!(r.ledgers[1].objective, "admission_wait");
        assert_eq!(r.ledgers[1].total as usize, r.admitted, "every admit is measured");
    }
    println!(
        "\nledger cross-check: shed_rate ledger ({}/{} bad, {:.1}x budget) equals the\n\
         report's outcome accounting on both runs; admission_wait measured {} admits.",
        slo.ledgers[0].bad,
        slo.ledgers[0].total,
        slo.ledgers[0].spend(),
        slo.ledgers[1].total,
    );

    // The alert timeline: exact pending -> firing -> resolved instants.
    println!("\nocc-ladder alert timeline ({} transitions):", occ.alerts.events.len());
    for e in occ.alerts.events.iter().take(8) {
        println!("  t={:>10}us {:<16} {:<6} {}", e.t_us, e.objective, e.rule, e.phase.label());
    }
    if occ.alerts.events.len() > 8 {
        println!("  ... {} more", occ.alerts.events.len() - 8);
    }
    assert!(occ.alerts.count(AlertPhase::Firing) > 0, "overspend must fire an alert");
    assert!(!occ.ledgers[0].within_budget(), "occupancy overspends its shed budget");

    // Determinism: the SLO-driven run again, byte for byte — report,
    // windowed-series CSV, and the alert timeline.
    let (slo2, slo_series2, slo_alerts2) = run(LadderPolicy::SloDriven(ladder));
    assert_eq!(slo, slo2, "identical runs => identical reports, field for field");
    assert_eq!(slo_series, slo_series2, "byte-identical series export");
    assert_eq!(slo_alerts, slo_alerts2, "byte-identical alert timeline");
    assert!(slo_series.contains("supervisor.arrivals"), "arrival series tapped");
    assert!(slo_series.contains("supervisor.queue_wait_us"), "wait series tapped");
    println!(
        "\nreplayed the SLO-driven run: report, series CSV ({} bytes) and alert\n\
         timeline CSV ({} bytes) are byte-identical.",
        slo_series.len(),
        slo_alerts.len(),
    );

    // Part 2: flamegraph profiling. A healthy and a lossy streaming
    // session, folded into inferno-format stacks; the diff localises
    // exactly which frames (stall, conceal) the faults inflated.
    let stream_profile = |loss: f64| {
        let obs = Obs::recording();
        let footage = bench_footage(96, 64, 8, 7);
        let video = encode(&footage, 5, Quality::Medium, 2);
        let table = table_for(&footage);
        let map = ChunkMap::build(&video, &table).expect("chunks");
        let n = table.len() as u32;
        let trace: Vec<TraceStep> = (1..n)
            .map(|room| TraceStep {
                segment: SegmentId(room),
                watch_ms: 1500.0,
                branch_targets: vec![SegmentId(0)],
            })
            .collect();
        let plan = FaultPlan::new(0xE15).with_loss(loss).expect("valid rate");
        let link = FaultyLink::new(LinkModel::mbps(2.0, 30.0).expect("valid link"), plan);
        simulate_faulty_observed(
            &map,
            &link,
            PrefetchPolicy::Linear { lookahead: 1 },
            &RetryPolicy::default(),
            &trace,
            &obs,
            "stream".into(),
        )
        .expect("stream completes");
        obs.snapshot()
    };
    let healthy = stream_profile(0.0);
    let lossy = stream_profile(0.12);
    let folded = folded_stacks(&lossy);
    assert_eq!(folded, folded_stacks(&stream_profile(0.12)), "folded stacks replay exactly");
    println!("\nfolded stacks of the lossy run (inferno format, first 6 lines):");
    for line in folded.lines().take(6) {
        println!("  {line}");
    }
    println!("\n{}", hotspot_table(&lossy, 6));
    let diff = profile_diff(&healthy, &lossy, 1.10);
    assert!(!diff.is_clean(), "injected loss must surface as a profile regression");
    println!("{}", diff.to_table());
}

fn exp17() {
    header("EXP-17", "sharded fleet: hash routing, failure domains, migration, autoscaling");
    use vgbl::runtime::supervisor::{ArrivalPlan, SupervisorConfig};
    use vgbl::runtime::{
        run_fleet, AutoscaleConfig, FleetConfig, FleetRouter, FleetWorkload, MigrationConfig,
        MigrationReason, SessionOutcome, ShardFault, ShardFaultKind,
    };
    use vgbl::stream::LoadSpike;

    // `EXP17_SESSIONS` scales the stampede down for CI smoke runs; the
    // recorded numbers come from the default 1M-arrival run.
    let n: usize = std::env::var("EXP17_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    // Part 1: the consistent-hash router at fleet scale. Two rings built
    // from the same inputs agree on every one of the n keys, load stays
    // near fair share, and removing one shard re-homes roughly 1/8 of
    // the keys and not a single other one.
    let router = FleetRouter::new(0xE17, 64, 8).expect("router builds");
    let replica = FleetRouter::new(0xE17, 64, 8).expect("router builds");
    let mut pruned = router.clone();
    pruned.remove_shard(3);
    let mut counts = [0u64; 8];
    let mut moved = 0u64;
    for k in 0..n as u64 {
        let s = router.route(k).expect("key routes");
        assert_eq!(replica.route(k), Some(s), "independently built rings agree");
        counts[s as usize] += 1;
        let after = pruned.route(k).expect("key routes after removal");
        if s == 3 {
            assert_ne!(after, 3, "key {k} still routes to the removed shard");
            moved += 1;
        } else {
            assert_eq!(after, s, "removal re-homed unrelated key {k}");
        }
    }
    println!(
        "router, {n} keys over 8 shards × 64 vnodes: replicas agree on every key;\n\
         per-shard keys {:?} (fair {});\n\
         removing shard 3 re-homed {moved} keys ({:.2}%, ideal 12.50%) and no others.",
        counts,
        n / 8,
        100.0 * moved as f64 / n as f64
    );

    // Part 2: a seeded synthetic stampede of n arrivals through a
    // degraded link, a stall and a shard crash with the autoscaler on —
    // run twice. The two FleetReports must be equal field for field:
    // every outcome, every migration record, every scale event.
    let stampede = FleetConfig {
        shards: 4,
        vnodes: 32,
        shard: SupervisorConfig {
            queue_capacity: 64,
            queue_deadline_ms: 1e9,
            slots: 6,
            step_ms: 1.0,
            checkpoint_every: 5,
            ..SupervisorConfig::default()
        },
        control_interval_ms: 100.0,
        // SLO drains stay out of the headline run (any shed blows the
        // 0.5% budget and a drain under overload only sheds capacity);
        // the crash exercises migration, the autoscaler absorbs load.
        migration: MigrationConfig {
            burn_threshold: 1e12,
            sustain_ticks: 10,
            max_drain_occupancy: f64::INFINITY,
            verify_replay: true,
        },
        faults: vec![
            ShardFault { at_ms: 50.0, shard: 2, kind: ShardFaultKind::DegradedLink { loss: 0.9 } },
            ShardFault {
                at_ms: 100.0,
                shard: 1,
                kind: ShardFaultKind::Stall { duration_ms: 200.0 },
            },
            ShardFault { at_ms: 150.0, shard: 0, kind: ShardFaultKind::Crash },
        ],
        autoscale: Some(AutoscaleConfig {
            up_burn: 2.0,
            down_burn: 0.25,
            sustain_ticks: 1,
            cooldown_ms: 300.0,
            min_shards: 2,
            max_shards: 8,
        }),
        ..FleetConfig::default()
    };
    let synthetic = FleetWorkload::Synthetic { mean_segments: 4 };
    let arrivals = ArrivalPlan::new(9, 2.0)
        .expect("positive mean gap")
        .with_spike(LoadSpike::new(0.0, 2_000.0, 2.0).expect("valid spike"));
    let t0 = Instant::now();
    let a = run_fleet(&synthetic, &stampede, n, &arrivals).expect("fleet runs");
    let wall = t0.elapsed();
    let b = run_fleet(&synthetic, &stampede, n, &arrivals).expect("fleet runs");
    assert_eq!(a, b, "same seeds, same faults ⇒ byte-identical FleetReport");
    assert!(a.accounts_exactly(), "every arrival must land in exactly one outcome row");
    let ups = a.scale_events.iter().filter(|e| e.up).count();
    let downs = a.scale_events.len() - ups;
    for w in a.scale_events.windows(2) {
        assert!(w[1].at_ms - w[0].at_ms >= 300.0 - 1e-9, "autoscale cooldown violated");
    }
    println!(
        "\nstampede, {n} seeded arrivals (spiked ×2 early) through crash + stall +\n\
         degraded link, autoscaler 2..8 shards: completed {} / recovered {} / shed {},\n\
         {} migrations, {} scale events ({ups} up / {downs} down, cooldown respected),\n\
         makespan {:.0} ms simulated in {:.2} s wall; the rerun report is byte-identical.",
        a.completed,
        a.recovered,
        a.shed,
        a.migrations.len(),
        a.scale_events.len(),
        a.makespan_ms,
        wall.as_secs_f64()
    );

    // Part 3: kill one of eight shards mid-stampede on the real engine.
    // Every session that crashed past a checkpoint migrates; the
    // handed-off checkpoint restores to the exact canonical bytes and a
    // shadow replay of it must match the session's post-migration log
    // tail. Sessions caught before their first checkpoint are shed with
    // an explicit reason — nothing is lost silently.
    let graph = Arc::new(fixtures::fix_the_computer());
    let config = SessionConfig::for_frame(fixtures::FRAME.0, fixtures::FRAME.1);
    let factory = |_: usize, _: u32| -> Box<dyn Bot> { Box::new(GuidedBot::new()) };
    let engine = FleetWorkload::Engine { graph, config, factory: &factory };
    let kill = FleetConfig {
        shards: 8,
        vnodes: 32,
        shard: SupervisorConfig {
            queue_capacity: 16,
            queue_deadline_ms: 1e9,
            slots: 2,
            step_ms: 50.0,
            checkpoint_every: 3,
            ..SupervisorConfig::default()
        },
        migration: MigrationConfig {
            burn_threshold: 1e12,
            sustain_ticks: 10,
            max_drain_occupancy: f64::INFINITY,
            verify_replay: true,
        },
        faults: vec![ShardFault { at_ms: 400.0, shard: 2, kind: ShardFaultKind::Crash }],
        ..FleetConfig::default()
    };
    let arrivals = ArrivalPlan::new(5, 1.0).expect("positive mean gap");
    let report = run_fleet(&engine, &kill, 64, &arrivals).expect("fleet runs");
    assert!(report.accounts_exactly(), "zero silent loss: {report:?}");
    assert!(!report.migrations.is_empty(), "the crash must catch sessions in flight");
    for m in &report.migrations {
        assert_eq!(m.reason, MigrationReason::Crash, "only the crash migrates here: {m:?}");
        assert_eq!(m.from, 2, "every migration leaves the killed shard: {m:?}");
        assert_eq!(m.handoff_ok, Some(true), "handoff digest mismatch: {m:?}");
        assert_ne!(m.verified, Some(false), "post-migration replay diverged: {m:?}");
    }
    let crash_migrations = report.migrations.len();
    let verified = report.migrations.iter().filter(|m| m.verified == Some(true)).count();
    assert!(verified >= 1, "at least one migration replay-verifies: {:?}", report.migrations);
    let early_sheds = report
        .outcomes
        .iter()
        .filter(|o| {
            matches!(o, SessionOutcome::Shed { reason }
                if reason == "shard crashed before first checkpoint")
        })
        .count();
    println!(
        "\nkill 1-of-8 (engine sessions, crash at 400 ms): 64 arrivals →\n\
         {} completed, {} recovered, {} shed ({} of those caught pre-checkpoint);\n\
         {} migration(s), {} for the crash, all handoffs digest-identical,\n\
         {} replay-verified against the handed-off checkpoint, none diverged.",
        report.completed, report.recovered, report.shed, early_sheds,
        report.migrations.len(), crash_migrations, verified
    );

    // Part 4: failure domains contain the blast radius. Same total
    // capacity (4 slots, 16 queue seats), same arrivals, same crash
    // instant: the fleet loses a quarter of its capacity, the single
    // big shard loses everything — so the fleet must shed strictly
    // less.
    let sharded = FleetConfig {
        shards: 4,
        vnodes: 32,
        shard: SupervisorConfig {
            queue_capacity: 4,
            queue_deadline_ms: 1e9,
            slots: 1,
            step_ms: 10.0,
            ..SupervisorConfig::default()
        },
        faults: vec![ShardFault { at_ms: 120.0, shard: 1, kind: ShardFaultKind::Crash }],
        ..FleetConfig::default()
    };
    let single = FleetConfig {
        shards: 1,
        vnodes: 32,
        shard: SupervisorConfig {
            queue_capacity: 16,
            queue_deadline_ms: 1e9,
            slots: 4,
            step_ms: 10.0,
            ..SupervisorConfig::default()
        },
        faults: vec![ShardFault { at_ms: 120.0, shard: 0, kind: ShardFaultKind::Crash }],
        ..FleetConfig::default()
    };
    let burst = FleetWorkload::Synthetic { mean_segments: 3 };
    let burst_arrivals = ArrivalPlan::new(29, 2.0).expect("positive mean gap");
    let fleet = run_fleet(&burst, &sharded, 2_000, &burst_arrivals).expect("fleet runs");
    let solo = run_fleet(&burst, &single, 2_000, &burst_arrivals).expect("fleet runs");
    assert!(fleet.accounts_exactly() && solo.accounts_exactly());
    assert_eq!(solo.routable_shards, 0, "the single shard was the whole fleet");
    assert!(
        fleet.shed < solo.shed,
        "failure domains must contain the blast radius: fleet shed {} vs single {}",
        fleet.shed,
        solo.shed
    );
    println!(
        "\nblast radius, 2000 arrivals at equal total capacity, crash at 120 ms:\n\
         4×1-slot fleet shed {} (completed {}), 1×4-slot monolith shed {} (completed {})\n\
         — the fleet sheds strictly less because three failure domains survive.",
        fleet.shed, fleet.completed, solo.shed, solo.completed
    );
}

fn exp18() {
    header("EXP-18", "cooperative executor: 10k+ in-flight sessions, batched chunk I/O");
    use vgbl::media::cache::GopCache;
    use vgbl::obs::Obs;
    use vgbl::runtime::server::{
        run_playback_cohort_observed, run_playback_cohort_observed_threaded,
        run_playback_cohort_with_stats,
    };

    // `EXP18_SESSIONS` scales the cohort down for CI smoke runs; the
    // recorded numbers come from the default 12k-session run.
    let n: usize = std::env::var("EXP18_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12_000);

    let footage = bench_footage(96, 64, 6, 3);
    let video = Arc::new(encode(&footage, 15, Quality::High, 2));
    let table = table_for(&footage);

    // Part 1: one executor hosts the whole cohort. Every session joins
    // the run queue on the first tick and yields at each fetch boundary
    // until its final serve, so the scheduler's high-water mark must be
    // the full cohort — n sessions in flight at once on one shard, no
    // OS threads per session.
    let run = || {
        run_playback_cohort_with_stats(
            video.clone(),
            &table,
            Arc::new(GopCache::new(64)),
            n,
            4,
            30,
        )
        .expect("cohort runs")
    };
    let t0 = Instant::now();
    let (report, stats) = run();
    let wall = t0.elapsed();
    assert_eq!(report.outcomes.len(), n, "every session gets an outcome row");
    assert_eq!(report.failed, 0, "healthy cohort");
    assert!(
        stats.peak_in_flight >= n,
        "all {n} sessions must be in flight at once (peak {})",
        stats.peak_in_flight
    );
    let (report2, stats2) = run();
    assert_eq!(
        format!("{report:?}"),
        format!("{report2:?}"),
        "same seed ⇒ byte-identical cohort report"
    );
    assert_eq!(stats, stats2, "same seed ⇒ identical scheduler counters");
    println!(
        "{n} playback sessions on one executor: peak in-flight {}, {} ticks,\n\
         {} polls, {} fetch batches covering {} coalesced GOP keys,\n\
         {} frames served / {} decoded in {:.2} s wall; rerun byte-identical.",
        stats.peak_in_flight,
        stats.ticks,
        stats.polls,
        stats.batches,
        stats.batched_keys,
        report.frames_served,
        report.frames_decoded,
        wall.as_secs_f64()
    );

    // Part 2: scheduling is invisible. A small observed cohort run on
    // the executor and on the thread-per-session reference path agrees
    // byte for byte — outcome rows and all four obs export formats.
    let obs_exec = Obs::recording();
    let exec = run_playback_cohort_observed(
        video.clone(),
        &table,
        Arc::new(GopCache::new(64)),
        64,
        4,
        25,
        &obs_exec,
    )
    .expect("cohort runs");
    let obs_thr = Obs::recording();
    let threaded = run_playback_cohort_observed_threaded(
        video.clone(),
        &table,
        Arc::new(GopCache::new(64)),
        64,
        4,
        25,
        &obs_thr,
    )
    .expect("cohort runs");
    assert_eq!(
        format!("{:?}", exec.outcomes),
        format!("{:?}", threaded.outcomes),
        "same outcome rows on both schedulers"
    );
    assert_eq!(
        (exec.frames_served, exec.switches, exec.frames_decoded),
        (threaded.frames_served, threaded.switches, threaded.frames_decoded),
        "same serving and decode totals on both schedulers"
    );
    let se = obs_exec.snapshot();
    let st = obs_thr.snapshot();
    assert_eq!(se.to_table(), st.to_table());
    assert_eq!(se.metrics_csv(), st.metrics_csv());
    assert_eq!(se.spans_csv(), st.spans_csv());
    assert_eq!(se.to_jsonl(), st.to_jsonl());
    println!(
        "\n64-session observed cohort, executor vs thread-per-session reference:\n\
         outcome rows, serving totals and all four obs exports byte-identical\n\
         — the executor changes who schedules, never what the sessions see."
    );
}

fn exp19() {
    header("EXP-19", "durable store: fleet-wide power loss, seeded disk faults, chaos");
    use vgbl::runtime::chaos::{run_chaos, ChaosConfig};
    use vgbl::runtime::supervisor::{ArrivalPlan, SupervisorConfig};
    use vgbl::runtime::{run_fleet, FleetConfig, FleetWorkload, MigrationConfig, SessionOutcome};
    use vgbl::store::{DiskFaultPlan, StoreConfig};

    // `EXP19_SESSIONS` scales the fleets down for CI smoke runs; the
    // recorded numbers come from the default 50k-arrival runs.
    let n: usize = std::env::var("EXP19_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);

    // A provisioned fleet (service keeps up with the 2 ms arrival gaps)
    // so the power losses hit a fleet that is busy, not drowning, and a
    // snapshot cadence that scales with the fleet — the compacted
    // snapshot writes one record per session ever acked, so a cadence
    // tuned for a 10-session test is quadratic at 50k.
    let base = |m: usize, losses: Vec<f64>, store: StoreConfig| FleetConfig {
        shards: 4,
        vnodes: 64,
        router_seed: 0xE19,
        shard: SupervisorConfig {
            queue_capacity: m.max(16),
            queue_deadline_ms: 1e9,
            slots: 6,
            step_ms: 1.0,
            checkpoint_every: 5,
            ..SupervisorConfig::default()
        },
        // As in EXP-17: SLO drains stay out of the headline run — a
        // drain retires capacity, and this experiment is about storage
        // durability, not overload policy.
        migration: MigrationConfig {
            burn_threshold: 1e12,
            sustain_ticks: 10,
            max_drain_occupancy: f64::INFINITY,
            verify_replay: true,
        },
        store: Some(store),
        power_loss_at_ms: losses,
        ..FleetConfig::default()
    };
    // Arrivals at 4 ms mean gaps: below the warmed fleet's service
    // rate, so the losses hit in-flight work rather than a backlog.
    // `m` sessions arrive over ~4m ms; loss times are fractions of m.
    let workload = FleetWorkload::Synthetic { mean_segments: 5 };
    let arrivals = ArrivalPlan::new(0xE19, 4.0).expect("positive mean gap");

    // Part 1: disks are durable, the fleet is not. Two whole-fleet
    // power losses vaporise every shard's memory mid-run; every session
    // with an acknowledged checkpoint must come back and finish, so
    // `lost_durable` is exactly zero and the only honest sheds are
    // sessions that never reached their first flush.
    let clean = base(
        n,
        vec![n as f64, 2.5 * n as f64],
        StoreConfig {
            snapshot_every: 1024,
            dual_write: false,
            faults: DiskFaultPlan::new(0xE19_C1EA),
        },
    );
    let t0 = Instant::now();
    let a = run_fleet(&workload, &clean, n, &arrivals).expect("fleet runs");
    let wall = t0.elapsed();
    assert!(a.accounts_exactly(), "accounting identity must hold");
    let d = a.durability.as_ref().expect("store configured");
    assert_eq!(a.lost_durable, 0, "clean disks lose nothing acked");
    assert!(d.lost.is_empty() && d.scrubs.iter().all(|s| s.lost.is_empty()));
    assert_eq!(d.scrubs.len(), 2, "one scrub per power loss");
    for o in &a.outcomes {
        if let SessionOutcome::Shed { reason } = o {
            assert_eq!(reason, "power loss before first durable checkpoint");
        }
    }
    let b = run_fleet(&workload, &clean, n, &arrivals).expect("fleet runs");
    assert_eq!(a, b, "same seed ⇒ byte-identical FleetReport, scrubs and all");
    println!(
        "clean disks, {n} sessions, 2 whole-fleet power losses:\n\
         completed {} / recovered {} (cold {}) / shed {} / lost_durable {},\n\
         {} WAL appends, {} acked, {} cold resumes ({} stale) in {:.2} s wall;\n\
         every shed is 'power loss before first durable checkpoint'; rerun byte-identical.",
        a.completed,
        a.recovered,
        a.recovered_cold,
        a.shed,
        a.lost_durable,
        d.store.appended,
        d.store.acked_records,
        d.cold_resumed,
        d.stale_resumes,
        wall.as_secs_f64()
    );

    // Part 2: the loss/corruption sweep. Torn writes and bit rot at
    // increasing rates, with and without dual-write; every session the
    // fleet sheds as lost must be attributed to a specific corrupt
    // record, and the identity `lost_durable == |durability.lost|`
    // holds in every cell. Dual-write never does worse than single.
    println!("\nfault sweep, {} sessions per cell (torn+rot at equal rates):", n / 5);
    println!("  rate    dual-write   recovered(cold)   lost_durable   repaired   sheds");
    for &rate in &[0.1, 0.3, 0.6] {
        let mut row = [0usize; 2];
        for (di, &dual) in [false, true].iter().enumerate() {
            let m = n / 5;
            // Six losses spread across the cell's arrival window, so
            // each cell suffers repeated cold restarts mid-flight.
            let losses = (1..=6).map(|k| 0.5 * k as f64 * m as f64).collect();
            let faulty = base(
                m,
                losses,
                StoreConfig {
                    snapshot_every: 1024,
                    dual_write: dual,
                    faults: DiskFaultPlan::new(0xE19_BAD)
                        .with_torn_writes(rate)
                        .and_then(|p| p.with_bit_rot(rate))
                        .expect("valid rates"),
                },
            );
            let r = run_fleet(&workload, &faulty, m, &arrivals).expect("fleet runs");
            assert!(r.accounts_exactly(), "identity must hold under faults");
            let d = r.durability.as_ref().expect("store configured");
            assert_eq!(r.lost_durable, d.lost.len(), "every loss attributed to a record");
            let corrupt_sheds = r
                .outcomes
                .iter()
                .filter(|o| {
                    matches!(o, SessionOutcome::Shed { reason }
                        if reason == "cold restart: durable checkpoint corrupt")
                })
                .count();
            assert_eq!(corrupt_sheds, r.lost_durable, "shed rows match attributed losses");
            let repaired: usize = d.scrubs.iter().map(|s| s.repaired.len()).sum();
            row[di] = r.lost_durable;
            println!(
                "  {rate:<7} {:<12} {:>8} ({:<4})   {:>12}   {repaired:>8}   {:>5}",
                if dual { "on" } else { "off" },
                r.recovered,
                r.recovered_cold,
                r.lost_durable,
                r.shed
            );
        }
        assert!(row[1] <= row[0], "dual-write must never lose more than single-copy");
    }

    // Part 3: the chaos orchestrator composes shard crashes, stalls,
    // degraded links and power losses over one clock, runs the fleet
    // twice, and machine-checks the invariants: exact accounting, no
    // dual outcomes, no unattributed acked loss, byte-identical rerun.
    let campaign = ChaosConfig {
        seed: 0xE19_CA05,
        sessions: (n / 50).max(200),
        crashes: 2,
        stalls: 1,
        degraded_links: 1,
        power_losses: 2,
        store: StoreConfig {
            snapshot_every: 8,
            dual_write: true,
            faults: DiskFaultPlan::new(0xE19_CA05)
                .with_torn_writes(0.4)
                .and_then(|p| p.with_bit_rot(0.3))
                .and_then(|p| p.with_lost_flushes(0.2))
                .and_then(|p| p.with_stale_reads(0.3))
                .expect("valid rates"),
        },
        ..ChaosConfig::default()
    };
    let report = run_chaos(&campaign).expect("campaign runs");
    for c in &report.checks {
        println!("  chaos check {:<26} {}", c.name, if c.pass { "PASS" } else { "FAIL" });
        assert!(c.pass, "{}: {}", c.name, c.detail);
    }
    println!(
        "\nchaos campaign, {} sessions, {} shard faults + {} power losses, all disk\n\
         fault types on: completed {} / recovered {} (cold {}) / shed {} /\n\
         lost_durable {} — all six invariants machine-checked, rerun byte-identical.",
        campaign.sessions,
        report.faults.len(),
        report.power_loss_at_ms.len(),
        report.fleet.completed,
        report.fleet.recovered,
        report.fleet.recovered_cold,
        report.fleet.shed,
        report.fleet.lost_durable
    );
}

fn exp20() {
    header("EXP-20", "causal session tracing: stitched journeys, exemplars, incident reports");
    use vgbl::obs::{
        aggregate, aggregate_by, export_journeys, journeys_where, tail_exemplars, TerminalState,
    };
    use vgbl::runtime::chaos::{run_chaos, ChaosConfig};
    use vgbl::store::{DiskFaultPlan, StoreConfig};

    // `EXP20_SESSIONS` scales the campaign down for CI smoke runs; the
    // recorded numbers come from the default 10k-session campaign.
    let n: usize = std::env::var("EXP20_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    // A synthetic session holds a slot ~250 ms (5 segments × 5 steps
    // × 10 ms), so the 4×2-slot fleet serves ~32/s. Arrivals at 35 ms
    // mean gaps (~29/s) run it near capacity — slots stay busy, so the
    // faults hit in-flight work — while each retired shard (a crash,
    // or an SLO drain off a stalled/degraded shard) pushes the
    // survivors into honest overload sheds. The horizon spreads the
    // faults across most of the arrival window.
    let campaign = ChaosConfig {
        seed: 0xE20_0006,
        sessions: n,
        arrival_interval_ms: 35.0,
        crashes: 2,
        stalls: 1,
        degraded_links: 1,
        power_losses: 1,
        horizon_ms: 24.0 * n as f64,
        store: StoreConfig {
            snapshot_every: 1024,
            dual_write: true,
            faults: DiskFaultPlan::new(0xE20_CA05)
                .with_torn_writes(0.3)
                .and_then(|p| p.with_bit_rot(0.2))
                .and_then(|p| p.with_stale_reads(0.2))
                .expect("valid rates"),
        },
        ..ChaosConfig::default()
    };
    let t0 = Instant::now();
    let report = run_chaos(&campaign).expect("campaign runs");
    let wall = t0.elapsed();
    for c in &report.checks {
        println!("  chaos check {:<26} {}", c.name, if c.pass { "PASS" } else { "FAIL" });
        assert!(c.pass, "{}: {}", c.name, c.detail);
    }
    let journeys = &report.fleet.journeys;

    // Coverage is total: one journey per offered session, none of them
    // unresolved — every terminal state is attributed.
    assert_eq!(journeys.len(), report.fleet.sessions, "100% journey coverage");
    assert!(
        journeys.iter().all(|j| j.terminal != TerminalState::Unresolved),
        "zero unattributed terminal states"
    );
    assert!(journeys.iter().all(|j| j.chain_ok()), "every span chain intact");

    // The query API over the stitched population.
    let agg = aggregate(journeys);
    let cross_shard = journeys_where(journeys, |j| j.shards().len() > 1).len();
    let by_terminal = aggregate_by(journeys, |j| j.terminal.name().to_string());
    assert_eq!(by_terminal.values().map(|a| a.total).sum::<usize>(), agg.total);
    println!(
        "\n{} sessions stitched from {} shards in {:.2} s wall: {} cross-shard,\n\
         {} migrations, {} cold resumes; critical path totals (ms):\n\
         queued {:.1} / streaming {:.1} / migrating {:.1} / blackout {:.1}",
        agg.total,
        report.fleet.shards.len(),
        wall.as_secs_f64(),
        cross_shard,
        agg.migrations,
        agg.cold_resumes,
        agg.critical.queued_ms,
        agg.critical.streaming_ms,
        agg.critical.migrating_ms,
        agg.critical.blackout_ms
    );
    for (name, a) in &by_terminal {
        println!("  terminal {:<10} {:>7}", name, a.total);
    }

    // Deterministic tail exemplars: the slowest journeys, each linked
    // to the trace id an operator would pull up.
    println!("\ntop-5 duration exemplars (histogram tail → trace):");
    for e in tail_exemplars(journeys, 5, |j| j.duration_ms().ceil() as u64) {
        println!(
            "  bucket {:>2}  {:>8} ms  session {:>6}  trace {:016x}",
            e.bucket, e.value, e.session, e.trace_id
        );
    }

    // Per-fault blast radii, cross-checked against the accounting
    // identity by the `incident_crosscheck` invariant above.
    println!("\n{}", report.incidents.render());

    // The whole observability surface is a pure function of the seed:
    // a second campaign reproduces the journey export and the incident
    // narrative byte for byte.
    let again = run_chaos(&campaign).expect("campaign reruns");
    assert_eq!(
        export_journeys(journeys),
        export_journeys(&again.fleet.journeys),
        "journey export byte-identical across reruns"
    );
    assert_eq!(
        report.incidents.render(),
        again.incidents.render(),
        "incident report byte-identical across reruns"
    );
    println!("journey export and incident report byte-identical across reruns.");
}

/// A bot that panics as soon as it is asked for input (EXP-12's fault
/// isolation demo).
struct PanicBot;
impl Bot for PanicBot {
    fn next_input(
        &mut self,
        _session: &vgbl::runtime::GameSession,
    ) -> vgbl::runtime::Result<Option<InputEvent>> {
        panic!("deliberately broken bot");
    }
}

/// A bot that panics after `at` decisions — EXP-14's transient crash.
/// The supervisor restarts it; its replacement incarnation (a fresh
/// [`GuidedBot`]) resumes from the checkpoint and finishes the game.
struct CrashAfter {
    inner: GuidedBot,
    at: usize,
    seen: usize,
}
impl Bot for CrashAfter {
    fn next_input(
        &mut self,
        session: &vgbl::runtime::GameSession,
    ) -> vgbl::runtime::Result<Option<InputEvent>> {
        self.seen += 1;
        if self.seen > self.at {
            panic!("injected transient crash");
        }
        self.inner.next_input(session)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("exp1") {
        exp1();
    }
    if want("exp2") {
        exp2();
    }
    if want("exp3") {
        exp3();
    }
    if want("exp4") {
        exp4();
    }
    if want("exp5") {
        exp5();
    }
    if want("exp6") {
        exp6();
    }
    if want("exp7") {
        exp7();
    }
    if want("exp8") {
        exp8();
    }
    if want("exp9") {
        exp9();
    }
    if want("exp10") {
        exp10();
    }
    if want("exp11") {
        exp11();
    }
    if want("exp12") {
        exp12();
    }
    if want("exp13") {
        exp13();
    }
    if want("exp14") {
        exp14();
    }
    if want("exp15") {
        exp15();
    }
    if want("exp17") {
        exp17();
    }
    if want("exp18") {
        exp18();
    }
    if want("exp19") {
        exp19();
    }
    if want("exp20") {
        exp20();
    }
}
