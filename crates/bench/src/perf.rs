//! Measurement core of the `vgbl-bench` binary: one deterministic
//! workload walked through every pipeline stage the paper's learner
//! sessions exercise — encode, full decode, cold and cached seeks,
//! streaming fetch, and cohort playback (per-session and batched) —
//! timed as min-of-iterations wall clock and emitted as a
//! machine-readable `BENCH_<n>.json` snapshot.
//!
//! Design rules:
//!
//! * **Deterministic inputs.** Footage, seek targets and cohort walks
//!   come from fixed seeds, so two snapshots differ only by the code
//!   under test (plus wall-clock noise, which min-of-iters suppresses).
//! * **Explicit targets.** Every operation carries a `target_per_s`
//!   floor chosen from the post-optimization trajectory with ~2×
//!   headroom; `met` makes regressions visible without diffing runs.
//! * **Profiled, not guessed.** The run records a span per operation
//!   iteration and folds them through [`vgbl::obs::profile`], so the
//!   snapshot carries its own hotspot table — the same tooling EXP-15
//!   uses for simulated clocks, here on wall-clock µs.
//! * **Hand-rolled JSON.** The workspace has no serde; the writer
//!   escapes strings and the reader is a tiny scanner
//!   ([`op_per_s`]), enough for trajectory merging and CI validation.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vgbl::media::cache::{GopCache, VideoId};
use vgbl::media::codec::{Decoder, EncodedVideo, Quality};
use vgbl::media::FrameKind;
use vgbl::media::seek::{seek, seek_cached};
use vgbl::media::SegmentId;
use vgbl::obs::{folded_stacks, hotspot_table, Obs, SpanRecorder};
use vgbl::runtime::{
    run_fleet, run_playback_cohort, run_playback_cohort_batched, run_playback_cohort_with_stats,
    ArrivalPlan, FleetConfig, FleetWorkload, ShardFault, ShardFaultKind, SupervisorConfig,
};
use vgbl::store::{DiskFaultPlan, StoreConfig};
use vgbl::stream::{simulate, ChunkMap, LinkModel, PrefetchPolicy, TraceStep};

use crate::{bench_footage, encode, table_for, RATE};

/// The operations every snapshot covers, in emission order. `fleet`
/// arrived with the `vgbl-bench/2` schema, `executor` with
/// `vgbl-bench/3`, `durability` with `vgbl-bench/4` and `journey` with
/// `vgbl-bench/5`; older snapshots carry prefixes of this list.
pub const OPS: [&str; 11] = [
    "encode",
    "decode_all",
    "seek_cold",
    "seek_cached",
    "stream_fetch",
    "cohort_playback",
    "cohort_batched",
    "fleet",
    "executor",
    "durability",
    "journey",
];

/// The required op set for a document: everything for `vgbl-bench/5`,
/// schema-appropriate prefixes for older snapshots (and trajectories
/// over them).
fn required_ops(json: &str) -> &'static [&'static str] {
    if json.contains("\"vgbl-bench/5\"") {
        &OPS
    } else if json.contains("\"vgbl-bench/4\"") {
        &OPS[..10]
    } else if json.contains("\"vgbl-bench/3\"") {
        &OPS[..9]
    } else if json.contains("\"vgbl-bench/2\"") {
        &OPS[..8]
    } else {
        &OPS[..7]
    }
}

/// Keys CI requires inside every per-operation JSON object.
pub const REQUIRED_OP_KEYS: [&str; 6] =
    ["wall_ms", "units", "unit", "per_s", "target_per_s", "met"];

/// Workload size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CI-sized: seconds, not minutes.
    Quick,
    /// The trajectory workload committed in `BENCH_<n>.json`.
    Full,
    /// Tiny, for in-process tests of the harness itself.
    Smoke,
}

impl Mode {
    /// Lower-case name used in the JSON.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Quick => "quick",
            Mode::Full => "full",
            Mode::Smoke => "smoke",
        }
    }
}

/// Concrete workload parameters of one run.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Footage width in pixels.
    pub width: u32,
    /// Footage height in pixels.
    pub height: u32,
    /// Number of synthetic shots.
    pub shots: usize,
    /// Footage RNG seed.
    pub seed: u64,
    /// Keyframe interval.
    pub gop: usize,
    /// Quantiser preset.
    pub quality: Quality,
    /// Encoder worker threads.
    pub threads: usize,
    /// Timing iterations per operation (min is reported).
    pub iters: usize,
    /// Random seek targets per timing iteration.
    pub seeks: usize,
    /// Stream-simulation repeats per timing iteration.
    pub stream_repeats: usize,
    /// Cohort sessions.
    pub sessions: usize,
    /// Cohort worker threads.
    pub workers: usize,
    /// Cohort steps per session.
    pub steps: usize,
    /// Fleet-op sessions routed through the sharded supervisor.
    pub fleet_sessions: usize,
    /// Executor-op sessions in flight on one cooperative executor.
    pub executor_sessions: usize,
}

impl Workload {
    /// The fixed workload of a mode.
    pub fn for_mode(mode: Mode) -> Workload {
        match mode {
            Mode::Quick => Workload {
                width: 160,
                height: 120,
                shots: 6,
                seed: 1,
                gop: 15,
                quality: Quality::Medium,
                threads: 4,
                iters: 3,
                seeks: 64,
                stream_repeats: 50,
                sessions: 12,
                workers: 4,
                steps: 120,
                fleet_sessions: 400,
                executor_sessions: 1_000,
            },
            Mode::Full => Workload {
                width: 256,
                height: 192,
                shots: 10,
                seed: 2,
                gop: 15,
                quality: Quality::Medium,
                threads: 8,
                iters: 5,
                seeks: 128,
                stream_repeats: 100,
                sessions: 24,
                workers: 8,
                steps: 200,
                fleet_sessions: 1_000,
                executor_sessions: 4_000,
            },
            Mode::Smoke => Workload {
                width: 64,
                height: 48,
                shots: 2,
                seed: 3,
                gop: 8,
                quality: Quality::Medium,
                threads: 2,
                iters: 1,
                seeks: 8,
                stream_repeats: 5,
                sessions: 4,
                workers: 2,
                steps: 10,
                fleet_sessions: 40,
                executor_sessions: 64,
            },
        }
    }
}

/// One operation's measurement.
#[derive(Debug, Clone, Copy)]
pub struct OpResult {
    /// Operation name (one of [`OPS`]).
    pub name: &'static str,
    /// Best (minimum) wall time over the iterations, in milliseconds.
    pub wall_ms: f64,
    /// Work units processed per iteration.
    pub units: usize,
    /// Unit label (`frames`, `seeks`, `chunks`).
    pub unit: &'static str,
    /// Throughput: `units / (wall_ms / 1000)`.
    pub per_s: f64,
    /// Floor the operation must sustain.
    pub target_per_s: f64,
}

impl OpResult {
    /// Whether the measured throughput met the target.
    pub fn met(&self) -> bool {
        self.per_s >= self.target_per_s
    }
}

/// A full snapshot: every operation plus the run's own profile.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Snapshot label (`before`, `after`, a git ref — caller's choice).
    pub label: String,
    /// Mode the workload came from.
    pub mode: Mode,
    /// The workload parameters.
    pub workload: Workload,
    /// Frame count of the rendered footage (derived, recorded for
    /// reproducibility checks).
    pub frames: usize,
    /// Per-operation measurements in [`OPS`] order.
    pub ops: Vec<OpResult>,
    /// Aligned-text hotspot table over the run's operation spans.
    pub hotspot_table: String,
    /// Inferno-format folded stacks of the same spans.
    pub folded: String,
}

/// Throughput floors, set from the post-optimization quick trajectory
/// on the reference container with ~2× headroom so CI noise does not
/// flap `met`. The `full` workload shares them: per-frame cost rises
/// with area but so does per-iteration work, and the floors are meant
/// as regression tripwires, not records.
fn target_per_s(name: &str) -> f64 {
    match name {
        "encode" => 90.0,
        "decode_all" => 1_400.0,
        "seek_cold" => 180.0,
        "seek_cached" => 5_000_000.0,
        "stream_fetch" => 2_000_000.0,
        "cohort_playback" => 6_000.0,
        "cohort_batched" => 2_500.0,
        "fleet" => 1_000.0,
        "executor" => 100.0,
        "durability" => 500.0,
        "journey" => 500.0,
        _ => 0.0,
    }
}

/// Runs the workload and measures every operation.
pub fn run(mode: Mode, label: &str) -> BenchReport {
    let w = Workload::for_mode(mode);
    let epoch = Instant::now();
    let mut rec = SpanRecorder::new(format!("vgbl-bench/{}", mode.name()));
    let now_us = |epoch: Instant| epoch.elapsed().as_micros() as u64;
    rec.enter("bench", 0);

    // Shared inputs, built once outside any timed region.
    let footage = bench_footage(w.width, w.height, w.shots, w.seed);
    let frames = footage.frames.len();
    let video = Arc::new(encode(&footage, w.gop, w.quality, w.threads));
    let table = table_for(&footage);
    let video_id = VideoId::of(&video);
    let decoder = Decoder::default();
    let n_gops = video.keyframes().len();

    // Min-of-iters timing with one span per iteration.
    let timed = |rec: &mut SpanRecorder, name: &'static str, f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..w.iters.max(1) {
            rec.enter(name, now_us(epoch));
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1000.0);
            rec.exit(now_us(epoch));
        }
        best
    };

    let mut ops = Vec::with_capacity(OPS.len());
    let push = |name: &'static str, wall_ms: f64, units: usize, unit: &'static str| {
        let per_s = if wall_ms > 0.0 { units as f64 / (wall_ms / 1000.0) } else { f64::INFINITY };
        OpResult { name, wall_ms, units, unit, per_s, target_per_s: target_per_s(name) }
    };

    // encode: footage → EncodedVideo, the authoring-time cost.
    let wall = timed(&mut rec, "encode", &mut || {
        std::hint::black_box(encode(&footage, w.gop, w.quality, w.threads));
    });
    ops.push(push("encode", wall, frames, "frames"));

    // decode_all: the whole stream back to RGB, sequential.
    let wall = timed(&mut rec, "decode_all", &mut || {
        std::hint::black_box(decoder.decode_all(&video).expect("bench video decodes"));
    });
    ops.push(push("decode_all", wall, frames, "frames"));

    // Seek targets: fixed-seed uniform draws over the whole timeline.
    let mut rng = StdRng::seed_from_u64(0x5eed_cafe_u64 ^ w.seed);
    let targets: Vec<usize> = (0..w.seeks).map(|_| rng.gen_range(0..frames)).collect();

    // seek_cold: decode-from-keyframe every time (no cache).
    let wall = timed(&mut rec, "seek_cold", &mut || {
        for &t in &targets {
            std::hint::black_box(seek(&decoder, &video, t).expect("cold seek"));
        }
    });
    ops.push(push("seek_cold", wall, targets.len(), "seeks"));

    // seek_cached: persistent cache across iterations, so min-of-iters
    // reports the fully warm cost — the steady state learners live in.
    let cache = GopCache::new(n_gops);
    let wall = timed(&mut rec, "seek_cached", &mut || {
        for &t in &targets {
            std::hint::black_box(
                seek_cached(&decoder, &video, video_id, &cache, t).expect("cached seek"),
            );
        }
    });
    ops.push(push("seek_cached", wall, targets.len(), "seeks"));

    // stream_fetch: the delivery simulation over the real chunk layout —
    // a straight watch of every segment, repeated to get out of the
    // sub-millisecond range.
    let map = ChunkMap::build(&video, &table).expect("chunk map builds");
    let link = LinkModel::mbps(40.0, 15.0).expect("link model");
    let frame_ms = 1000.0 / RATE.as_f64();
    let trace: Vec<TraceStep> = (0..table.len())
        .map(|i| {
            let seg = table.get(SegmentId(i as u32)).expect("segment exists");
            TraceStep {
                segment: SegmentId(i as u32),
                watch_ms: seg.len() as f64 * frame_ms,
                branch_targets: Vec::new(),
            }
        })
        .collect();
    let wall = timed(&mut rec, "stream_fetch", &mut || {
        for _ in 0..w.stream_repeats {
            std::hint::black_box(
                simulate(&map, &link, PrefetchPolicy::Linear { lookahead: 2 }, &trace)
                    .expect("stream simulation"),
            );
        }
    });
    ops.push(push("stream_fetch", wall, map.len() * w.stream_repeats, "chunks"));

    // cohort_playback: N concurrent learner walks over a fresh shared
    // cache per iteration (steady-state reuse, cold start included).
    let mut served = 0usize;
    let wall = timed(&mut rec, "cohort_playback", &mut || {
        let cache = Arc::new(GopCache::new(n_gops));
        let report =
            run_playback_cohort(video.clone(), &table, cache, w.sessions, w.workers, w.steps)
                .expect("cohort runs");
        assert_eq!(report.failed, 0, "bench cohort must not fail");
        served = report.frames_served;
    });
    ops.push(push("cohort_playback", wall, served, "frames"));

    // cohort_batched: the same walks in tick-lockstep with batched GOP
    // decode (each GOP once per tick, fanned over the pool).
    let mut served = 0usize;
    let wall = timed(&mut rec, "cohort_batched", &mut || {
        let cache = Arc::new(GopCache::new(n_gops));
        let report = run_playback_cohort_batched(
            video.clone(),
            &table,
            cache,
            w.sessions,
            w.workers,
            w.steps,
        )
        .expect("batched cohort runs");
        assert_eq!(report.failed, 0, "bench cohort must not fail");
        served = report.frames_served;
    });
    ops.push(push("cohort_batched", wall, served, "frames"));

    // fleet: the sharded supervisor routing a seeded synthetic stampede
    // through a mid-run shard crash — consistent-hash routing, admission,
    // checkpoint migration and re-dispatch, measured end to end as
    // sessions resolved per second of control-plane wall clock.
    let fleet_cfg = FleetConfig {
        shards: 4,
        vnodes: 32,
        shard: SupervisorConfig {
            queue_capacity: 64,
            queue_deadline_ms: 1e9,
            slots: 2,
            step_ms: 5.0,
            checkpoint_every: 5,
            ..SupervisorConfig::default()
        },
        faults: vec![ShardFault { at_ms: 150.0, shard: 0, kind: ShardFaultKind::Crash }],
        ..FleetConfig::default()
    };
    let fleet_workload = FleetWorkload::Synthetic { mean_segments: 4 };
    let fleet_arrivals = ArrivalPlan::new(w.seed ^ 0xF1EE, 1.0).expect("fleet arrival plan");
    let wall = timed(&mut rec, "fleet", &mut || {
        let report = run_fleet(&fleet_workload, &fleet_cfg, w.fleet_sessions, &fleet_arrivals)
            .expect("fleet bench runs");
        assert!(report.accounts_exactly(), "fleet bench must not lose sessions");
        std::hint::black_box(report);
    });
    ops.push(push("fleet", wall, w.fleet_sessions, "sessions"));

    // executor: the cooperative session executor holding the whole
    // cohort in flight on one thread of control — seeded run-queue
    // scheduling, yield-at-fetch state machines, per-tick batched GOP
    // prewarm — measured as sessions retired per second. Walks are
    // short (10 steps): the op stresses scheduling and batch-planning
    // overhead across many concurrent tasks, not serve volume.
    let wall = timed(&mut rec, "executor", &mut || {
        let cache = Arc::new(GopCache::new(n_gops));
        let (report, stats) = run_playback_cohort_with_stats(
            video.clone(),
            &table,
            cache,
            w.executor_sessions,
            w.workers,
            10,
        )
        .expect("executor cohort runs");
        assert_eq!(report.failed, 0, "bench executor cohort must not fail");
        assert!(
            stats.peak_in_flight >= w.executor_sessions,
            "the whole cohort must be in flight at once"
        );
        std::hint::black_box((report, stats));
    });
    ops.push(push("executor", wall, w.executor_sessions, "sessions"));

    // durability: the same synthetic stampede through a fleet that
    // writes every checkpoint to the durable store and suffers a
    // whole-fleet power loss mid-run (clean disks) — WAL encode,
    // flush/snapshot bookkeeping, scrub and cold-restart re-admission,
    // measured as sessions resolved per second.
    let durability_cfg = FleetConfig {
        store: Some(StoreConfig {
            snapshot_every: 8,
            dual_write: true,
            faults: DiskFaultPlan::new(w.seed ^ 0xD15C),
        }),
        power_loss_at_ms: vec![200.0],
        ..fleet_cfg.clone()
    };
    let wall = timed(&mut rec, "durability", &mut || {
        let report =
            run_fleet(&fleet_workload, &durability_cfg, w.fleet_sessions, &fleet_arrivals)
                .expect("durability bench runs");
        assert!(report.accounts_exactly(), "durability bench must not lose sessions");
        assert_eq!(report.lost_durable, 0, "clean disks must lose nothing acknowledged");
        std::hint::black_box(report);
    });
    ops.push(push("durability", wall, w.fleet_sessions, "sessions"));

    // journey: the durability stampede again with causal tracing on —
    // every boundary event recorded, every checkpoint stamped with its
    // trace context, journeys stitched into per-session timelines at
    // the end. Sessions resolved per second; compared against the
    // `durability` op, the gap IS the tracing overhead.
    let journey_cfg = FleetConfig { journeys: true, ..durability_cfg.clone() };
    let wall = timed(&mut rec, "journey", &mut || {
        let report = run_fleet(&fleet_workload, &journey_cfg, w.fleet_sessions, &fleet_arrivals)
            .expect("journey bench runs");
        assert!(report.accounts_exactly(), "journey bench must not lose sessions");
        assert_eq!(
            report.journeys.len(),
            report.sessions,
            "tracing must cover every session"
        );
        std::hint::black_box(report);
    });
    ops.push(push("journey", wall, w.fleet_sessions, "sessions"));

    rec.exit(now_us(epoch));
    let obs = Obs::recording();
    obs.attach(rec);
    let snap = obs.snapshot();

    BenchReport {
        label: label.to_string(),
        mode,
        workload: w,
        frames,
        ops,
        hotspot_table: hotspot_table(&snap, 12),
        folded: folded_stacks(&snap),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialises a report as a `vgbl-bench/5` JSON snapshot.
pub fn to_json(report: &BenchReport) -> String {
    let w = &report.workload;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"vgbl-bench/5\",");
    let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(&report.label));
    let _ = writeln!(out, "  \"mode\": \"{}\",", report.mode.name());
    let _ = writeln!(out, "  \"workload\": {{");
    let _ = writeln!(out, "    \"width\": {}, \"height\": {}, \"shots\": {},", w.width, w.height, w.shots);
    let _ = writeln!(out, "    \"seed\": {}, \"frames\": {}, \"gop\": {},", w.seed, report.frames, w.gop);
    let _ = writeln!(out, "    \"threads\": {}, \"iters\": {}, \"seeks\": {},", w.threads, w.iters, w.seeks);
    let _ = writeln!(
        out,
        "    \"stream_repeats\": {}, \"sessions\": {}, \"workers\": {}, \"steps\": {},",
        w.stream_repeats, w.sessions, w.workers, w.steps
    );
    let _ = writeln!(
        out,
        "    \"fleet_sessions\": {}, \"executor_sessions\": {}",
        w.fleet_sessions, w.executor_sessions
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"ops\": {{");
    for (i, op) in report.ops.iter().enumerate() {
        let comma = if i + 1 < report.ops.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"wall_ms\": {:.3}, \"units\": {}, \"unit\": \"{}\", \"per_s\": {:.1}, \"target_per_s\": {:.1}, \"met\": {} }}{}",
            op.name, op.wall_ms, op.units, op.unit, op.per_s, op.target_per_s, op.met(), comma
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"hotspots\": \"{}\",", json_escape(&report.hotspot_table));
    let _ = writeln!(out, "  \"folded\": \"{}\"", json_escape(&report.folded));
    out.push_str("}\n");
    out
}

/// Renders the human-readable table printed without `--json-only`.
pub fn human_table(report: &BenchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "vgbl-bench [{}] mode={} {}x{} frames={} gop={} threads={}",
        report.label,
        report.mode.name(),
        report.workload.width,
        report.workload.height,
        report.frames,
        report.workload.gop,
        report.workload.threads
    );
    let _ = writeln!(
        out,
        "{:<17} {:>10} {:>9} {:>8} {:>12} {:>12}  met",
        "op", "wall_ms", "units", "unit", "per_s", "target"
    );
    for op in &report.ops {
        let _ = writeln!(
            out,
            "{:<17} {:>10.3} {:>9} {:>8} {:>12.1} {:>12.1}  {}",
            op.name,
            op.wall_ms,
            op.units,
            op.unit,
            op.per_s,
            op.target_per_s,
            if op.met() { "yes" } else { "NO" }
        );
    }
    out.push('\n');
    out.push_str(&report.hotspot_table);
    out
}

/// Extracts `ops.<op>.per_s` from a snapshot without a JSON parser:
/// finds the op's object inside `"ops"` and scans its `per_s` number.
pub fn op_per_s(json: &str, op: &str) -> Option<f64> {
    let ops = json.find("\"ops\"")?;
    let body = &json[ops..];
    let key = format!("\"{op}\":");
    let at = body.find(&key)?;
    let obj = &body[at + key.len()..];
    let end = obj.find('}')?;
    let obj = &obj[..end];
    let p = obj.find("\"per_s\":")?;
    let num = obj[p + 8..].trim_start();
    let stop = num
        .find(|c: char| c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit())
        .unwrap_or(num.len());
    num[..stop].trim().parse().ok()
}

/// Validates that a snapshot (or a trajectory containing one) has every
/// operation with every required key — the CI gate for emitted JSON.
/// Legacy `vgbl-bench/1` documents validate without the `fleet` op.
pub fn validate_json(json: &str) -> Result<(), String> {
    if !json.contains("\"schema\"") {
        return Err("missing \"schema\" key".into());
    }
    let ops_at = json.find("\"ops\"").ok_or("missing \"ops\" object")?;
    let body = &json[ops_at..];
    for &op in required_ops(json) {
        let key = format!("\"{op}\":");
        let at = body.find(&key).ok_or_else(|| format!("missing op \"{op}\""))?;
        let obj = &body[at + key.len()..];
        let end = obj.find('}').ok_or_else(|| format!("unterminated op \"{op}\""))?;
        let obj = &obj[..end];
        for k in REQUIRED_OP_KEYS {
            if !obj.contains(&format!("\"{k}\":")) {
                return Err(format!("op \"{op}\" missing key \"{k}\""));
            }
        }
        if op_per_s(json, op).is_none() {
            return Err(format!("op \"{op}\" has unparsable per_s"));
        }
    }
    Ok(())
}

/// Merges a before and an after snapshot into one
/// `vgbl-bench-trajectory/1` document with per-op speedups
/// (`after.per_s / before.per_s`), both snapshots embedded verbatim.
pub fn merge_trajectory(before: &str, after: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"vgbl-bench-trajectory/1\",\n  \"speedup\": {\n");
    let mut rows = Vec::new();
    for op in OPS {
        if let (Some(b), Some(a)) = (op_per_s(before, op), op_per_s(after, op)) {
            if b > 0.0 {
                rows.push(format!("    \"{}\": {:.2}", op, a / b));
            }
        }
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  },\n  \"before\": ");
    out.push_str(before.trim_end());
    out.push_str(",\n  \"after\": ");
    out.push_str(after.trim_end());
    out.push_str("\n}\n");
    out
}

/// FNV-1a over a byte slice, chained.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn encoded_checksum(video: &EncodedVideo) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for f in &video.frames {
        let kind = match f.kind {
            FrameKind::Intra => 0u8,
            FrameKind::Inter => 1,
            FrameKind::Skip => 2,
        };
        h = fnv1a(h, &[kind]);
        h = fnv1a(h, &(f.data.len() as u64).to_le_bytes());
        h = fnv1a(h, &f.data);
    }
    h
}

fn decoded_checksum(video: &EncodedVideo) -> u64 {
    let decoded = Decoder::default().decode_all(video).expect("golden video decodes");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for f in &decoded.frames {
        h = fnv1a(h, f.raw());
    }
    h
}

/// Byte-identity fingerprints of the codec over seeded footage: FNV-1a
/// over the encoded bitstream and the decoded RGB, for two configs.
/// Pinned in `tests/golden.rs` **before** the hot-path optimizations —
/// any change to these constants means an optimization altered output.
pub fn golden_checksums() -> [(&'static str, u64); 4] {
    let footage = bench_footage(96, 64, 4, 42);
    let medium = encode(&footage, 8, Quality::Medium, 3);
    let lossless = encode(&footage, 5, Quality::Lossless, 1);
    [
        ("medium_encoded", encoded_checksum(&medium)),
        ("medium_decoded", decoded_checksum(&medium)),
        ("lossless_encoded", encoded_checksum(&lossless)),
        ("lossless_decoded", decoded_checksum(&lossless)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_emits_valid_json_with_all_ops() {
        let report = run(Mode::Smoke, "smoke");
        assert_eq!(report.ops.len(), OPS.len());
        let json = to_json(&report);
        validate_json(&json).expect("smoke JSON validates");
        for op in OPS {
            let per_s = op_per_s(&json, op).expect("per_s parses");
            assert!(per_s > 0.0, "{op} throughput must be positive");
        }
        // The profile carries the bench's own spans.
        assert!(report.hotspot_table.contains("encode"));
        assert!(report.folded.contains("bench;"));

        // Schema compatibility: each older schema validates without the
        // ops that arrived after it, and each newer schema requires them.
        let v4: String = json
            .replace("\"vgbl-bench/5\"", "\"vgbl-bench/4\"")
            .lines()
            .filter(|l| !l.contains("\"journey\":"))
            .collect::<Vec<_>>()
            .join("\n");
        validate_json(&v4).expect("v4 snapshot validates without journey");
        assert!(
            validate_json(&v4.replace("\"vgbl-bench/4\"", "\"vgbl-bench/5\"")).is_err(),
            "v5 snapshot must carry the journey op"
        );
        let v3: String = v4
            .replace("\"vgbl-bench/4\"", "\"vgbl-bench/3\"")
            .lines()
            .filter(|l| !l.contains("\"durability\":"))
            .collect::<Vec<_>>()
            .join("\n");
        validate_json(&v3).expect("v3 snapshot validates without durability");
        assert!(
            validate_json(&v3.replace("\"vgbl-bench/3\"", "\"vgbl-bench/4\"")).is_err(),
            "v4 snapshot must carry the durability op"
        );
        let v2: String = v3
            .replace("\"vgbl-bench/3\"", "\"vgbl-bench/2\"")
            .lines()
            .filter(|l| !l.contains("\"executor\":"))
            .collect::<Vec<_>>()
            .join("\n");
        validate_json(&v2).expect("v2 snapshot validates without executor");
        assert!(
            validate_json(&v2.replace("\"vgbl-bench/2\"", "\"vgbl-bench/3\"")).is_err(),
            "v3 snapshot must carry the executor op"
        );
        let v1: String = v2
            .replace("\"vgbl-bench/2\"", "\"vgbl-bench/1\"")
            .lines()
            .filter(|l| !l.contains("\"fleet\":"))
            .collect::<Vec<_>>()
            .join("\n");
        validate_json(&v1).expect("v1 snapshot validates without fleet");
        assert!(
            validate_json(&v1.replace("\"vgbl-bench/1\"", "\"vgbl-bench/2\"")).is_err(),
            "v2 snapshot must carry the fleet op"
        );
    }

    #[test]
    fn trajectory_merge_computes_speedups() {
        let report = run(Mode::Smoke, "before");
        let json = to_json(&report);
        let merged = merge_trajectory(&json, &json);
        assert!(merged.contains("\"vgbl-bench-trajectory/1\""));
        validate_json(&merged).expect("trajectory still validates");
        // Identical snapshots → speedup 1.00 on every op.
        for op in OPS {
            assert!(merged.contains(&format!("\"{op}\": 1.00")), "{op} missing from speedups");
        }
    }

    #[test]
    fn validate_rejects_missing_ops_and_keys() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("{\"schema\": \"x\", \"ops\": {}}").is_err());
        let almost = "{\"schema\": \"x\", \"ops\": {\"encode\": { \"wall_ms\": 1 }}}";
        assert!(validate_json(almost).is_err());
    }

    #[test]
    fn golden_checksums_are_stable_across_calls() {
        assert_eq!(golden_checksums(), golden_checksums());
    }
}
