//! # vgbl-store — a deterministic simulated durable checkpoint store
//!
//! Every other fault domain in the stack is modeled — the link
//! (`vgbl-stream::fault`), shards (`vgbl-runtime::fleet`), session
//! polls (`vgbl-runtime::executor`) — but until this crate, committed
//! checkpoints lived purely in process memory: a whole-fleet power loss
//! was unrecoverable by construction. This crate closes that gap with a
//! simulated durable medium that behaves like a disk, including the
//! ways disks betray you:
//!
//! * **Append-only WAL.** [`DurableStore::append`] stages an encoded,
//!   checksummed [`CheckpointRecord`] in a volatile buffer;
//!   [`DurableStore::flush`] moves the staged batch onto the medium.
//!   A record is *acknowledged* — durable, as far as the caller was
//!   told — exactly when its flush returned `Ok`.
//! * **Compacted snapshots.** Every [`StoreConfig::snapshot_every`]
//!   acknowledged flushes the store writes a snapshot blob holding the
//!   latest record per session and drops the WAL prefix it covers,
//!   bounding recovery work.
//! * **Per-record checksums.** Records and snapshots carry FNV-1a
//!   checksums (the same construction as `SaveGame::digest`), so every
//!   corruption below is *detectable* — the scrub pass never trusts a
//!   byte it cannot prove.
//! * **Seeded disk faults.** [`DiskFaultPlan`] injects torn writes
//!   (power loss truncates the record at the write head), bit rot
//!   (a durable blob flips a byte at rest), lost flushes (the flush
//!   reports failure and nothing lands — the fsync-gate case), flush
//!   reordering (a batch lands physically permuted, changing which
//!   record a tear destroys), and stale reads (recovery serves an
//!   older intact version). All decisions are pure hashes of
//!   `(seed, coordinate)` — reruns are byte-identical.
//! * **Dual-write redundancy.** With [`StoreConfig::dual_write`] the
//!   store keeps two replicas; [`DurableStore::scrub`] repairs a blob
//!   that is corrupt on one replica from the intact copy on the other.
//!
//! [`DurableStore::power_loss`] models the fleet-wide outage: the
//! volatile buffer vanishes, the in-flight write may tear, and
//! [`DurableStore::recover`] rebuilds the surviving session map from
//! the latest intact snapshot plus every WAL record that still proves
//! itself — reporting exactly which sequence numbers were lost, and
//! why, in a [`ScrubReport`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

use vgbl_obs::{Counter, Histogram, Obs};

// ---------------------------------------------------------------------------
// Seeded hashing (the same splitmix64 idiom the rest of the stack uses)
// ---------------------------------------------------------------------------

/// splitmix64 finalizer: uniform, cheap, stateless.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Domain separation salts — one per fault coordinate family.
const SALT_TORN: u64 = 0xD15C_0001;
const SALT_ROT: u64 = 0xD15C_0002;
const SALT_LOST: u64 = 0xD15C_0003;
const SALT_REORDER: u64 = 0xD15C_0004;
const SALT_STALE: u64 = 0xD15C_0005;
const SALT_ROT_BYTE: u64 = 0xD15C_0006;

/// FNV-1a over bytes — the same construction `SaveGame::digest` uses,
/// so a record's checksum and the checkpoint digest it protects share
/// one corruption model.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Store configuration or flush failure.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A rate or parameter failed validation.
    InvalidConfig(String),
    /// The flush was lost before reaching the medium (detected, like a
    /// failed fsync): nothing landed, nothing is acknowledged, the
    /// staged batch is retained for retry.
    FlushLost {
        /// The flush attempt index that failed.
        flush: u64,
        /// Staged records that did not land.
        records: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::InvalidConfig(msg) => write!(f, "invalid store config: {msg}"),
            StoreError::FlushLost { flush, records } => {
                write!(f, "flush {flush} lost before the medium ({records} records not durable)")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

// ---------------------------------------------------------------------------
// DiskFaultPlan
// ---------------------------------------------------------------------------

/// Seeded storage-fault schedule. Stateless: every decision is a pure
/// hash of the seed and the event coordinate, so two stores built from
/// the same plan corrupt exactly the same bytes — the property the
/// chaos orchestrator's byte-identical-rerun invariant rests on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultPlan {
    seed: u64,
    /// P(power loss tears the record at the write head).
    torn_write: f64,
    /// P(a durable blob has a flipped byte at rest), per blob per replica.
    bit_rot: f64,
    /// P(a flush fails detectably before the medium).
    lost_flush: f64,
    /// P(a multi-record flush batch lands physically permuted).
    reorder_flush: f64,
    /// P(recovery serves a session's previous intact version).
    stale_read: f64,
}

impl DiskFaultPlan {
    /// A clean plan (no faults) under `seed`.
    pub fn new(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            torn_write: 0.0,
            bit_rot: 0.0,
            lost_flush: 0.0,
            reorder_flush: 0.0,
            stale_read: 0.0,
        }
    }

    fn rate(v: f64, what: &str) -> Result<f64> {
        if !v.is_finite() || !(0.0..1.0).contains(&v) {
            return Err(StoreError::InvalidConfig(format!("{what} rate must be in [0, 1)")));
        }
        Ok(v)
    }

    /// Sets the torn-write probability (per power loss).
    pub fn with_torn_writes(mut self, rate: f64) -> Result<DiskFaultPlan> {
        self.torn_write = Self::rate(rate, "torn-write")?;
        Ok(self)
    }

    /// Sets the bit-rot probability (per durable blob, per replica).
    pub fn with_bit_rot(mut self, rate: f64) -> Result<DiskFaultPlan> {
        self.bit_rot = Self::rate(rate, "bit-rot")?;
        Ok(self)
    }

    /// Sets the lost-flush probability (per flush attempt).
    pub fn with_lost_flushes(mut self, rate: f64) -> Result<DiskFaultPlan> {
        self.lost_flush = Self::rate(rate, "lost-flush")?;
        Ok(self)
    }

    /// Sets the flush-reorder probability (per multi-record flush).
    pub fn with_reordered_flushes(mut self, rate: f64) -> Result<DiskFaultPlan> {
        self.reorder_flush = Self::rate(rate, "reorder-flush")?;
        Ok(self)
    }

    /// Sets the stale-read probability (per session at recovery).
    pub fn with_stale_reads(mut self, rate: f64) -> Result<DiskFaultPlan> {
        self.stale_read = Self::rate(rate, "stale-read")?;
        Ok(self)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when every rate is zero — the store is then lossless by
    /// construction, which EXP-19's fault-free leg asserts.
    pub fn is_clean(&self) -> bool {
        self.torn_write == 0.0
            && self.bit_rot == 0.0
            && self.lost_flush == 0.0
            && self.reorder_flush == 0.0
            && self.stale_read == 0.0
    }

    fn draw(&self, salt: u64, coord: u64) -> f64 {
        unit(mix(self.seed ^ salt ^ mix(coord)))
    }

    /// Does power loss number `idx` tear the record at the write head?
    pub fn torn_at(&self, idx: u64) -> bool {
        self.draw(SALT_TORN, idx) < self.torn_write
    }

    /// Has blob `seq` rotted at rest on `replica`?
    pub fn rot_at(&self, replica: u32, seq: u64) -> bool {
        self.draw(SALT_ROT, (u64::from(replica) << 56) ^ seq) < self.bit_rot
    }

    /// Which byte of a `len`-byte rotten blob flipped (0 for empty).
    pub fn rot_byte(&self, replica: u32, seq: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (mix(self.seed ^ SALT_ROT_BYTE ^ mix((u64::from(replica) << 56) ^ seq)) as usize) % len
    }

    /// Is flush attempt `idx` lost before the medium?
    pub fn lost_at(&self, idx: u64) -> bool {
        self.draw(SALT_LOST, idx) < self.lost_flush
    }

    /// Does flush `idx`'s batch land physically permuted?
    pub fn reorder_at(&self, idx: u64) -> bool {
        self.draw(SALT_REORDER, idx) < self.reorder_flush
    }

    /// Does recovery serve `session` a stale (previous) version?
    pub fn stale_at(&self, session: u64) -> bool {
        self.draw(SALT_STALE, session) < self.stale_read
    }
}

// ---------------------------------------------------------------------------
// Records and encoding
// ---------------------------------------------------------------------------

/// One checkpoint the caller wants made durable. The payload is opaque
/// to the store (the runtime puts canonical save-game text in it);
/// `digest` is the caller's own payload digest, carried so recovery can
/// hand back a record whose integrity the *caller* can re-verify
/// end-to-end, independent of the store's checksums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Stable session id (the fleet's routing key).
    pub session: u64,
    /// Decision step at the checkpoint boundary.
    pub step: u64,
    /// Incarnation that took the checkpoint.
    pub generation: u32,
    /// Caller-side digest of the payload (e.g. `SaveGame::digest`).
    pub digest: u64,
    /// Causal trace id (journey layer; 0 when the caller doesn't trace).
    /// Persisted so a cold restart can stitch the recovered session back
    /// onto the journey it was on when the power died.
    pub trace_id: u64,
    /// Span id of the generation that took the checkpoint (0 untraced).
    pub span_id: u64,
    /// Opaque checkpoint bytes.
    pub payload: Vec<u8>,
}

const MAGIC: u16 = 0x5653; // "VS"
/// Bytes before the payload: magic(2) seq(8) session(8) step(8)
/// generation(4) digest(8) trace_id(8) span_id(8) len(4).
const HEADER_LEN: usize = 2 + 8 + 8 + 8 + 4 + 8 + 8 + 8 + 4;
/// Trailing checksum bytes.
const TRAILER_LEN: usize = 8;

/// Encodes `(seq, record)` with a trailing FNV-1a checksum over
/// everything before it.
fn encode(seq: u64, r: &CheckpointRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + r.payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&r.session.to_le_bytes());
    out.extend_from_slice(&r.step.to_le_bytes());
    out.extend_from_slice(&r.generation.to_le_bytes());
    out.extend_from_slice(&r.digest.to_le_bytes());
    out.extend_from_slice(&r.trace_id.to_le_bytes());
    out.extend_from_slice(&r.span_id.to_le_bytes());
    out.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&r.payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Why a blob failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecodeFail {
    /// Shorter than its header + declared payload + trailer: torn.
    Truncated,
    /// Full length but the checksum (or magic) disagrees: rotten.
    Corrupt,
}

/// Decodes one record blob; `Err` classifies the damage.
fn decode(bytes: &[u8]) -> std::result::Result<(u64, CheckpointRecord), DecodeFail> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(DecodeFail::Truncated);
    }
    let u16le = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().expect("sliced"));
    let u32le = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("sliced"));
    let u64le = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("sliced"));
    if u16le(0) != MAGIC {
        return Err(DecodeFail::Corrupt);
    }
    let len = u32le(2 + 8 + 8 + 8 + 4 + 8 + 8 + 8) as usize;
    let total = HEADER_LEN + len + TRAILER_LEN;
    if bytes.len() < total {
        return Err(DecodeFail::Truncated);
    }
    // Trailing bytes beyond `total` are allowed: snapshot blobs are
    // records laid end to end, parsed from a shared slice.
    let body = &bytes[..HEADER_LEN + len];
    let sum = u64le(HEADER_LEN + len);
    if fnv1a(body) != sum {
        return Err(DecodeFail::Corrupt);
    }
    Ok((
        u64le(2),
        CheckpointRecord {
            session: u64le(2 + 8),
            step: u64le(2 + 8 + 8),
            generation: u32le(2 + 8 + 8 + 8),
            digest: u64le(2 + 8 + 8 + 8 + 4),
            trace_id: u64le(2 + 8 + 8 + 8 + 4 + 8),
            span_id: u64le(2 + 8 + 8 + 8 + 4 + 8 + 8),
            payload: bytes[HEADER_LEN..HEADER_LEN + len].to_vec(),
        },
    ))
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Durable-store tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Write a compacted snapshot every this many acknowledged flushes
    /// (0 = never snapshot; the WAL grows unboundedly).
    pub snapshot_every: u64,
    /// Keep two replicas and repair corrupt blobs from the intact copy.
    pub dual_write: bool,
    /// The seeded fault schedule.
    pub faults: DiskFaultPlan,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            snapshot_every: 8,
            dual_write: false,
            faults: DiskFaultPlan::new(0xD15C_5EED),
        }
    }
}

// ---------------------------------------------------------------------------
// Media
// ---------------------------------------------------------------------------

/// One durable blob on a replica: a WAL record or a snapshot.
#[derive(Debug, Clone)]
struct Blob {
    /// WAL records: the record's seq. Snapshots: `SNAP_BASE + idx`.
    id: u64,
    bytes: Vec<u8>,
}

/// Snapshot blob ids live far above any realistic record seq so rot
/// coordinates never collide with WAL records.
const SNAP_BASE: u64 = 1 << 62;

/// One replica of the medium.
#[derive(Debug, Clone, Default)]
struct Replica {
    wal: Vec<Blob>,
    /// `(snapshot idx, upto_seq, blob)` — newest last.
    snaps: Vec<(u64, u64, Blob)>,
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Why a record was unrecoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Truncated mid-write by a power loss.
    Torn,
    /// A byte flipped at rest.
    Rotten,
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::Torn => write!(f, "torn"),
            CorruptKind::Rotten => write!(f, "bit-rot"),
        }
    }
}

/// One provably corrupt, unrepaired record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptRecord {
    /// The record's WAL sequence number.
    pub seq: u64,
    /// What destroyed it.
    pub kind: CorruptKind,
}

/// What a scrub pass over the medium found. `PartialEq` so chaos reruns
/// can assert byte-identical storage damage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// WAL blobs examined (on the primary replica).
    pub records_checked: u64,
    /// Snapshot blobs examined.
    pub snapshots_checked: u64,
    /// `upto_seq` of the intact snapshot recovery starts from.
    pub snapshot_used: Option<u64>,
    /// Snapshots skipped because no replica held an intact copy.
    pub snapshots_corrupt: u64,
    /// Records corrupt on one replica but repaired from the other.
    pub repaired: Vec<u64>,
    /// Records provably corrupt on every replica — lost, with cause.
    pub lost: Vec<CorruptRecord>,
}

/// One recovered session checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredCheckpoint {
    /// WAL sequence of the version served.
    pub seq: u64,
    /// The record.
    pub record: CheckpointRecord,
    /// True when a stale read served an older intact version than the
    /// newest one on the medium.
    pub stale: bool,
}

/// Everything recovery reconstructed after a cold restart.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Recovery {
    /// Latest (or stale-read) intact checkpoint per session.
    pub sessions: BTreeMap<u64, RecoveredCheckpoint>,
    /// The scrub pass that produced it.
    pub scrub: ScrubReport,
}

/// Lifetime counters of one store. `PartialEq` for rerun assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Records staged via [`DurableStore::append`].
    pub appended: u64,
    /// Flush attempts.
    pub flushes: u64,
    /// Flushes that reached the medium (their records are acknowledged).
    pub acked_flushes: u64,
    /// Flushes lost before the medium (detected; nothing acknowledged).
    pub lost_flushes: u64,
    /// Records acknowledged durable.
    pub acked_records: u64,
    /// Flush batches that landed physically permuted.
    pub reordered_flushes: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Power losses survived.
    pub power_losses: u64,
    /// Staged (never-acknowledged) records destroyed by power losses.
    pub pending_lost: u64,
}

/// Resolved `store.*` metric handles, all labelled `pillar=store`. On a
/// noop [`Obs`] every handle is detached, so the default store pays one
/// branch per tap — benches and journey-off fleets are unaffected.
#[derive(Debug, Clone)]
struct StoreObs {
    obs: Obs,
    flushes: Counter,
    flushes_lost: Counter,
    flushes_reordered: Counter,
    records_acked: Counter,
    flush_batch: Histogram,
    snapshots: Counter,
    power_losses: Counter,
    pending_lost: Counter,
    torn_detected: Counter,
    rot_detected: Counter,
    scrub_repairs: Counter,
    stale_reads: Counter,
}

impl StoreObs {
    fn new(obs: &Obs) -> StoreObs {
        const L: &[(&str, &str)] = &[("pillar", "store")];
        StoreObs {
            obs: obs.clone(),
            flushes: obs.counter("store.flushes", L),
            flushes_lost: obs.counter("store.flushes_lost", L),
            flushes_reordered: obs.counter("store.flushes_reordered", L),
            records_acked: obs.counter("store.records_acked", L),
            flush_batch: obs.histogram("store.flush_batch_records", L),
            snapshots: obs.counter("store.snapshot_compactions", L),
            power_losses: obs.counter("store.power_losses", L),
            pending_lost: obs.counter("store.pending_lost", L),
            torn_detected: obs.counter("store.torn_detected", L),
            rot_detected: obs.counter("store.rot_detected", L),
            scrub_repairs: obs.counter("store.scrub_repairs", L),
            stale_reads: obs.counter("store.stale_reads", L),
        }
    }
}

/// A successful flush acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushAck {
    /// First sequence number in the acknowledged batch.
    pub first_seq: u64,
    /// Records acknowledged.
    pub records: usize,
}

// ---------------------------------------------------------------------------
// DurableStore
// ---------------------------------------------------------------------------

/// The simulated durable store. See the crate docs for the model.
#[derive(Debug, Clone)]
pub struct DurableStore {
    cfg: StoreConfig,
    /// Volatile staged batch: `(seq, encoded bytes, session)`.
    pending: Vec<(u64, Vec<u8>, u64)>,
    /// Latest *acknowledged* encoded record per session — the compaction
    /// source for snapshots (equivalent to reading the medium back:
    /// same bytes, and rot is applied at read time, not write time).
    latest_acked: BTreeMap<u64, (u64, Vec<u8>)>,
    replicas: Vec<Replica>,
    next_seq: u64,
    flush_idx: u64,
    power_idx: u64,
    next_snap: u64,
    stats: StoreStats,
    sobs: StoreObs,
}

impl DurableStore {
    /// A fresh, empty store with no observability (detached handles).
    pub fn new(cfg: StoreConfig) -> DurableStore {
        DurableStore::with_obs(cfg, &Obs::noop())
    }

    /// A fresh, empty store emitting `store.*` counters/histograms (and
    /// a scrub trace per recovery) into `obs`.
    pub fn with_obs(cfg: StoreConfig, obs: &Obs) -> DurableStore {
        let n = if cfg.dual_write { 2 } else { 1 };
        DurableStore {
            cfg,
            pending: Vec::new(),
            latest_acked: BTreeMap::new(),
            replicas: vec![Replica::default(); n],
            next_seq: 1,
            flush_idx: 0,
            power_idx: 0,
            next_snap: 0,
            stats: StoreStats::default(),
            sobs: StoreObs::new(obs),
        }
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Records staged but not yet flushed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Stages `record` in the volatile buffer; returns its WAL sequence
    /// number. Not durable until a flush acknowledges it.
    pub fn append(&mut self, record: &CheckpointRecord) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.appended += 1;
        self.pending.push((seq, encode(seq, record), record.session));
        seq
    }

    /// Flushes the staged batch to the medium. `Ok` acknowledges every
    /// staged record as durable. [`StoreError::FlushLost`] means the
    /// flush failed detectably: nothing landed, nothing is
    /// acknowledged, and the batch stays staged for retry (a retry is a
    /// new flush attempt with a fresh fault draw).
    pub fn flush(&mut self) -> Result<FlushAck> {
        self.flush_idx += 1;
        self.stats.flushes += 1;
        self.sobs.flushes.inc();
        if self.pending.is_empty() {
            self.stats.acked_flushes += 1;
            return Ok(FlushAck { first_seq: self.next_seq, records: 0 });
        }
        if self.cfg.faults.lost_at(self.flush_idx) {
            self.stats.lost_flushes += 1;
            self.sobs.flushes_lost.inc();
            return Err(StoreError::FlushLost {
                flush: self.flush_idx,
                records: self.pending.len(),
            });
        }
        let mut batch = std::mem::take(&mut self.pending);
        let first_seq = batch.first().map(|(s, _, _)| *s).expect("non-empty batch");
        if batch.len() >= 2 && self.cfg.faults.reorder_at(self.flush_idx) {
            // The physical permutation a real device cache produces:
            // the head of the batch settles last, so a later tear
            // destroys the *oldest* record of the batch, not the newest.
            let head = batch.remove(0);
            batch.push(head);
            self.stats.reordered_flushes += 1;
            self.sobs.flushes_reordered.inc();
        }
        let records = batch.len();
        for (seq, bytes, session) in batch {
            for r in &mut self.replicas {
                r.wal.push(Blob { id: seq, bytes: bytes.clone() });
            }
            // Compaction tracks the newest seq per session even when the
            // physical landing order was permuted.
            match self.latest_acked.get(&session) {
                Some((prev, _)) if *prev > seq => {}
                _ => {
                    self.latest_acked.insert(session, (seq, bytes));
                }
            }
        }
        self.stats.acked_flushes += 1;
        self.stats.acked_records += records as u64;
        self.sobs.records_acked.add(records as u64);
        self.sobs.flush_batch.record(records as u64);
        if self.cfg.snapshot_every > 0
            && self.stats.acked_flushes.is_multiple_of(self.cfg.snapshot_every)
        {
            self.take_snapshot();
        }
        Ok(FlushAck { first_seq, records })
    }

    /// Writes a compacted snapshot (latest acknowledged record per
    /// session, concatenated) and drops the WAL prefix it covers.
    fn take_snapshot(&mut self) {
        if self.latest_acked.is_empty() {
            return;
        }
        let upto = self.next_seq - 1;
        let mut bytes = Vec::new();
        for (_, (_, rec)) in self.latest_acked.iter() {
            bytes.extend_from_slice(rec);
        }
        let idx = self.next_snap;
        self.next_snap += 1;
        for r in &mut self.replicas {
            r.snaps.push((idx, upto, Blob { id: SNAP_BASE + idx, bytes: bytes.clone() }));
            r.wal.retain(|b| b.id > upto);
        }
        self.stats.snapshots += 1;
        self.sobs.snapshots.inc();
    }

    /// The fleet-wide outage: the volatile buffer vanishes (staged
    /// records were never acknowledged — their loss is legitimate), and
    /// a torn write may truncate the blob at the write head: the first
    /// staged record if a write was in flight, else the most recently
    /// landed blob on the primary replica (a device cache that never
    /// settled). With dual-write only the primary tears — the writes
    /// were independent.
    pub fn power_loss(&mut self) {
        self.power_idx += 1;
        self.stats.power_losses += 1;
        self.sobs.power_losses.inc();
        let torn = self.cfg.faults.torn_at(self.power_idx);
        let staged = std::mem::take(&mut self.pending);
        self.stats.pending_lost += staged.len() as u64;
        self.sobs.pending_lost.add(staged.len() as u64);
        if !torn {
            return;
        }
        if let Some((seq, bytes, _)) = staged.into_iter().next() {
            // The in-flight write landed partially on the primary.
            let cut = bytes.len() / 2;
            self.replicas[0].wal.push(Blob { id: seq, bytes: bytes[..cut].to_vec() });
        } else if let Some(last) = self.replicas[0].wal.last_mut() {
            // Nothing staged: the tear hits the newest durable blob —
            // an acknowledged record, provably corrupt at scrub time.
            let cut = last.bytes.len() / 2;
            last.bytes.truncate(cut);
        }
    }

    /// Reads blob `seq`'s bytes from `replica`, applying bit rot as a
    /// pure function of `(replica, id)` — the same blob always reads the
    /// same way, so scrubs and reruns agree.
    fn read(&self, replica: u32, blob: &Blob) -> Vec<u8> {
        if !self.cfg.faults.rot_at(replica, blob.id) || blob.bytes.is_empty() {
            return blob.bytes.clone();
        }
        let mut bytes = blob.bytes.clone();
        let at = self.cfg.faults.rot_byte(replica, blob.id, bytes.len());
        bytes[at] ^= 0x40;
        bytes
    }

    /// Reads record blob `seq` across replicas: `Ok` with the decoded
    /// record (noting a repair when the primary copy was bad), or `Err`
    /// with the primary's damage classification when no replica proves
    /// intact.
    fn read_record(
        &self,
        blobs: &[Option<&Blob>],
    ) -> std::result::Result<((u64, CheckpointRecord), bool), DecodeFail> {
        let mut first_fail = None;
        for (ri, blob) in blobs.iter().enumerate() {
            let Some(blob) = blob else { continue };
            match decode(&self.read(ri as u32, blob)) {
                Ok(rec) => return Ok((rec, ri > 0 || first_fail.is_some())),
                Err(f) => {
                    if first_fail.is_none() {
                        first_fail = Some(f);
                    }
                }
            }
        }
        Err(first_fail.unwrap_or(DecodeFail::Truncated))
    }

    /// Verifies every snapshot and WAL blob across replicas. Returns
    /// the scrub findings plus the intact records (seq order), starting
    /// from the newest intact snapshot.
    fn scrub_inner(&self) -> (ScrubReport, Vec<(u64, CheckpointRecord, bool)>) {
        let mut report = ScrubReport::default();
        // Newest intact snapshot wins; a corrupt one falls back to the
        // next older (repair across replicas applies here too).
        let mut base: Vec<(u64, CheckpointRecord, bool)> = Vec::new();
        let primary = &self.replicas[0];
        for si in (0..primary.snaps.len()).rev() {
            report.snapshots_checked += 1;
            let (_, upto, _) = primary.snaps[si];
            let blobs: Vec<Option<&Blob>> =
                self.replicas.iter().map(|r| r.snaps.get(si).map(|(_, _, b)| b)).collect();
            let mut ok = None;
            for (ri, blob) in blobs.iter().enumerate() {
                let Some(blob) = blob else { continue };
                let bytes = self.read(ri as u32, blob);
                if let Some(records) = parse_snapshot(&bytes) {
                    ok = Some((records, ri > 0));
                    break;
                }
            }
            match ok {
                Some((records, repaired)) => {
                    report.snapshot_used = Some(upto);
                    base = records.into_iter().map(|(s, r)| (s, r, repaired)).collect();
                    break;
                }
                None => report.snapshots_corrupt += 1,
            }
        }
        let upto = report.snapshot_used.unwrap_or(0);
        let mut wal: Vec<(u64, CheckpointRecord, bool)> = Vec::new();
        for (wi, blob) in primary.wal.iter().enumerate() {
            if blob.id <= upto {
                continue;
            }
            report.records_checked += 1;
            let blobs: Vec<Option<&Blob>> =
                self.replicas.iter().map(|r| r.wal.get(wi)).collect();
            match self.read_record(&blobs) {
                Ok(((seq, rec), repaired)) => {
                    if repaired {
                        report.repaired.push(seq);
                        self.sobs.scrub_repairs.inc();
                    }
                    wal.push((seq, rec, repaired));
                }
                Err(fail) => {
                    let kind = match fail {
                        DecodeFail::Truncated => CorruptKind::Torn,
                        DecodeFail::Corrupt => CorruptKind::Rotten,
                    };
                    match kind {
                        CorruptKind::Torn => self.sobs.torn_detected.inc(),
                        CorruptKind::Rotten => self.sobs.rot_detected.inc(),
                    }
                    report.lost.push(CorruptRecord { seq: blob.id, kind });
                }
            }
        }
        wal.sort_by_key(|(seq, _, _)| *seq);
        report.repaired.sort_unstable();
        report.lost.sort_by_key(|l| l.seq);
        base.extend(wal);
        (report, base)
    }

    /// Scrub only: verify every blob, report damage and repairs.
    pub fn scrub(&self) -> ScrubReport {
        self.scrub_inner().0
    }

    /// The cold-restart read path: scrub, then rebuild the latest
    /// intact checkpoint per session (snapshot base + WAL overrides in
    /// seq order). A stale read serves the session's previous intact
    /// version instead of its newest, when one exists.
    pub fn recover(&self) -> Recovery {
        let (scrub, records) = self.scrub_inner();
        let mut versions: BTreeMap<u64, Vec<(u64, CheckpointRecord)>> = BTreeMap::new();
        for (seq, rec, _) in records {
            let v = versions.entry(rec.session).or_default();
            // Snapshot base and WAL tail can both carry a session's
            // record at the same seq; keep one copy per seq.
            if v.last().map(|(s, _)| *s) != Some(seq) {
                v.push((seq, rec));
            }
        }
        let mut sessions = BTreeMap::new();
        for (session, mut v) in versions {
            v.sort_by_key(|(seq, _)| *seq);
            v.dedup_by_key(|(seq, _)| *seq);
            let stale = self.cfg.faults.stale_at(session) && v.len() >= 2;
            if stale {
                self.sobs.stale_reads.inc();
            }
            let (seq, record) =
                if stale { v[v.len() - 2].clone() } else { v.last().expect("non-empty").clone() };
            sessions.insert(session, RecoveredCheckpoint { seq, record, stale });
        }
        // One scrub trace per recovery: zero-duration events (the store
        // has no clock of its own) carrying each finding's WAL seq, so
        // the damage an incident report names is span-queryable too.
        if self.sobs.obs.enabled() {
            let mut rec = self.sobs.obs.recorder(format!("store.recover-{:04}", self.power_idx));
            rec.enter_with("store.recover", sessions.len() as u64, 0);
            for r in &scrub.repaired {
                rec.event("store.scrub.repaired", *r, 0);
            }
            for l in &scrub.lost {
                let name = match l.kind {
                    CorruptKind::Torn => "store.scrub.lost_torn",
                    CorruptKind::Rotten => "store.scrub.lost_rotten",
                };
                rec.event(name, l.seq, 0);
            }
            rec.exit(0);
            self.sobs.obs.attach(rec);
        }
        Recovery { sessions, scrub }
    }
}

/// Parses a snapshot blob (concatenated encoded records); `None` when
/// any record inside fails its checksum — a snapshot is all-or-nothing.
fn parse_snapshot(bytes: &[u8]) -> Option<Vec<(u64, CheckpointRecord)>> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let (seq, rec) = decode(&bytes[at..]).ok()?;
        at += HEADER_LEN + rec.payload.len() + TRAILER_LEN;
        out.push((seq, rec));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(session: u64, step: u64, payload: &[u8]) -> CheckpointRecord {
        CheckpointRecord {
            session,
            step,
            generation: 0,
            digest: fnv1a(payload),
            trace_id: mix(session ^ 0x7e57),
            span_id: mix(session ^ step),
            payload: payload.to_vec(),
        }
    }

    fn clean_store() -> DurableStore {
        DurableStore::new(StoreConfig {
            snapshot_every: 0,
            dual_write: false,
            faults: DiskFaultPlan::new(7),
        })
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = rec(42, 17, b"hello checkpoint");
        let bytes = encode(9, &r);
        assert_eq!(decode(&bytes), Ok((9, r.clone())));
        // Truncation at any point is detected as torn or corrupt.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must not decode");
        }
        // Any single flipped byte is detected.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x01;
            assert!(decode(&b).is_err(), "flip at {i} must not decode");
        }
    }

    #[test]
    fn clean_store_recovers_every_acknowledged_record() {
        let mut s = clean_store();
        for i in 0..20u64 {
            s.append(&rec(i % 5, i, format!("payload-{i}").as_bytes()));
            s.flush().expect("clean flushes land");
        }
        s.power_loss();
        let r = s.recover();
        assert_eq!(r.sessions.len(), 5);
        assert!(r.scrub.lost.is_empty());
        for (sid, c) in &r.sessions {
            assert_eq!(c.record.step, sid + 15, "latest version per session");
            assert!(!c.stale);
        }
    }

    #[test]
    fn unflushed_records_die_with_the_power() {
        let mut s = clean_store();
        s.append(&rec(1, 1, b"durable"));
        s.flush().unwrap();
        s.append(&rec(1, 2, b"staged only"));
        s.power_loss();
        let r = s.recover();
        assert_eq!(r.sessions[&1].record.step, 1, "only the acknowledged record survives");
        assert_eq!(s.stats().pending_lost, 1);
    }

    #[test]
    fn lost_flush_is_detected_and_retryable() {
        let faults = DiskFaultPlan::new(3).with_lost_flushes(0.9).unwrap();
        let mut s =
            DurableStore::new(StoreConfig { snapshot_every: 0, dual_write: false, faults });
        s.append(&rec(1, 1, b"x"));
        let mut lost = 0;
        let ack = loop {
            match s.flush() {
                Ok(a) => break a,
                Err(StoreError::FlushLost { .. }) => lost += 1,
                Err(e) => panic!("unexpected flush error: {e}"),
            }
        };
        assert_eq!(ack.records, 1);
        assert!(lost > 0, "a 90% lost-flush rate must lose at least one attempt");
        assert_eq!(s.stats().lost_flushes, lost);
        assert_eq!(s.stats().acked_records, 1);
        s.power_loss();
        assert_eq!(s.recover().sessions[&1].record.step, 1, "retried flush is durable");
    }

    #[test]
    fn torn_write_truncates_the_write_head_and_scrub_reports_it() {
        let faults = DiskFaultPlan::new(11).with_torn_writes(0.999).unwrap();
        let mut s =
            DurableStore::new(StoreConfig { snapshot_every: 0, dual_write: false, faults });
        s.append(&rec(1, 1, b"acked"));
        s.flush().unwrap();
        let torn_seq = s.append(&rec(2, 1, b"in flight at the outage"));
        s.power_loss();
        let r = s.recover();
        assert_eq!(r.sessions.len(), 1, "only the acknowledged session survives");
        assert_eq!(
            r.scrub.lost,
            vec![CorruptRecord { seq: torn_seq, kind: CorruptKind::Torn }],
            "the tear is attributed to the exact record"
        );
    }

    #[test]
    fn bit_rot_is_detected_and_dual_write_repairs_it() {
        let faults = DiskFaultPlan::new(5).with_bit_rot(0.4).unwrap();
        let single =
            StoreConfig { snapshot_every: 0, dual_write: false, faults };
        let mut s = DurableStore::new(single);
        let n = 40u64;
        for i in 0..n {
            s.append(&rec(i, i, format!("payload-{i}").as_bytes()));
            s.flush().unwrap();
        }
        let r = s.recover();
        assert!(!r.scrub.lost.is_empty(), "40% rot over 40 records must hit some");
        // Rot in the length field reads as a truncation, so a few lost
        // records may classify Torn; most must classify Rotten.
        assert!(r.scrub.lost.iter().any(|l| l.kind == CorruptKind::Rotten));
        assert_eq!(r.sessions.len() + r.scrub.lost.len(), n as usize);

        // Same plan, dual write: a record is lost only when *both*
        // replica draws rot — strictly fewer than single-replica.
        let mut d = DurableStore::new(StoreConfig { dual_write: true, ..single });
        for i in 0..n {
            d.append(&rec(i, i, format!("payload-{i}").as_bytes()));
            d.flush().unwrap();
        }
        let rd = d.recover();
        assert!(rd.scrub.lost.len() < r.scrub.lost.len(), "dual write must repair some rot");
        assert!(!rd.scrub.repaired.is_empty(), "repairs are audited");
        for seq in &rd.scrub.repaired {
            assert!(rd.sessions.values().any(|c| c.seq == *seq), "repaired records are served");
        }
    }

    #[test]
    fn reordered_flush_changes_which_record_a_tear_destroys() {
        let faults = DiskFaultPlan::new(2)
            .with_reordered_flushes(0.999)
            .unwrap()
            .with_torn_writes(0.999)
            .unwrap();
        let mut s =
            DurableStore::new(StoreConfig { snapshot_every: 0, dual_write: false, faults });
        let a = s.append(&rec(1, 1, b"first"));
        let b = s.append(&rec(2, 1, b"second"));
        s.flush().unwrap();
        assert_eq!(s.stats().reordered_flushes, 1);
        // Nothing staged: the tear hits the physically-last blob, which
        // the reorder made the *first*-seq record of the batch.
        s.power_loss();
        let r = s.recover();
        assert_eq!(r.scrub.lost.len(), 1);
        assert_eq!(r.scrub.lost[0].seq, a, "the reorder moved seq {a} to the write head");
        assert!(r.sessions.values().any(|c| c.seq == b), "seq {b} survived");
    }

    #[test]
    fn snapshots_compact_the_wal_and_recovery_uses_them() {
        let mut s = DurableStore::new(StoreConfig {
            snapshot_every: 4,
            dual_write: false,
            faults: DiskFaultPlan::new(9),
        });
        for i in 0..10u64 {
            s.append(&rec(i % 3, i, format!("p{i}").as_bytes()));
            s.flush().unwrap();
        }
        assert_eq!(s.stats().snapshots, 2);
        assert!(
            s.replicas[0].wal.len() < 10,
            "snapshots must drop the covered WAL prefix (len {})",
            s.replicas[0].wal.len()
        );
        let r = s.recover();
        assert_eq!(r.scrub.snapshot_used, Some(8), "recovery starts at the newest snapshot");
        assert_eq!(r.sessions.len(), 3);
        for (sid, c) in &r.sessions {
            let latest = (0..10u64).filter(|i| i % 3 == *sid).max().expect("non-empty");
            assert_eq!(c.record.step, latest, "post-snapshot WAL overrides the base");
        }
    }

    #[test]
    fn stale_read_serves_the_previous_intact_version() {
        let faults = DiskFaultPlan::new(1).with_stale_reads(0.999).unwrap();
        let mut s =
            DurableStore::new(StoreConfig { snapshot_every: 0, dual_write: false, faults });
        s.append(&rec(1, 1, b"v1"));
        s.flush().unwrap();
        s.append(&rec(1, 2, b"v2"));
        s.flush().unwrap();
        let r = s.recover();
        let c = &r.sessions[&1];
        assert!(c.stale);
        assert_eq!(c.record.step, 1, "stale read rewinds one version");
        // A session with a single version cannot be served stale.
        s.append(&rec(2, 9, b"only"));
        s.flush().unwrap();
        let r = s.recover();
        assert!(!r.sessions[&2].stale);
        assert_eq!(r.sessions[&2].record.step, 9);
    }

    #[test]
    fn recovery_is_deterministic_across_reruns() {
        let faults = DiskFaultPlan::new(77)
            .with_torn_writes(0.3)
            .unwrap()
            .with_bit_rot(0.2)
            .unwrap()
            .with_lost_flushes(0.2)
            .unwrap()
            .with_reordered_flushes(0.3)
            .unwrap()
            .with_stale_reads(0.2)
            .unwrap();
        let run = || {
            let mut s = DurableStore::new(StoreConfig {
                snapshot_every: 3,
                dual_write: true,
                faults,
            });
            for i in 0..60u64 {
                s.append(&rec(i % 7, i, format!("payload-{i}").as_bytes()));
                let _ = s.flush();
                if i % 13 == 12 {
                    s.power_loss();
                }
            }
            s.power_loss();
            (s.recover(), s.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "same seed, same operations ⇒ byte-identical recovery");
        assert_eq!(sa, sb);
        assert!(sa.appended == 60);
    }

    #[test]
    fn trace_context_survives_the_wal_round_trip() {
        let mut s = clean_store();
        let r = rec(4711, 12, b"traced");
        assert_ne!(r.trace_id, 0);
        s.append(&r);
        s.flush().unwrap();
        s.power_loss();
        let rcv = s.recover();
        let back = &rcv.sessions[&4711].record;
        assert_eq!(back.trace_id, r.trace_id, "trace id crosses the power loss");
        assert_eq!(back.span_id, r.span_id, "span id crosses the power loss");
    }

    #[test]
    fn obs_taps_mirror_store_stats() {
        let faults = DiskFaultPlan::new(77)
            .with_torn_writes(0.5)
            .unwrap()
            .with_bit_rot(0.2)
            .unwrap()
            .with_lost_flushes(0.2)
            .unwrap()
            .with_stale_reads(0.2)
            .unwrap();
        let obs = Obs::recording();
        let mut s = DurableStore::with_obs(
            StoreConfig { snapshot_every: 3, dual_write: true, faults },
            &obs,
        );
        for i in 0..40u64 {
            s.append(&rec(i % 7, i, format!("p{i}").as_bytes()));
            let _ = s.flush();
            if i % 13 == 12 {
                s.power_loss();
            }
        }
        s.power_loss();
        let rcv = s.recover();
        let stats = s.stats();
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("store.flushes"), stats.flushes);
        assert_eq!(snap.counter_total("store.flushes_lost"), stats.lost_flushes);
        assert_eq!(snap.counter_total("store.records_acked"), stats.acked_records);
        assert_eq!(snap.counter_total("store.snapshot_compactions"), stats.snapshots);
        assert_eq!(snap.counter_total("store.power_losses"), stats.power_losses);
        assert_eq!(snap.counter_total("store.pending_lost"), stats.pending_lost);
        let torn = rcv.scrub.lost.iter().filter(|l| l.kind == CorruptKind::Torn).count();
        let rot = rcv.scrub.lost.iter().filter(|l| l.kind == CorruptKind::Rotten).count();
        assert_eq!(snap.counter_total("store.torn_detected"), torn as u64);
        assert_eq!(snap.counter_total("store.rot_detected"), rot as u64);
        assert_eq!(
            snap.counter_total("store.scrub_repairs"),
            rcv.scrub.repaired.len() as u64
        );
        let stale = rcv.sessions.values().filter(|c| c.stale).count();
        assert_eq!(snap.counter_total("store.stale_reads"), stale as u64);
        assert!(
            snap.histogram("store.flush_batch_records").map_or(0, |h| h.count) > 0,
            "flush batch sizes are recorded"
        );
        // The recovery attached a scrub trace with one event per finding.
        assert_eq!(snap.traces.len(), 1);
        assert!(snap.traces[0].label.starts_with("store.recover-"));
        assert_eq!(
            snap.span_count("store.scrub.repaired"),
            rcv.scrub.repaired.len(),
            "every repair is span-queryable"
        );

        // A plain `new()` store is detached: same workload, no metrics.
        let mut quiet = DurableStore::new(StoreConfig { snapshot_every: 3, dual_write: true, faults });
        quiet.append(&rec(1, 1, b"q"));
        let _ = quiet.flush();
        assert_eq!(quiet.stats().appended, 1);
    }

    #[test]
    fn fault_plan_validates_rates() {
        assert!(DiskFaultPlan::new(0).with_torn_writes(1.0).is_err());
        assert!(DiskFaultPlan::new(0).with_bit_rot(-0.1).is_err());
        assert!(DiskFaultPlan::new(0).with_lost_flushes(f64::NAN).is_err());
        assert!(DiskFaultPlan::new(0).with_reordered_flushes(f64::INFINITY).is_err());
        assert!(DiskFaultPlan::new(0).with_stale_reads(0.999).is_ok());
        assert!(DiskFaultPlan::new(0).is_clean());
        assert!(!DiskFaultPlan::new(0).with_bit_rot(0.1).unwrap().is_clean());
    }
}
