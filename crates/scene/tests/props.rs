//! Property tests for geometry and scene-model invariants.

use proptest::prelude::*;

use vgbl_media::SegmentId;
use vgbl_scene::npc::{DialogueChoice, DialogueNode};
use vgbl_scene::{DialogueTree, ObjectKind, Point, Rect, Scenario, ScenarioId};
use vgbl_script::MapEnv;

fn rect() -> impl Strategy<Value = Rect> {
    (-50i32..50, -50i32..50, 0u32..60, 0u32..60).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

fn point() -> impl Strategy<Value = Point> {
    (-60i32..80, -60i32..80).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn intersection_is_commutative_and_contained(a in rect(), b in rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.within(&a));
            prop_assert!(i.within(&b));
            prop_assert!(!i.is_empty());
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn contains_iff_intersects_unit_rect(r in rect(), p in point()) {
        let unit = Rect::new(p.x, p.y, 1, 1);
        prop_assert_eq!(r.contains(p), r.intersects(&unit));
    }

    #[test]
    fn center_is_inside_nonempty(r in rect()) {
        prop_assume!(!r.is_empty());
        prop_assert!(r.contains(r.center()));
    }

    #[test]
    fn within_implies_intersection_is_self(a in rect(), b in rect()) {
        prop_assume!(!a.is_empty());
        if a.within(&b) {
            prop_assert_eq!(a.intersection(&b), Some(a));
        }
    }

    #[test]
    fn topmost_hit_is_a_real_hit(
        rects in proptest::collection::vec((rect(), -5i32..5), 1..10),
        p in point(),
    ) {
        let mut scenario = Scenario::new(ScenarioId(0), "s", SegmentId(0));
        for (i, (bounds, z)) in rects.iter().enumerate() {
            let id = scenario
                .add_object(format!("o{i}"), ObjectKind::Button { label: "b".into() }, *bounds)
                .unwrap();
            scenario.object_mut(id).unwrap().z = *z;
        }
        let env = MapEnv::new();
        match scenario.topmost_at(p, &env).unwrap() {
            Some(hit) => {
                prop_assert!(hit.bounds.contains(p));
                // Nothing visible at this point has a strictly higher z.
                for o in scenario.objects() {
                    if o.bounds.contains(p) {
                        prop_assert!(o.z <= hit.z);
                    }
                }
            }
            None => {
                for o in scenario.objects() {
                    prop_assert!(!o.bounds.contains(p));
                }
            }
        }
    }

    #[test]
    fn draw_order_is_sorted_and_complete(
        zs in proptest::collection::vec(-10i32..10, 0..12),
    ) {
        let mut scenario = Scenario::new(ScenarioId(0), "s", SegmentId(0));
        for (i, z) in zs.iter().enumerate() {
            let id = scenario
                .add_object(
                    format!("o{i}"),
                    ObjectKind::Button { label: "b".into() },
                    Rect::new(0, 0, 2, 2),
                )
                .unwrap();
            scenario.object_mut(id).unwrap().z = *z;
        }
        let order = scenario.draw_order();
        prop_assert_eq!(order.len(), zs.len());
        for pair in order.windows(2) {
            prop_assert!(pair[0].z <= pair[1].z);
        }
    }

    #[test]
    fn dialogue_walk_never_exceeds_budget(
        choices in proptest::collection::vec(0usize..4, 0..24),
        budget in 1usize..16,
    ) {
        // A 3-node looping tree.
        let mut tree = DialogueTree::new();
        for id in 0..3u32 {
            tree.insert(
                id,
                DialogueNode {
                    line: format!("line {id}"),
                    choices: vec![
                        DialogueChoice { text: "next".into(), next: Some((id + 1) % 3) },
                        DialogueChoice { text: "stay".into(), next: Some(id) },
                        DialogueChoice { text: "bye".into(), next: None },
                    ],
                },
            );
        }
        tree.validate("npc").unwrap();
        let lines = tree.walk(&choices, budget);
        prop_assert!(lines.len() <= budget);
        prop_assert!(!lines.is_empty());
    }
}
