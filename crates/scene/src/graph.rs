//! The scenario graph.
//!
//! Scenarios are nodes; edges are the `goto` actions wired into triggers
//! ("buttons and objects on the video frame can be triggered to change the
//! play sequence of a video", §2.1). The graph also owns the project's
//! NPCs and image assets, because both editors and the runtime resolve
//! them by name.

use std::collections::{BTreeMap, HashSet, VecDeque};

use vgbl_media::SegmentId;

use crate::asset::AssetStore;
use crate::npc::Npc;
use crate::scenario::{Scenario, ScenarioId};
use crate::{Result, SceneError};

/// The complete interactive-video game content: scenarios, NPCs, assets.
///
/// # Examples
///
/// ```
/// use vgbl_media::SegmentId;
/// use vgbl_scene::{ObjectKind, Rect, SceneGraph};
/// use vgbl_script::{Action, EventKind, Trigger};
///
/// let mut g = SceneGraph::new();
/// let hall = g.add_scenario("hall", SegmentId(0)).unwrap();
/// g.add_scenario("lab", SegmentId(1)).unwrap();
///
/// // Mount a button in the hall that jumps to the lab.
/// let s = g.scenario_mut(hall).unwrap();
/// let door = s
///     .add_object("door", ObjectKind::Button { label: "Lab".into() }, Rect::new(2, 2, 10, 8))
///     .unwrap();
/// s.object_mut(door).unwrap().triggers.push(Trigger::unconditional(
///     EventKind::Click,
///     vec![Action::GoTo("lab".into())],
/// ));
///
/// assert_eq!(g.edges().len(), 1);
/// assert_eq!(g.reachable().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SceneGraph {
    scenarios: Vec<Scenario>,
    start: Option<ScenarioId>,
    npcs: BTreeMap<String, Npc>,
    assets: AssetStore,
}

impl SceneGraph {
    /// An empty graph.
    pub fn new() -> SceneGraph {
        SceneGraph::default()
    }

    /// Adds a scenario over `segment`, returning its id. The first
    /// scenario added becomes the start scenario until overridden.
    ///
    /// # Errors
    /// [`SceneError::DuplicateScenario`] when the name is taken.
    pub fn add_scenario(&mut self, name: impl Into<String>, segment: SegmentId) -> Result<ScenarioId> {
        let name = name.into();
        if self.scenarios.iter().any(|s| s.name == name) {
            return Err(SceneError::DuplicateScenario(name));
        }
        let id = ScenarioId(self.scenarios.len() as u32);
        self.scenarios.push(Scenario::new(id, name, segment));
        if self.start.is_none() {
            self.start = Some(id);
        }
        Ok(id)
    }

    /// All scenarios in id order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the graph has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Looks a scenario up by id.
    pub fn scenario(&self, id: ScenarioId) -> Option<&Scenario> {
        self.scenarios.get(id.0 as usize)
    }

    /// Mutable scenario access.
    pub fn scenario_mut(&mut self, id: ScenarioId) -> Option<&mut Scenario> {
        self.scenarios.get_mut(id.0 as usize)
    }

    /// Looks a scenario up by name.
    pub fn scenario_by_name(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Mutable lookup by name.
    pub fn scenario_by_name_mut(&mut self, name: &str) -> Option<&mut Scenario> {
        self.scenarios.iter_mut().find(|s| s.name == name)
    }

    /// Like [`SceneGraph::scenario_by_name`] with a typed error.
    pub fn require_scenario(&self, name: &str) -> Result<&Scenario> {
        self.scenario_by_name(name)
            .ok_or_else(|| SceneError::UnknownScenario(name.to_owned()))
    }

    /// The start scenario id.
    ///
    /// # Errors
    /// [`SceneError::EmptyGraph`] when no scenario exists.
    pub fn start(&self) -> Result<ScenarioId> {
        self.start.ok_or(SceneError::EmptyGraph)
    }

    /// Sets the start scenario by name.
    pub fn set_start(&mut self, name: &str) -> Result<()> {
        let id = self.require_scenario(name)?.id;
        self.start = Some(id);
        Ok(())
    }

    /// Registers an NPC (replacing any previous with the same name).
    pub fn add_npc(&mut self, npc: Npc) {
        self.npcs.insert(npc.name.clone(), npc);
    }

    /// Looks an NPC up by name.
    pub fn npc(&self, name: &str) -> Option<&Npc> {
        self.npcs.get(name)
    }

    /// All NPCs in name order.
    pub fn npcs(&self) -> impl Iterator<Item = &Npc> {
        self.npcs.values()
    }

    /// The shared asset registry.
    pub fn assets(&self) -> &AssetStore {
        &self.assets
    }

    /// Mutable asset registry access.
    pub fn assets_mut(&mut self) -> &mut AssetStore {
        &mut self.assets
    }

    /// Removes a scenario by name, renumbering the positional ids of the
    /// remaining scenarios. The start moves to the first remaining
    /// scenario when the removed one was the start. `goto` actions that
    /// targeted it become dangling (reported by validation).
    pub fn remove_scenario(&mut self, name: &str) -> Result<Scenario> {
        let idx = self
            .scenarios
            .iter()
            .position(|s| s.name == name)
            .ok_or_else(|| SceneError::UnknownScenario(name.to_owned()))?;
        let was_start = self.start == Some(ScenarioId(idx as u32));
        let removed = self.scenarios.remove(idx);
        for (i, s) in self.scenarios.iter_mut().enumerate() {
            s.id = ScenarioId(i as u32);
        }
        if self.scenarios.is_empty() {
            self.start = None;
        } else if was_start {
            self.start = Some(ScenarioId(0));
        } else if let Some(ScenarioId(old)) = self.start {
            if old as usize > idx {
                self.start = Some(ScenarioId(old - 1));
            }
        }
        Ok(removed)
    }

    /// Renames a scenario and rewrites every `goto` action that targeted
    /// the old name, so transitions never silently dangle on rename.
    pub fn rename_scenario(&mut self, old: &str, new: &str) -> Result<()> {
        if self.scenarios.iter().any(|s| s.name == new) {
            return Err(SceneError::DuplicateScenario(new.to_owned()));
        }
        let idx = self
            .scenarios
            .iter()
            .position(|s| s.name == old)
            .ok_or_else(|| SceneError::UnknownScenario(old.to_owned()))?;
        self.scenarios[idx].name = new.to_owned();
        for s in &mut self.scenarios {
            let rewrite = |set: &mut vgbl_script::TriggerSet| {
                for t in set.triggers_mut() {
                    for a in &mut t.actions {
                        if let vgbl_script::Action::GoTo(target) = a {
                            if target == old {
                                *target = new.to_owned();
                            }
                        }
                    }
                }
            };
            rewrite(&mut s.entry_triggers);
            for o in s.objects_mut() {
                rewrite(&mut o.triggers);
            }
        }
        Ok(())
    }

    /// All transition edges `(from, to-name)` in the graph, including
    /// danglers (targets that are not scenario names).
    pub fn edges(&self) -> Vec<(ScenarioId, String)> {
        let mut out = Vec::new();
        for s in &self.scenarios {
            for target in s.goto_targets() {
                out.push((s.id, target.to_owned()));
            }
        }
        out
    }

    /// Scenario ids reachable from the start by following `goto` edges
    /// (BFS). Unknown targets are skipped (reported by validation).
    pub fn reachable(&self) -> Result<HashSet<ScenarioId>> {
        let start = self.start()?;
        let mut seen = HashSet::with_capacity(self.scenarios.len());
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(id) = queue.pop_front() {
            let scenario = self.scenario(id).expect("ids in queue are valid");
            for target in scenario.goto_targets() {
                if let Some(next) = self.scenario_by_name(target) {
                    if seen.insert(next.id) {
                        queue.push_back(next.id);
                    }
                }
            }
        }
        Ok(seen)
    }

    /// Renders the scenario graph in Graphviz DOT syntax — the map view a
    /// course designer pins next to the authoring tool. Nodes are
    /// scenarios (the start is double-circled, scenarios containing an
    /// `end` action are shaded); edges are `goto` transitions labelled
    /// with the object that carries them ("entry" for entry triggers).
    /// Deterministic output.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph vgbl {\n  rankdir=LR;\n  node [shape=box];\n");
        let start = self.start.map(|s| s.0);
        for s in &self.scenarios {
            let mut attrs = vec![format!("label=\"{}\"", s.name.replace('"', "\\\""))];
            if start == Some(s.id.0) {
                attrs.push("peripheries=2".to_owned());
            }
            if s.has_end() {
                attrs.push("style=filled".to_owned());
                attrs.push("fillcolor=lightgrey".to_owned());
            }
            out.push_str(&format!("  s{} [{}];\n", s.id.0, attrs.join(", ")));
        }
        for s in &self.scenarios {
            let mut emit = |carrier: &str, set: &vgbl_script::TriggerSet| {
                for t in set.triggers() {
                    for a in &t.actions {
                        if let vgbl_script::Action::GoTo(target) = a {
                            match self.scenario_by_name(target) {
                                Some(to) => out.push_str(&format!(
                                    "  s{} -> s{} [label=\"{}\"];\n",
                                    s.id.0, to.id.0, carrier
                                )),
                                None => out.push_str(&format!(
                                    "  s{} -> missing_{} [label=\"{}\", color=red, style=dashed];\n",
                                    s.id.0,
                                    target.replace(|c: char| !c.is_ascii_alphanumeric(), "_"),
                                    carrier
                                )),
                            }
                        }
                    }
                }
            };
            emit("entry", &s.entry_triggers);
            for o in s.objects() {
                emit(&o.name, &o.triggers);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Breadth-first shortest path (in transitions) from the start to the
    /// named scenario; `None` when unreachable. Used by the goal-seeking
    /// bot and by authoring diagnostics.
    pub fn shortest_path(&self, to: &str) -> Result<Option<Vec<ScenarioId>>> {
        let start = self.start()?;
        let goal = self.require_scenario(to)?.id;
        if start == goal {
            return Ok(Some(vec![start]));
        }
        let mut prev: BTreeMap<ScenarioId, ScenarioId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(id) = queue.pop_front() {
            let scenario = self.scenario(id).expect("ids in queue are valid");
            for target in scenario.goto_targets() {
                if let Some(next) = self.scenario_by_name(target) {
                    if next.id != start && !prev.contains_key(&next.id) {
                        prev.insert(next.id, id);
                        if next.id == goal {
                            let mut path = vec![goal];
                            let mut cur = goal;
                            while cur != start {
                                cur = prev[&cur];
                                path.push(cur);
                            }
                            path.reverse();
                            return Ok(Some(path));
                        }
                        queue.push_back(next.id);
                    }
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::npc::DialogueTree;
    use crate::object::ObjectKind;
    use vgbl_script::{Action, EventKind, Trigger};

    /// classroom → market → classroom, plus unreachable `attic`.
    fn demo_graph() -> SceneGraph {
        let mut g = SceneGraph::new();
        let classroom = g.add_scenario("classroom", SegmentId(0)).unwrap();
        let market = g.add_scenario("market", SegmentId(1)).unwrap();
        g.add_scenario("attic", SegmentId(2)).unwrap();

        let c = g.scenario_mut(classroom).unwrap();
        let door = c
            .add_object("door", ObjectKind::Button { label: "To market".into() }, Rect::new(0, 0, 10, 10))
            .unwrap();
        c.object_mut(door).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::GoTo("market".into())],
        ));

        let m = g.scenario_mut(market).unwrap();
        m.entry_triggers.push(Trigger::unconditional(
            EventKind::Enter,
            vec![Action::GoTo("classroom".into())],
        ));
        g
    }

    #[test]
    fn add_and_lookup() {
        let g = demo_graph();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.scenario_by_name("market").unwrap().id, ScenarioId(1));
        assert!(g.scenario_by_name("moon").is_none());
        assert!(g.require_scenario("moon").is_err());
        assert_eq!(g.scenario(ScenarioId(2)).unwrap().name, "attic");
        assert!(g.scenario(ScenarioId(9)).is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = demo_graph();
        assert!(matches!(
            g.add_scenario("market", SegmentId(5)),
            Err(SceneError::DuplicateScenario(_))
        ));
    }

    #[test]
    fn start_defaults_to_first_and_can_move() {
        let mut g = demo_graph();
        assert_eq!(g.start().unwrap(), ScenarioId(0));
        g.set_start("market").unwrap();
        assert_eq!(g.start().unwrap(), ScenarioId(1));
        assert!(g.set_start("moon").is_err());
        assert!(SceneGraph::new().start().is_err());
    }

    #[test]
    fn edges_extracted_from_triggers() {
        let g = demo_graph();
        let edges = g.edges();
        assert_eq!(
            edges,
            vec![
                (ScenarioId(0), "market".to_string()),
                (ScenarioId(1), "classroom".to_string()),
            ]
        );
    }

    #[test]
    fn reachability_excludes_orphans() {
        let g = demo_graph();
        let r = g.reachable().unwrap();
        assert!(r.contains(&ScenarioId(0)));
        assert!(r.contains(&ScenarioId(1)));
        assert!(!r.contains(&ScenarioId(2)));
    }

    #[test]
    fn shortest_path_finds_and_fails() {
        let g = demo_graph();
        assert_eq!(
            g.shortest_path("market").unwrap().unwrap(),
            vec![ScenarioId(0), ScenarioId(1)]
        );
        assert_eq!(g.shortest_path("classroom").unwrap().unwrap(), vec![ScenarioId(0)]);
        assert_eq!(g.shortest_path("attic").unwrap(), None);
        assert!(g.shortest_path("moon").is_err());
    }

    #[test]
    fn npcs_and_assets_roundtrip() {
        let mut g = demo_graph();
        g.add_npc(Npc::new("teacher", DialogueTree::single_line("Fix the PC.")));
        assert!(g.npc("teacher").is_some());
        assert!(g.npc("nobody").is_none());
        assert_eq!(g.npcs().count(), 1);
        g.assets_mut().insert(crate::asset::ImageAsset::placeholder("pc", 4, 4));
        assert!(g.assets().contains("pc"));
    }

    #[test]
    fn dangling_edges_are_skipped_by_reachability() {
        let mut g = SceneGraph::new();
        let a = g.add_scenario("a", SegmentId(0)).unwrap();
        g.scenario_mut(a).unwrap().entry_triggers.push(Trigger::unconditional(
            EventKind::Enter,
            vec![Action::GoTo("nowhere".into())],
        ));
        let r = g.reachable().unwrap();
        assert_eq!(r.len(), 1);
    }
}

#[cfg(test)]
mod edit_tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::object::ObjectKind;
    use vgbl_media::SegmentId;
    use vgbl_script::{Action, EventKind, Trigger};

    fn graph3() -> SceneGraph {
        let mut g = SceneGraph::new();
        g.add_scenario("a", SegmentId(0)).unwrap();
        g.add_scenario("b", SegmentId(1)).unwrap();
        g.add_scenario("c", SegmentId(2)).unwrap();
        // a → b via object trigger; c → b via entry trigger.
        let sa = g.scenario_by_name_mut("a").unwrap();
        let o = sa
            .add_object("go", ObjectKind::Button { label: "go".into() }, Rect::new(0, 0, 4, 4))
            .unwrap();
        sa.object_mut(o).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::GoTo("b".into())],
        ));
        g.scenario_by_name_mut("c").unwrap().entry_triggers.push(Trigger::unconditional(
            EventKind::Enter,
            vec![Action::GoTo("b".into())],
        ));
        g
    }

    #[test]
    fn remove_renumbers_and_moves_start() {
        let mut g = graph3();
        g.set_start("b").unwrap();
        let removed = g.remove_scenario("a").unwrap();
        assert_eq!(removed.name, "a");
        assert_eq!(g.len(), 2);
        assert_eq!(g.scenario_by_name("b").unwrap().id, ScenarioId(0));
        assert_eq!(g.scenario_by_name("c").unwrap().id, ScenarioId(1));
        // Start followed its scenario through renumbering.
        assert_eq!(g.start().unwrap(), ScenarioId(0));
        assert!(g.remove_scenario("a").is_err());
    }

    #[test]
    fn removing_start_falls_back_to_first() {
        let mut g = graph3();
        g.remove_scenario("a").unwrap();
        assert_eq!(g.scenario(g.start().unwrap()).unwrap().name, "b");
    }

    #[test]
    fn removing_everything_empties_start() {
        let mut g = graph3();
        g.remove_scenario("a").unwrap();
        g.remove_scenario("b").unwrap();
        g.remove_scenario("c").unwrap();
        assert!(g.start().is_err());
        assert!(g.is_empty());
    }

    #[test]
    fn rename_rewrites_gotos_everywhere() {
        let mut g = graph3();
        g.rename_scenario("b", "library").unwrap();
        assert!(g.scenario_by_name("b").is_none());
        assert!(g.scenario_by_name("library").is_some());
        let targets: Vec<String> = g.edges().into_iter().map(|(_, t)| t).collect();
        assert_eq!(targets, vec!["library".to_string(), "library".to_string()]);
        // Validation stays clean w.r.t. transitions.
        let report = crate::validate::validate(&g, None);
        assert!(!report.issues.iter().any(|i| matches!(i, crate::Issue::DanglingGoto { .. })));
    }

    #[test]
    fn rename_rejects_duplicates_and_unknowns() {
        let mut g = graph3();
        assert!(matches!(
            g.rename_scenario("a", "b"),
            Err(SceneError::DuplicateScenario(_))
        ));
        assert!(matches!(
            g.rename_scenario("zz", "yy"),
            Err(SceneError::UnknownScenario(_))
        ));
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::object::ObjectKind;
    use vgbl_media::SegmentId;
    use vgbl_script::{Action, EventKind, Trigger};

    #[test]
    fn dot_contains_nodes_edges_and_marks() {
        let mut g = SceneGraph::new();
        let a = g.add_scenario("start room", SegmentId(0)).unwrap();
        let b = g.add_scenario("finale", SegmentId(1)).unwrap();
        let sa = g.scenario_mut(a).unwrap();
        let btn = sa
            .add_object("door", ObjectKind::Button { label: "go".into() }, Rect::new(0, 0, 4, 4))
            .unwrap();
        sa.object_mut(btn).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::GoTo("finale".into())],
        ));
        g.scenario_mut(b).unwrap().entry_triggers.push(Trigger::unconditional(
            EventKind::Enter,
            vec![Action::End("done".into())],
        ));
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph vgbl {"));
        assert!(dot.contains("label=\"start room\""));
        assert!(dot.contains("peripheries=2")); // start marker
        assert!(dot.contains("fillcolor=lightgrey")); // end marker
        assert!(dot.contains("s0 -> s1 [label=\"door\"]"));
        assert!(dot.ends_with("}\n"));
        // Deterministic.
        assert_eq!(dot, g.to_dot());
    }

    #[test]
    fn dot_flags_dangling_targets() {
        let mut g = SceneGraph::new();
        let a = g.add_scenario("a", SegmentId(0)).unwrap();
        g.scenario_mut(a).unwrap().entry_triggers.push(Trigger::unconditional(
            EventKind::Enter,
            vec![Action::GoTo("no where".into())],
        ));
        let dot = g.to_dot();
        assert!(dot.contains("missing_no_where"));
        assert!(dot.contains("color=red"));
    }
}
