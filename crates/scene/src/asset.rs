//! Image assets and the asset registry.
//!
//! Figure 2 of the paper shows "an image object with white background …
//! mounted on the video frame". An [`ImageAsset`] is such an image: a
//! small RGB bitmap plus an optional colour key that the compositor
//! treats as transparent (reproducing the white-background effect
//! properly). The [`AssetStore`] is the project-wide registry both
//! editors and the runtime share.

use std::collections::BTreeMap;

use vgbl_media::color::Rgb;
use vgbl_media::Frame;

use crate::{Result, SceneError};

/// A named bitmap that can be mounted on video frames.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageAsset {
    /// Unique asset name.
    pub name: String,
    /// Pixel data.
    pub image: Frame,
    /// Colour treated as transparent when compositing, if any.
    pub color_key: Option<Rgb>,
}

impl ImageAsset {
    /// Creates an opaque asset.
    pub fn opaque(name: impl Into<String>, image: Frame) -> ImageAsset {
        ImageAsset { name: name.into(), image, color_key: None }
    }

    /// Creates an asset whose `key` pixels are transparent.
    pub fn keyed(name: impl Into<String>, image: Frame, key: Rgb) -> ImageAsset {
        ImageAsset { name: name.into(), image, color_key: Some(key) }
    }

    /// Generates a simple placeholder sprite: a coloured glyph-like shape
    /// on a white background with a white colour key — the style of the
    /// paper's umbrella object. Deterministic for a given name.
    pub fn placeholder(name: impl Into<String>, w: u32, h: u32) -> ImageAsset {
        let name = name.into();
        let seed = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
                (acc ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
            });
        let color = Rgb::from_seed(seed);
        let mut image = Frame::filled(w.max(3), h.max(3), Rgb::WHITE)
            .expect("placeholder dims are small and valid");
        // A filled diamond reads as an "object" at any size.
        let (cw, ch) = (image.width() as i64, image.height() as i64);
        for y in 0..ch {
            for x in 0..cw {
                let dx = (2 * x - cw + 1).abs();
                let dy = (2 * y - ch + 1).abs();
                if dx * ch + dy * cw <= cw * ch {
                    image.set(x as u32, y as u32, color);
                }
            }
        }
        ImageAsset::keyed(name, image, Rgb::WHITE)
    }
}

/// A project-wide, name-keyed registry of image assets.
///
/// Backed by a `BTreeMap` so iteration (and therefore serialisation and
/// rendering) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AssetStore {
    assets: BTreeMap<String, ImageAsset>,
}

impl AssetStore {
    /// An empty store.
    pub fn new() -> AssetStore {
        AssetStore::default()
    }

    /// Inserts or replaces an asset; returns the previous one if any.
    pub fn insert(&mut self, asset: ImageAsset) -> Option<ImageAsset> {
        self.assets.insert(asset.name.clone(), asset)
    }

    /// Looks an asset up by name.
    pub fn get(&self, name: &str) -> Option<&ImageAsset> {
        self.assets.get(name)
    }

    /// Like [`AssetStore::get`] but with a typed error.
    pub fn require(&self, name: &str) -> Result<&ImageAsset> {
        self.get(name)
            .ok_or_else(|| SceneError::UnknownAsset(name.to_owned()))
    }

    /// Removes an asset by name.
    pub fn remove(&mut self, name: &str) -> Option<ImageAsset> {
        self.assets.remove(name)
    }

    /// Whether `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.assets.contains_key(name)
    }

    /// Iterates assets in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ImageAsset> {
        self.assets.values()
    }

    /// Number of assets.
    pub fn len(&self) -> usize {
        self.assets.len()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.assets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_insert_get_remove() {
        let mut store = AssetStore::new();
        assert!(store.is_empty());
        store.insert(ImageAsset::placeholder("umbrella", 8, 8));
        assert_eq!(store.len(), 1);
        assert!(store.contains("umbrella"));
        assert!(store.get("umbrella").is_some());
        assert!(store.require("umbrella").is_ok());
        assert!(matches!(store.require("hat"), Err(SceneError::UnknownAsset(_))));
        let prev = store.insert(ImageAsset::placeholder("umbrella", 4, 4));
        assert!(prev.is_some());
        assert_eq!(store.len(), 1);
        assert!(store.remove("umbrella").is_some());
        assert!(store.remove("umbrella").is_none());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut store = AssetStore::new();
        for name in ["zebra", "apple", "mid"] {
            store.insert(ImageAsset::placeholder(name, 4, 4));
        }
        let names: Vec<&str> = store.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["apple", "mid", "zebra"]);
    }

    #[test]
    fn placeholder_is_deterministic_and_keyed() {
        let a = ImageAsset::placeholder("fan", 9, 9);
        let b = ImageAsset::placeholder("fan", 9, 9);
        assert_eq!(a, b);
        assert_eq!(a.color_key, Some(Rgb::WHITE));
        // Centre is painted, corner stays white (transparent).
        let c = a.image.get(4, 4).unwrap();
        assert_ne!(c, Rgb::WHITE);
        assert_eq!(a.image.get(0, 0), Some(Rgb::WHITE));
        // Different names give different colours almost surely.
        let other = ImageAsset::placeholder("ram", 9, 9);
        assert_ne!(other.image.get(4, 4), a.image.get(4, 4));
    }

    #[test]
    fn placeholder_clamps_tiny_sizes() {
        let a = ImageAsset::placeholder("x", 0, 1);
        assert!(a.image.width() >= 3 && a.image.height() >= 3);
    }
}
