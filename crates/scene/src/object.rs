//! Interactive objects mounted on video frames.
//!
//! §4.2: "Image objects are mounted on a video scenario. … Users can set
//! the properties and events of objects in video and produce adequate
//! feedback when users trigger them." An [`InteractiveObject`] carries its
//! kind (button, image, collectable item, NPC anchor), its bounds on the
//! frame, an optional visibility condition, and its [`TriggerSet`].

use vgbl_script::ast::Expr;
use vgbl_script::{Env, EventKind, TriggerSet};

use crate::geometry::{Point, Rect};

/// Identifier of an object within its scenario (positional, assigned by
/// the scenario editor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// What an interactive object *is*.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectKind {
    /// A clickable button with a label — Figure 2's "buttons also provide
    /// players options to switch to other video segments".
    Button {
        /// Text on the button face.
        label: String,
    },
    /// A mounted image asset (by name in the [`crate::AssetStore`]).
    Image {
        /// Asset name.
        asset: String,
    },
    /// A collectable/examinable item ("players have a backpack to collect
    /// items in game", §3.1).
    Item {
        /// Asset drawn for the item.
        asset: String,
        /// Description shown when the player examines it.
        description: String,
        /// Whether dragging it to the inventory is allowed.
        takeable: bool,
    },
    /// An anchor for a non-player character (dialogue lives in
    /// [`crate::npc::Npc`], referenced by name).
    NpcAnchor {
        /// Name of the NPC in the scene graph.
        npc: String,
    },
}

impl ObjectKind {
    /// Short tag used by renders and the `.vgp` format.
    pub fn tag(&self) -> &'static str {
        match self {
            ObjectKind::Button { .. } => "button",
            ObjectKind::Image { .. } => "image",
            ObjectKind::Item { .. } => "item",
            ObjectKind::NpcAnchor { .. } => "npc",
        }
    }
}

/// An interactive object mounted on a scenario's video frame.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractiveObject {
    /// Positional id within the scenario.
    pub id: ObjectId,
    /// Unique (per scenario) name, used by conditions and analytics.
    pub name: String,
    /// What the object is.
    pub kind: ObjectKind,
    /// Bounds on the video frame.
    pub bounds: Rect,
    /// Stacking order: higher `z` is hit-tested and drawn on top.
    pub z: i32,
    /// Optional visibility condition over game state; `None` = always
    /// visible. Invisible objects neither draw nor receive events.
    pub visible_when: Option<Expr>,
    /// The object's event wiring.
    pub triggers: TriggerSet,
}

impl InteractiveObject {
    /// Creates a visible object with no triggers.
    pub fn new(id: ObjectId, name: impl Into<String>, kind: ObjectKind, bounds: Rect) -> Self {
        InteractiveObject {
            id,
            name: name.into(),
            kind,
            bounds,
            z: 0,
            visible_when: None,
            triggers: TriggerSet::new(),
        }
    }

    /// Evaluates the visibility condition in `env` (authoring errors in
    /// the condition propagate).
    pub fn is_visible(&self, env: &dyn Env) -> vgbl_script::Result<bool> {
        match &self.visible_when {
            None => Ok(true),
            Some(cond) => vgbl_script::eval(cond, env)?.as_condition(),
        }
    }

    /// Whether the point hits this object's bounds (visibility not
    /// considered — callers filter by [`InteractiveObject::is_visible`]).
    pub fn hit(&self, p: Point) -> bool {
        self.bounds.contains(p)
    }

    /// Whether this object has any trigger for `event`
    /// (used by authoring lints).
    pub fn listens_for(&self, event: &EventKind) -> bool {
        self.triggers.triggers().iter().any(|t| t.event == *event)
    }

    /// Whether this object is a takeable item.
    pub fn is_takeable(&self) -> bool {
        matches!(self.kind, ObjectKind::Item { takeable: true, .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_script::{Action, MapEnv, Trigger, Value};

    fn obj() -> InteractiveObject {
        InteractiveObject::new(
            ObjectId(0),
            "umbrella",
            ObjectKind::Item {
                asset: "umbrella_img".into(),
                description: "A red umbrella.".into(),
                takeable: true,
            },
            Rect::new(10, 10, 20, 16),
        )
    }

    #[test]
    fn hit_testing_respects_bounds() {
        let o = obj();
        assert!(o.hit(Point::new(10, 10)));
        assert!(o.hit(Point::new(29, 25)));
        assert!(!o.hit(Point::new(30, 10)));
        assert!(!o.hit(Point::new(9, 9)));
    }

    #[test]
    fn visibility_defaults_true() {
        let o = obj();
        assert!(o.is_visible(&MapEnv::new()).unwrap());
    }

    #[test]
    fn visibility_condition_gates() {
        let mut o = obj();
        o.visible_when = Some(vgbl_script::parse_expr("flag_found").unwrap());
        let mut env = MapEnv::new();
        env.set_var("flag_found", Value::Bool(false));
        assert!(!o.is_visible(&env).unwrap());
        env.set_var("flag_found", Value::Bool(true));
        assert!(o.is_visible(&env).unwrap());
        // Type errors propagate.
        env.set_var("flag_found", Value::Int(3));
        assert!(o.is_visible(&env).is_err());
    }

    #[test]
    fn listens_for_checks_trigger_events() {
        let mut o = obj();
        assert!(!o.listens_for(&EventKind::Click));
        o.triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::ShowText("a red umbrella".into())],
        ));
        assert!(o.listens_for(&EventKind::Click));
        assert!(!o.listens_for(&EventKind::Drag));
    }

    #[test]
    fn kind_predicates() {
        assert!(obj().is_takeable());
        let button = InteractiveObject::new(
            ObjectId(1),
            "next",
            ObjectKind::Button { label: "Next".into() },
            Rect::new(0, 0, 10, 5),
        );
        assert!(!button.is_takeable());
        assert_eq!(button.kind.tag(), "button");
        assert_eq!(obj().kind.tag(), "item");
    }

    #[test]
    fn ids_display() {
        assert_eq!(ObjectId(7).to_string(), "obj7");
    }
}
