//! Integer geometry for object bounds and hit-testing.
//!
//! Coordinates follow the video frame: origin top-left, `x` right,
//! `y` down, in pixels. Rectangles are half-open (`[x, x+w) × [y, y+h)`)
//! so adjacent bounds never double-claim a pixel.

/// A pixel position on the video frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate, pixels from the left edge.
    pub x: i32,
    /// Vertical coordinate, pixels from the top edge.
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Point {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other` (avoids the sqrt).
    pub fn dist_sq(self, other: Point) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        dx * dx + dy * dy
    }
}

/// An axis-aligned rectangle, half-open on both axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    pub const fn new(x: i32, y: i32, w: u32, h: u32) -> Rect {
        Rect { x, y, w, h }
    }

    /// Right edge (exclusive).
    pub fn right(&self) -> i64 {
        self.x as i64 + self.w as i64
    }

    /// Bottom edge (exclusive).
    pub fn bottom(&self) -> i64 {
        self.y as i64 + self.h as i64
    }

    /// Whether the rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// Whether `p` lies inside (half-open test).
    pub fn contains(&self, p: Point) -> bool {
        (p.x as i64) >= self.x as i64
            && (p.x as i64) < self.right()
            && (p.y as i64) >= self.y as i64
            && (p.y as i64) < self.bottom()
    }

    /// Whether two rectangles share any pixel.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && (self.x as i64) < other.right()
            && (other.x as i64) < self.right()
            && (self.y as i64) < other.bottom()
            && (other.y as i64) < self.bottom()
    }

    /// The shared region of two rectangles, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let r = self.right().min(other.right());
        let b = self.bottom().min(other.bottom());
        Some(Rect::new(x, y, (r - x as i64) as u32, (b - y as i64) as u32))
    }

    /// Centre point (rounded down).
    pub fn center(&self) -> Point {
        Point::new(
            (self.x as i64 + self.w as i64 / 2) as i32,
            (self.y as i64 + self.h as i64 / 2) as i32,
        )
    }

    /// Whether this rectangle fits fully within `outer`.
    pub fn within(&self, outer: &Rect) -> bool {
        self.x >= outer.x
            && self.y >= outer.y
            && self.right() <= outer.right()
            && self.bottom() <= outer.bottom()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_half_open() {
        let r = Rect::new(10, 10, 5, 5);
        assert!(r.contains(Point::new(10, 10)));
        assert!(r.contains(Point::new(14, 14)));
        assert!(!r.contains(Point::new(15, 10)));
        assert!(!r.contains(Point::new(10, 15)));
        assert!(!r.contains(Point::new(9, 10)));
    }

    #[test]
    fn empty_rect_contains_nothing() {
        let r = Rect::new(0, 0, 0, 5);
        assert!(!r.contains(Point::new(0, 0)));
        assert!(r.is_empty());
        assert_eq!(r.area(), 0);
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 5, 5)));
        // Touching edges do not intersect (half-open).
        let c = Rect::new(10, 0, 5, 10);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        // Disjoint.
        let d = Rect::new(100, 100, 2, 2);
        assert!(!a.intersects(&d));
        // Empty never intersects.
        let e = Rect::new(0, 0, 0, 0);
        assert!(!a.intersects(&e));
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = Rect::new(-5, -5, 10, 10);
        let b = Rect::new(0, 0, 10, 10);
        assert_eq!(a.intersection(&b), b.intersection(&a));
        assert_eq!(a.intersection(&b), Some(Rect::new(0, 0, 5, 5)));
    }

    #[test]
    fn center_and_within() {
        let r = Rect::new(10, 20, 4, 6);
        assert_eq!(r.center(), Point::new(12, 23));
        let outer = Rect::new(0, 0, 100, 100);
        assert!(r.within(&outer));
        assert!(!outer.within(&r));
        let edge = Rect::new(96, 94, 4, 6);
        assert!(edge.within(&outer));
        let over = Rect::new(97, 94, 4, 6);
        assert!(!over.within(&outer));
    }

    #[test]
    fn negative_coordinates() {
        let r = Rect::new(-10, -10, 5, 5);
        assert!(r.contains(Point::new(-10, -10)));
        assert!(r.contains(Point::new(-6, -6)));
        assert!(!r.contains(Point::new(-5, -5)));
        assert_eq!(r.right(), -5);
    }

    #[test]
    fn point_distance() {
        assert_eq!(Point::new(0, 0).dist_sq(Point::new(3, 4)), 25);
        assert_eq!(Point::new(-3, 0).dist_sq(Point::new(0, -4)), 25);
    }
}
