//! Static validation of a scene graph.
//!
//! The paper's pitch is that *non-programmers* author games, which makes
//! static checking the difference between a playable course and a
//! frustrating one. Validation distinguishes **errors** (the game will
//! misbehave at runtime: dangling `goto`s, missing assets/NPCs, broken
//! dialogue) from **warnings** (probably-unintended authoring: unreachable
//! scenarios, dead ends, inert objects, items granted but never used,
//! objects outside the video frame).

use std::collections::HashSet;

use vgbl_script::{Action, TriggerSet};

use crate::geometry::Rect;
use crate::graph::SceneGraph;
use crate::object::ObjectKind;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Probably-unintended authoring; the game still runs.
    Warning,
    /// The game will misbehave at runtime.
    Error,
}

/// The kinds of findings the validator reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Issue {
    /// A `goto` targets a name that is not a scenario.
    DanglingGoto {
        /// Scenario containing the bad action.
        scenario: String,
        /// The missing target.
        target: String,
    },
    /// An object references an asset not in the store.
    MissingAsset {
        /// Scenario containing the object.
        scenario: String,
        /// Object name.
        object: String,
        /// The missing asset name.
        asset: String,
    },
    /// An NPC anchor references an NPC not in the graph.
    MissingNpc {
        /// Scenario containing the anchor.
        scenario: String,
        /// Object name.
        object: String,
        /// The missing NPC name.
        npc: String,
    },
    /// A `say` action references an NPC not in the graph.
    SayUnknownNpc {
        /// Scenario containing the action.
        scenario: String,
        /// The missing NPC name.
        npc: String,
    },
    /// An NPC's dialogue tree has a dangling node reference.
    BrokenDialogue {
        /// The NPC.
        npc: String,
        /// The missing node id.
        node: u32,
    },
    /// The graph has no scenarios at all.
    EmptyGraph,
    /// A scenario cannot be reached from the start.
    Unreachable {
        /// The orphaned scenario.
        scenario: String,
    },
    /// A scenario has no outgoing `goto` and no `end` action.
    DeadEnd {
        /// The stuck scenario.
        scenario: String,
    },
    /// An object has no triggers at all.
    InertObject {
        /// Scenario containing the object.
        scenario: String,
        /// Object name.
        object: String,
    },
    /// An item is granted somewhere but no trigger ever consumes or
    /// checks it.
    UnusedItem {
        /// The item name.
        item: String,
    },
    /// An object's bounds fall (partly) outside the video frame.
    OutOfFrame {
        /// Scenario containing the object.
        scenario: String,
        /// Object name.
        object: String,
    },
    /// A scenario has no objects mounted.
    EmptyScenario {
        /// The bare scenario.
        scenario: String,
    },
}

impl Issue {
    /// The severity class of this issue kind.
    pub fn severity(&self) -> Severity {
        match self {
            Issue::DanglingGoto { .. }
            | Issue::MissingAsset { .. }
            | Issue::MissingNpc { .. }
            | Issue::SayUnknownNpc { .. }
            | Issue::BrokenDialogue { .. }
            | Issue::EmptyGraph => Severity::Error,
            Issue::Unreachable { .. }
            | Issue::DeadEnd { .. }
            | Issue::InertObject { .. }
            | Issue::UnusedItem { .. }
            | Issue::OutOfFrame { .. }
            | Issue::EmptyScenario { .. } => Severity::Warning,
        }
    }
}

impl std::fmt::Display for Issue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Issue::DanglingGoto { scenario, target } => {
                write!(f, "[{scenario}] goto targets unknown scenario `{target}`")
            }
            Issue::MissingAsset { scenario, object, asset } => {
                write!(f, "[{scenario}] object `{object}` uses missing asset `{asset}`")
            }
            Issue::MissingNpc { scenario, object, npc } => {
                write!(f, "[{scenario}] anchor `{object}` references unknown NPC `{npc}`")
            }
            Issue::SayUnknownNpc { scenario, npc } => {
                write!(f, "[{scenario}] `say` references unknown NPC `{npc}`")
            }
            Issue::BrokenDialogue { npc, node } => {
                write!(f, "NPC `{npc}` dialogue references missing node {node}")
            }
            Issue::EmptyGraph => write!(f, "the scene graph has no scenarios"),
            Issue::Unreachable { scenario } => {
                write!(f, "scenario `{scenario}` is unreachable from the start")
            }
            Issue::DeadEnd { scenario } => {
                write!(f, "scenario `{scenario}` has no way out (no goto, no end)")
            }
            Issue::InertObject { scenario, object } => {
                write!(f, "[{scenario}] object `{object}` has no triggers")
            }
            Issue::UnusedItem { item } => {
                write!(f, "item `{item}` is granted but never used or checked")
            }
            Issue::OutOfFrame { scenario, object } => {
                write!(f, "[{scenario}] object `{object}` extends outside the video frame")
            }
            Issue::EmptyScenario { scenario } => {
                write!(f, "scenario `{scenario}` has no objects")
            }
        }
    }
}

/// The result of validating a graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// All findings, errors first then warnings, in discovery order.
    pub issues: Vec<Issue>,
}

impl ValidationReport {
    /// Only the errors.
    pub fn errors(&self) -> impl Iterator<Item = &Issue> {
        self.issues.iter().filter(|i| i.severity() == Severity::Error)
    }

    /// Only the warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &Issue> {
        self.issues.iter().filter(|i| i.severity() == Severity::Warning)
    }

    /// True when no *errors* were found (warnings permitted).
    pub fn is_playable(&self) -> bool {
        self.errors().next().is_none()
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Validates `graph`. When `frame` is given, object bounds are checked
/// against the video frame rectangle.
pub fn validate(graph: &SceneGraph, frame: Option<(u32, u32)>) -> ValidationReport {
    let mut issues = Vec::new();

    if graph.is_empty() {
        issues.push(Issue::EmptyGraph);
        return ValidationReport { issues };
    }

    let frame_rect = frame.map(|(w, h)| Rect::new(0, 0, w, h));
    let mut given_items: Vec<String> = Vec::new();
    let mut used_items: HashSet<String> = HashSet::new();

    for s in graph.scenarios() {
        // Scenario-level action scan (entry triggers + object triggers).
        let mut sets: Vec<&TriggerSet> = vec![&s.entry_triggers];
        sets.extend(s.objects().iter().map(|o| &o.triggers));
        for set in sets {
            for t in set.triggers() {
                if let vgbl_script::EventKind::Use(item) = &t.event {
                    used_items.insert(item.clone());
                }
                for a in &t.actions {
                    match a {
                        Action::GoTo(target)
                            if graph.scenario_by_name(target).is_none() => {
                                issues.push(Issue::DanglingGoto {
                                    scenario: s.name.clone(),
                                    target: target.clone(),
                                });
                            }
                        Action::GiveItem(item) => given_items.push(item.clone()),
                        Action::TakeItem(item) => {
                            used_items.insert(item.clone());
                        }
                        Action::Say { npc, .. }
                            if graph.npc(npc).is_none() => {
                                issues.push(Issue::SayUnknownNpc {
                                    scenario: s.name.clone(),
                                    npc: npc.clone(),
                                });
                            }
                        _ => {}
                    }
                }
                // `has("item")`-style checks in guards count as uses.
                if let Some(cond) = &t.condition {
                    collect_has_args(cond, &mut used_items);
                }
            }
        }

        if s.objects().is_empty() {
            issues.push(Issue::EmptyScenario { scenario: s.name.clone() });
        }

        for o in s.objects() {
            match &o.kind {
                ObjectKind::Image { asset }
                | ObjectKind::Item { asset, .. } => {
                    if !graph.assets().contains(asset) {
                        issues.push(Issue::MissingAsset {
                            scenario: s.name.clone(),
                            object: o.name.clone(),
                            asset: asset.clone(),
                        });
                    }
                }
                ObjectKind::NpcAnchor { npc } => {
                    if graph.npc(npc).is_none() {
                        issues.push(Issue::MissingNpc {
                            scenario: s.name.clone(),
                            object: o.name.clone(),
                            npc: npc.clone(),
                        });
                    }
                }
                ObjectKind::Button { .. } => {}
            }
            // "Inert" means the object can never respond to anything.
            // NPC anchors speak their dialogue and items show their
            // description / can be taken by default, so only triggerless
            // buttons, images and featureless items qualify.
            let has_default_behaviour = match &o.kind {
                ObjectKind::NpcAnchor { .. } => true,
                ObjectKind::Item { description, takeable, .. } => {
                    !description.is_empty() || *takeable
                }
                ObjectKind::Button { .. } | ObjectKind::Image { .. } => false,
            };
            if o.triggers.is_empty() && !has_default_behaviour {
                issues.push(Issue::InertObject {
                    scenario: s.name.clone(),
                    object: o.name.clone(),
                });
            }
            if let Some(fr) = frame_rect {
                if !o.bounds.within(&fr) {
                    issues.push(Issue::OutOfFrame {
                        scenario: s.name.clone(),
                        object: o.name.clone(),
                    });
                }
            }
        }

        if s.goto_targets().is_empty() && !s.has_end() {
            issues.push(Issue::DeadEnd { scenario: s.name.clone() });
        }
    }

    // Dialogue integrity.
    for npc in graph.npcs() {
        if let Err(crate::SceneError::DanglingDialogue { npc, node }) =
            npc.dialogue.validate(&npc.name)
        {
            issues.push(Issue::BrokenDialogue { npc, node });
        }
    }

    // Reachability.
    if let Ok(reachable) = graph.reachable() {
        for s in graph.scenarios() {
            if !reachable.contains(&s.id) {
                issues.push(Issue::Unreachable { scenario: s.name.clone() });
            }
        }
    }

    // Items granted but never consumed/checked anywhere.
    for item in given_items {
        if !used_items.contains(&item) {
            let issue = Issue::UnusedItem { item };
            if !issues.contains(&issue) {
                issues.push(issue);
            }
        }
    }

    // Errors first, preserving discovery order within each class.
    issues.sort_by_key(|i| std::cmp::Reverse(i.severity()));
    ValidationReport { issues }
}

/// Recursively collects string arguments of `has(...)`/`used(...)` calls —
/// item references inside guard expressions.
fn collect_has_args(expr: &vgbl_script::Expr, out: &mut HashSet<String>) {
    use vgbl_script::Expr;
    match expr {
        Expr::Literal(_) | Expr::Var(_) => {}
        Expr::Unary { expr, .. } => collect_has_args(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_has_args(lhs, out);
            collect_has_args(rhs, out);
        }
        Expr::Call { name, args } => {
            if name == "has" || name == "used" {
                for a in args {
                    if let Expr::Literal(vgbl_script::Value::Str(s)) = a {
                        out.insert(s.clone());
                    }
                }
            }
            for a in args {
                collect_has_args(a, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::ImageAsset;
    use crate::geometry::Rect;
    use crate::npc::{DialogueChoice, DialogueNode, DialogueTree, Npc};
    use crate::object::ObjectKind;
    use vgbl_media::SegmentId;
    use vgbl_script::{EventKind, Trigger};

    /// A minimal clean two-scenario game.
    fn clean_graph() -> SceneGraph {
        let mut g = SceneGraph::new();
        g.assets_mut().insert(ImageAsset::placeholder("pc", 8, 8));
        let a = g.add_scenario("classroom", SegmentId(0)).unwrap();
        let b = g.add_scenario("market", SegmentId(1)).unwrap();

        let sa = g.scenario_mut(a).unwrap();
        let pc = sa
            .add_object(
                "computer",
                ObjectKind::Item { asset: "pc".into(), description: "PC".into(), takeable: false },
                Rect::new(5, 5, 10, 10),
            )
            .unwrap();
        sa.object_mut(pc).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::GoTo("market".into())],
        ));

        let sb = g.scenario_mut(b).unwrap();
        let exit = sb
            .add_object("finish", ObjectKind::Button { label: "Done".into() }, Rect::new(0, 0, 8, 8))
            .unwrap();
        sb.object_mut(exit).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::End("win".into())],
        ));
        g
    }

    #[test]
    fn clean_graph_validates_clean() {
        let report = validate(&clean_graph(), Some((64, 48)));
        assert!(report.is_clean(), "issues: {:?}", report.issues);
        assert!(report.is_playable());
    }

    #[test]
    fn empty_graph_is_error() {
        let report = validate(&SceneGraph::new(), None);
        assert_eq!(report.issues, vec![Issue::EmptyGraph]);
        assert!(!report.is_playable());
    }

    #[test]
    fn dangling_goto_detected() {
        let mut g = clean_graph();
        g.scenario_by_name_mut("market")
            .unwrap()
            .entry_triggers
            .push(Trigger::unconditional(EventKind::Enter, vec![Action::GoTo("moon".into())]));
        let report = validate(&g, None);
        assert!(report
            .errors()
            .any(|i| matches!(i, Issue::DanglingGoto { target, .. } if target == "moon")));
        assert!(!report.is_playable());
    }

    #[test]
    fn missing_asset_and_npc_detected() {
        let mut g = clean_graph();
        let s = g.scenario_by_name_mut("classroom").unwrap();
        let o = s
            .add_object(
                "ghost_img",
                ObjectKind::Image { asset: "nothere".into() },
                Rect::new(0, 0, 4, 4),
            )
            .unwrap();
        s.object_mut(o).unwrap().triggers.push(Trigger::unconditional(EventKind::Click, vec![]));
        let o2 = s
            .add_object("who", ObjectKind::NpcAnchor { npc: "phantom".into() }, Rect::new(20, 20, 4, 4))
            .unwrap();
        s.object_mut(o2).unwrap().triggers.push(Trigger::unconditional(EventKind::Click, vec![]));
        let report = validate(&g, None);
        assert!(report.errors().any(|i| matches!(i, Issue::MissingAsset { asset, .. } if asset == "nothere")));
        assert!(report.errors().any(|i| matches!(i, Issue::MissingNpc { npc, .. } if npc == "phantom")));
    }

    #[test]
    fn say_unknown_npc_detected() {
        let mut g = clean_graph();
        g.scenario_by_name_mut("classroom")
            .unwrap()
            .entry_triggers
            .push(Trigger::unconditional(
                EventKind::Enter,
                vec![Action::Say { npc: "narrator".into(), line: "hello".into() }],
            ));
        let report = validate(&g, None);
        assert!(report.errors().any(|i| matches!(i, Issue::SayUnknownNpc { npc, .. } if npc == "narrator")));
    }

    #[test]
    fn broken_dialogue_detected() {
        let mut g = clean_graph();
        let mut tree = DialogueTree::new();
        tree.insert(
            0,
            DialogueNode {
                line: "hi".into(),
                choices: vec![DialogueChoice { text: "next".into(), next: Some(42) }],
            },
        );
        g.add_npc(Npc::new("teacher", tree));
        let report = validate(&g, None);
        assert!(report
            .errors()
            .any(|i| matches!(i, Issue::BrokenDialogue { node: 42, .. })));
    }

    #[test]
    fn unreachable_and_dead_end_warned() {
        let mut g = clean_graph();
        g.add_scenario("attic", SegmentId(2)).unwrap();
        let report = validate(&g, None);
        assert!(report.is_playable()); // warnings only
        assert!(report.warnings().any(|i| matches!(i, Issue::Unreachable { scenario } if scenario == "attic")));
        assert!(report.warnings().any(|i| matches!(i, Issue::DeadEnd { scenario } if scenario == "attic")));
        assert!(report.warnings().any(|i| matches!(i, Issue::EmptyScenario { scenario } if scenario == "attic")));
    }

    #[test]
    fn inert_object_warned() {
        let mut g = clean_graph();
        g.scenario_by_name_mut("classroom")
            .unwrap()
            .add_object("decor", ObjectKind::Button { label: "?".into() }, Rect::new(1, 1, 2, 2))
            .unwrap();
        let report = validate(&g, None);
        assert!(report.warnings().any(|i| matches!(i, Issue::InertObject { object, .. } if object == "decor")));
    }

    #[test]
    fn unused_item_warned_and_has_counts_as_use() {
        let mut g = clean_graph();
        g.scenario_by_name_mut("classroom")
            .unwrap()
            .entry_triggers
            .push(Trigger::unconditional(
                EventKind::Enter,
                vec![Action::GiveItem("orphan".into()), Action::GiveItem("checked".into())],
            ));
        g.scenario_by_name_mut("market")
            .unwrap()
            .object_by_name_mut("finish")
            .unwrap()
            .triggers
            .push(
                Trigger::guarded(EventKind::Click, "has(\"checked\")", vec![Action::AddScore(5)])
                    .unwrap(),
            );
        let report = validate(&g, None);
        assert!(report.warnings().any(|i| matches!(i, Issue::UnusedItem { item } if item == "orphan")));
        assert!(!report.issues.iter().any(|i| matches!(i, Issue::UnusedItem { item } if item == "checked")));
    }

    #[test]
    fn use_event_counts_as_item_use() {
        let mut g = clean_graph();
        g.scenario_by_name_mut("classroom")
            .unwrap()
            .entry_triggers
            .push(Trigger::unconditional(EventKind::Enter, vec![Action::GiveItem("ram".into())]));
        g.scenario_by_name_mut("classroom")
            .unwrap()
            .object_by_name_mut("computer")
            .unwrap()
            .triggers
            .push(Trigger::unconditional(
                EventKind::Use("ram".into()),
                vec![Action::SetFlag("fixed".into(), true)],
            ));
        let report = validate(&g, None);
        assert!(!report.issues.iter().any(|i| matches!(i, Issue::UnusedItem { .. })));
    }

    #[test]
    fn out_of_frame_warned_only_with_dims() {
        let mut g = clean_graph();
        let s = g.scenario_by_name_mut("classroom").unwrap();
        let o = s
            .add_object("huge", ObjectKind::Button { label: "big".into() }, Rect::new(60, 40, 20, 20))
            .unwrap();
        s.object_mut(o).unwrap().triggers.push(Trigger::unconditional(EventKind::Click, vec![]));
        let with = validate(&g, Some((64, 48)));
        assert!(with.warnings().any(|i| matches!(i, Issue::OutOfFrame { object, .. } if object == "huge")));
        let without = validate(&g, None);
        assert!(!without.issues.iter().any(|i| matches!(i, Issue::OutOfFrame { .. })));
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut g = clean_graph();
        g.add_scenario("attic", SegmentId(2)).unwrap(); // warnings
        g.scenario_by_name_mut("market")
            .unwrap()
            .entry_triggers
            .push(Trigger::unconditional(EventKind::Enter, vec![Action::GoTo("moon".into())]));
        let report = validate(&g, None);
        let sevs: Vec<Severity> = report.issues.iter().map(|i| i.severity()).collect();
        let first_warning = sevs.iter().position(|s| *s == Severity::Warning).unwrap();
        assert!(sevs[..first_warning].iter().all(|s| *s == Severity::Error));
        assert!(sevs[first_warning..].iter().all(|s| *s == Severity::Warning));
    }

    #[test]
    fn issue_display_strings() {
        let i = Issue::DanglingGoto { scenario: "a".into(), target: "b".into() };
        assert!(i.to_string().contains('a') && i.to_string().contains('b'));
        assert_eq!(Issue::EmptyGraph.to_string(), "the scene graph has no scenarios");
    }
}
