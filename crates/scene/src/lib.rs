//! # vgbl-scene — the scenario model
//!
//! The paper's content model (§2.1, §3): a game is a *graph of scenarios*,
//! each scenario presenting one video segment with *interactive objects*
//! mounted on the frame — buttons, images, collectable items and NPCs —
//! whose triggers change the play sequence, pop up feedback and fill the
//! player's backpack.
//!
//! * [`geometry`] — points and rectangles for object bounds/hit-testing.
//! * [`asset`] — small image assets mounted on video frames (Figure 2's
//!   umbrella) and the asset registry.
//! * [`object`] — interactive objects and their trigger sets.
//! * [`npc`] — non-player characters with fixed dialogue trees ("NPCs give
//!   fixed conversation to guide players", §3.1).
//! * [`scenario`] — one scenario: segment + objects + entry triggers.
//! * [`graph`] — the scenario graph with its implicit transition edges
//!   (extracted from `goto` actions).
//! * [`validate`] — static validation: dangling transitions, unreachable
//!   scenarios, unobtainable items, dead ends and more.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod asset;
pub mod geometry;
pub mod graph;
pub mod npc;
pub mod object;
pub mod scenario;
pub mod validate;

pub use asset::{AssetStore, ImageAsset};
pub use geometry::{Point, Rect};
pub use graph::SceneGraph;
pub use npc::{DialogueNode, DialogueTree, Npc};
pub use object::{InteractiveObject, ObjectId, ObjectKind};
pub use scenario::{Scenario, ScenarioId};
pub use validate::{Issue, Severity, ValidationReport};

/// Errors from scene-model construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SceneError {
    /// A scenario name was used twice.
    DuplicateScenario(String),
    /// An object name was used twice within a scenario.
    DuplicateObject(String),
    /// Lookup of an unknown scenario.
    UnknownScenario(String),
    /// Lookup of an unknown object.
    UnknownObject(String),
    /// Lookup of an unknown asset.
    UnknownAsset(String),
    /// The graph has no scenarios.
    EmptyGraph,
    /// A dialogue node references a node id that does not exist.
    DanglingDialogue {
        /// The NPC whose tree is broken.
        npc: String,
        /// The missing node id.
        node: u32,
    },
}

impl std::fmt::Display for SceneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SceneError::DuplicateScenario(n) => write!(f, "duplicate scenario name `{n}`"),
            SceneError::DuplicateObject(n) => write!(f, "duplicate object name `{n}`"),
            SceneError::UnknownScenario(n) => write!(f, "unknown scenario `{n}`"),
            SceneError::UnknownObject(n) => write!(f, "unknown object `{n}`"),
            SceneError::UnknownAsset(n) => write!(f, "unknown asset `{n}`"),
            SceneError::EmptyGraph => write!(f, "scene graph has no scenarios"),
            SceneError::DanglingDialogue { npc, node } => {
                write!(f, "dialogue of NPC `{npc}` references missing node {node}")
            }
        }
    }
}

impl std::error::Error for SceneError {}

/// Result alias for scene operations.
pub type Result<T> = std::result::Result<T, SceneError>;
