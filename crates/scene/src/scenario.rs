//! One scenario: a video segment plus its mounted objects.
//!
//! §2.1: "Each scenario is considered as a series of continuous shots with
//! the same place or characters" — concretely, a [`Scenario`] references
//! one [`vgbl_media::SegmentId`] of the project's footage and carries the
//! interactive objects the object editor mounted on it, plus
//! scenario-level entry triggers (what happens when the player arrives).

use vgbl_media::SegmentId;
use vgbl_script::{Action, Env, TriggerSet};

use crate::geometry::Point;
use crate::object::{InteractiveObject, ObjectId, ObjectKind};
use crate::{Result, SceneError};

/// Identifier of a scenario within its scene graph (positional).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScenarioId(pub u32);

impl std::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scn{}", self.0)
    }
}

/// A scenario: one segment of video plus interactive content.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// This scenario's id within the graph.
    pub id: ScenarioId,
    /// Unique name; `goto` actions target scenarios by name.
    pub name: String,
    /// The video segment presented while the scenario is active.
    pub segment: SegmentId,
    /// Designer-facing description (shown in the authoring tool).
    pub description: String,
    /// Scenario-level triggers (`enter`, `timer …`).
    pub entry_triggers: TriggerSet,
    objects: Vec<InteractiveObject>,
}

impl Scenario {
    /// Creates an empty scenario.
    pub fn new(id: ScenarioId, name: impl Into<String>, segment: SegmentId) -> Scenario {
        Scenario {
            id,
            name: name.into(),
            segment,
            description: String::new(),
            entry_triggers: TriggerSet::new(),
            objects: Vec::new(),
        }
    }

    /// The mounted objects in authoring order.
    pub fn objects(&self) -> &[InteractiveObject] {
        &self.objects
    }

    /// Mutable iteration over the mounted objects (editor use; callers
    /// must not change names to duplicates — lookups take the first).
    pub fn objects_mut(&mut self) -> impl Iterator<Item = &mut InteractiveObject> {
        self.objects.iter_mut()
    }

    /// Adds an object, assigning its positional id.
    ///
    /// # Errors
    /// [`SceneError::DuplicateObject`] when the name is taken.
    pub fn add_object(
        &mut self,
        name: impl Into<String>,
        kind: ObjectKind,
        bounds: crate::geometry::Rect,
    ) -> Result<ObjectId> {
        let name = name.into();
        if self.objects.iter().any(|o| o.name == name) {
            return Err(SceneError::DuplicateObject(name));
        }
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(InteractiveObject::new(id, name, kind, bounds));
        Ok(id)
    }

    /// Looks an object up by id.
    pub fn object(&self, id: ObjectId) -> Option<&InteractiveObject> {
        self.objects.get(id.0 as usize)
    }

    /// Mutable object access (for the object editor).
    pub fn object_mut(&mut self, id: ObjectId) -> Option<&mut InteractiveObject> {
        self.objects.get_mut(id.0 as usize)
    }

    /// Looks an object up by name.
    pub fn object_by_name(&self, name: &str) -> Option<&InteractiveObject> {
        self.objects.iter().find(|o| o.name == name)
    }

    /// Mutable lookup by name.
    pub fn object_by_name_mut(&mut self, name: &str) -> Option<&mut InteractiveObject> {
        self.objects.iter_mut().find(|o| o.name == name)
    }

    /// Removes an object by id, renumbering the ids of later objects
    /// (ids are positional).
    pub fn remove_object(&mut self, id: ObjectId) -> Result<InteractiveObject> {
        if (id.0 as usize) >= self.objects.len() {
            return Err(SceneError::UnknownObject(id.to_string()));
        }
        let removed = self.objects.remove(id.0 as usize);
        for (i, o) in self.objects.iter_mut().enumerate() {
            o.id = ObjectId(i as u32);
        }
        Ok(removed)
    }

    /// The topmost *visible* object at point `p`: highest `z`, and among
    /// equal `z` the most recently added — the rule a player's click obeys.
    ///
    /// Visibility conditions are evaluated in `env`; evaluation errors
    /// propagate (an authoring bug must not be silently invisible).
    pub fn topmost_at(
        &self,
        p: Point,
        env: &dyn Env,
    ) -> vgbl_script::Result<Option<&InteractiveObject>> {
        let mut best: Option<&InteractiveObject> = None;
        for o in &self.objects {
            if !o.hit(p) || !o.is_visible(env)? {
                continue;
            }
            // Later objects win ties, so `>=` on z.
            if best.is_none_or(|b| o.z >= b.z) {
                best = Some(o);
            }
        }
        Ok(best)
    }

    /// Objects sorted bottom-to-top for drawing (stable on authoring
    /// order within equal `z`).
    pub fn draw_order(&self) -> Vec<&InteractiveObject> {
        let mut refs: Vec<&InteractiveObject> = self.objects.iter().collect();
        refs.sort_by_key(|o| o.z);
        refs
    }

    /// Every `goto` target reachable from this scenario's triggers
    /// (scenario-level and object-level), with duplicates retained in
    /// encounter order — the scenario's outgoing edges.
    pub fn goto_targets(&self) -> Vec<&str> {
        fn scan<'a>(set: &'a TriggerSet, out: &mut Vec<&'a str>) {
            for t in set.triggers() {
                for a in &t.actions {
                    if let Action::GoTo(target) = a {
                        out.push(target.as_str());
                    }
                }
            }
        }
        let mut out = Vec::new();
        scan(&self.entry_triggers, &mut out);
        for o in &self.objects {
            scan(&o.triggers, &mut out);
        }
        out
    }

    /// Whether any trigger in the scenario carries an `end` action.
    pub fn has_end(&self) -> bool {
        let check = |set: &TriggerSet| {
            set.triggers()
                .iter()
                .any(|t| t.actions.iter().any(|a| matches!(a, Action::End(_))))
        };
        check(&self.entry_triggers) || self.objects.iter().any(|o| check(&o.triggers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use vgbl_script::{EventKind, MapEnv, Trigger, Value};

    fn scenario_with_objects() -> Scenario {
        let mut s = Scenario::new(ScenarioId(0), "classroom", SegmentId(0));
        s.add_object(
            "computer",
            ObjectKind::Item {
                asset: "pc".into(),
                description: "An old PC.".into(),
                takeable: false,
            },
            Rect::new(10, 10, 20, 20),
        )
        .unwrap();
        s.add_object(
            "poster",
            ObjectKind::Image { asset: "poster".into() },
            Rect::new(15, 15, 20, 20),
        )
        .unwrap();
        s
    }

    #[test]
    fn add_object_assigns_positional_ids_and_rejects_dups() {
        let mut s = scenario_with_objects();
        assert_eq!(s.objects()[0].id, ObjectId(0));
        assert_eq!(s.objects()[1].id, ObjectId(1));
        assert!(matches!(
            s.add_object("computer", ObjectKind::Button { label: "x".into() }, Rect::default()),
            Err(SceneError::DuplicateObject(_))
        ));
    }

    #[test]
    fn lookups_by_id_and_name() {
        let s = scenario_with_objects();
        assert_eq!(s.object(ObjectId(0)).unwrap().name, "computer");
        assert!(s.object(ObjectId(9)).is_none());
        assert_eq!(s.object_by_name("poster").unwrap().id, ObjectId(1));
        assert!(s.object_by_name("ghost").is_none());
    }

    #[test]
    fn remove_renumbers() {
        let mut s = scenario_with_objects();
        s.add_object("third", ObjectKind::Button { label: "b".into() }, Rect::default())
            .unwrap();
        let removed = s.remove_object(ObjectId(0)).unwrap();
        assert_eq!(removed.name, "computer");
        assert_eq!(s.objects()[0].name, "poster");
        assert_eq!(s.objects()[0].id, ObjectId(0));
        assert_eq!(s.objects()[1].name, "third");
        assert_eq!(s.objects()[1].id, ObjectId(1));
        assert!(s.remove_object(ObjectId(5)).is_err());
    }

    #[test]
    fn topmost_respects_z_and_insertion_order() {
        let mut s = scenario_with_objects();
        let env = MapEnv::new();
        // Overlap region is (15,15)-(30,30); poster added later wins ties.
        let hit = s.topmost_at(Point::new(20, 20), &env).unwrap().unwrap();
        assert_eq!(hit.name, "poster");
        // Raise computer's z above poster's.
        s.object_by_name_mut("computer").unwrap().z = 5;
        let hit = s.topmost_at(Point::new(20, 20), &env).unwrap().unwrap();
        assert_eq!(hit.name, "computer");
        // Outside everything.
        assert!(s.topmost_at(Point::new(0, 0), &env).unwrap().is_none());
        // Non-overlap region hits the only candidate.
        let hit = s.topmost_at(Point::new(11, 11), &env).unwrap().unwrap();
        assert_eq!(hit.name, "computer");
    }

    #[test]
    fn topmost_skips_invisible() {
        let mut s = scenario_with_objects();
        s.object_by_name_mut("poster").unwrap().visible_when =
            Some(vgbl_script::parse_expr("shown").unwrap());
        let mut env = MapEnv::new();
        env.set_var("shown", Value::Bool(false));
        let hit = s.topmost_at(Point::new(20, 20), &env).unwrap().unwrap();
        assert_eq!(hit.name, "computer");
        env.set_var("shown", Value::Bool(true));
        let hit = s.topmost_at(Point::new(20, 20), &env).unwrap().unwrap();
        assert_eq!(hit.name, "poster");
    }

    #[test]
    fn draw_order_sorts_by_z_stably() {
        let mut s = scenario_with_objects();
        s.object_by_name_mut("computer").unwrap().z = 3;
        let order: Vec<&str> = s.draw_order().iter().map(|o| o.name.as_str()).collect();
        assert_eq!(order, vec!["poster", "computer"]);
    }

    #[test]
    fn goto_targets_and_has_end() {
        let mut s = scenario_with_objects();
        assert!(s.goto_targets().is_empty());
        assert!(!s.has_end());
        s.entry_triggers.push(Trigger::unconditional(
            EventKind::Enter,
            vec![Action::ShowText("welcome".into())],
        ));
        s.object_by_name_mut("computer")
            .unwrap()
            .triggers
            .push(Trigger::unconditional(
                EventKind::Click,
                vec![Action::GoTo("market".into()), Action::AddScore(1)],
            ));
        s.object_by_name_mut("poster")
            .unwrap()
            .triggers
            .push(Trigger::unconditional(
                EventKind::Click,
                vec![Action::GoTo("library".into()), Action::End("done".into())],
            ));
        assert_eq!(s.goto_targets(), vec!["market", "library"]);
        assert!(s.has_end());
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(ScenarioId(3).to_string(), "scn3");
    }
}
