//! Non-player characters and their fixed dialogue.
//!
//! §3.1: "There are also non player characters to give fixed conversation
//! to guide players." A [`DialogueTree`] is a set of numbered nodes; each
//! node is one NPC line plus the player's response options, each leading
//! to another node (or ending the conversation). Trees may loop (players
//! can re-ask), but every reference must resolve — checked by
//! [`DialogueTree::validate`].

use std::collections::BTreeMap;

use crate::{Result, SceneError};

/// One player response option within a dialogue node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DialogueChoice {
    /// The text the player picks.
    pub text: String,
    /// The node the conversation moves to; `None` ends the conversation.
    pub next: Option<u32>,
}

/// One NPC line and the player's options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DialogueNode {
    /// The NPC's spoken line.
    pub line: String,
    /// Player responses; empty means the conversation ends after the line.
    pub choices: Vec<DialogueChoice>,
}

/// A complete dialogue tree. Node 0 is the entry point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DialogueTree {
    nodes: BTreeMap<u32, DialogueNode>,
}

impl DialogueTree {
    /// An empty tree (NPC says nothing).
    pub fn new() -> DialogueTree {
        DialogueTree::default()
    }

    /// A one-line conversation — the common "fixed conversation" case.
    pub fn single_line(line: impl Into<String>) -> DialogueTree {
        let mut t = DialogueTree::new();
        t.insert(0, DialogueNode { line: line.into(), choices: Vec::new() });
        t
    }

    /// Inserts or replaces a node.
    pub fn insert(&mut self, id: u32, node: DialogueNode) {
        self.nodes.insert(id, node);
    }

    /// Gets a node.
    pub fn get(&self, id: u32) -> Option<&DialogueNode> {
        self.nodes.get(&id)
    }

    /// The entry node, if the tree is non-empty.
    pub fn entry(&self) -> Option<&DialogueNode> {
        self.get(0)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates `(id, node)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &DialogueNode)> {
        self.nodes.iter().map(|(id, n)| (*id, n))
    }

    /// Checks that every `next` reference resolves and that a non-empty
    /// tree has an entry node 0.
    pub fn validate(&self, npc_name: &str) -> Result<()> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        if !self.nodes.contains_key(&0) {
            return Err(SceneError::DanglingDialogue { npc: npc_name.to_owned(), node: 0 });
        }
        for node in self.nodes.values() {
            for choice in &node.choices {
                if let Some(next) = choice.next {
                    if !self.nodes.contains_key(&next) {
                        return Err(SceneError::DanglingDialogue {
                            npc: npc_name.to_owned(),
                            node: next,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Walks a conversation following choice indices, returning the NPC
    /// lines heard. Stops at a leaf, a conversation end, or after
    /// `max_steps` (loops are legal in the data).
    pub fn walk(&self, choice_indices: &[usize], max_steps: usize) -> Vec<&str> {
        let mut lines = Vec::new();
        let mut current = match self.entry() {
            Some(n) => n,
            None => return lines,
        };
        let mut picks = choice_indices.iter();
        for _ in 0..max_steps {
            lines.push(current.line.as_str());
            if current.choices.is_empty() {
                break;
            }
            let pick = picks.next().copied().unwrap_or(0);
            let choice = match current.choices.get(pick) {
                Some(c) => c,
                None => break,
            };
            match choice.next.and_then(|id| self.get(id)) {
                Some(next) => current = next,
                None => break,
            }
        }
        lines
    }
}

/// A named NPC: its display name and dialogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Npc {
    /// Unique NPC name in the scene graph.
    pub name: String,
    /// The fixed conversation.
    pub dialogue: DialogueTree,
}

impl Npc {
    /// Creates an NPC.
    pub fn new(name: impl Into<String>, dialogue: DialogueTree) -> Npc {
        Npc { name: name.into(), dialogue }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quest_tree() -> DialogueTree {
        let mut t = DialogueTree::new();
        t.insert(
            0,
            DialogueNode {
                line: "The computer is broken. Can you fix it?".into(),
                choices: vec![
                    DialogueChoice { text: "What's wrong with it?".into(), next: Some(1) },
                    DialogueChoice { text: "I'll take a look.".into(), next: None },
                ],
            },
        );
        t.insert(
            1,
            DialogueNode {
                line: "It won't boot. Maybe a component failed.".into(),
                choices: vec![DialogueChoice { text: "Back".into(), next: Some(0) }],
            },
        );
        t
    }

    #[test]
    fn validate_accepts_good_trees() {
        assert!(quest_tree().validate("teacher").is_ok());
        assert!(DialogueTree::new().validate("silent").is_ok());
        assert!(DialogueTree::single_line("Hello.").validate("greeter").is_ok());
    }

    #[test]
    fn validate_rejects_dangling_refs() {
        let mut t = quest_tree();
        t.insert(
            2,
            DialogueNode {
                line: "orphan".into(),
                choices: vec![DialogueChoice { text: "go".into(), next: Some(99) }],
            },
        );
        assert_eq!(
            t.validate("teacher"),
            Err(SceneError::DanglingDialogue { npc: "teacher".into(), node: 99 })
        );
    }

    #[test]
    fn validate_requires_entry_node() {
        let mut t = DialogueTree::new();
        t.insert(3, DialogueNode { line: "floating".into(), choices: vec![] });
        assert_eq!(
            t.validate("x"),
            Err(SceneError::DanglingDialogue { npc: "x".into(), node: 0 })
        );
    }

    #[test]
    fn walk_follows_choices() {
        let t = quest_tree();
        // Ask, then go back, then accept.
        let lines = t.walk(&[0, 0, 1], 10);
        assert_eq!(
            lines,
            vec![
                "The computer is broken. Can you fix it?",
                "It won't boot. Maybe a component failed.",
                "The computer is broken. Can you fix it?",
            ]
        );
    }

    #[test]
    fn walk_ends_at_conversation_end() {
        let t = quest_tree();
        let lines = t.walk(&[1], 10);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn walk_bounded_on_loops() {
        let t = quest_tree();
        // Always pick "back"-style loops; max_steps caps it.
        let lines = t.walk(&[0; 100], 5);
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn walk_handles_empty_and_bad_picks() {
        assert!(DialogueTree::new().walk(&[0], 5).is_empty());
        let t = quest_tree();
        // Out-of-range choice index stops the walk.
        let lines = t.walk(&[7], 10);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn iter_is_ordered() {
        let t = quest_tree();
        let ids: Vec<u32> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
