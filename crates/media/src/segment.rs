//! Video segments — "the basic unit used for presenting scenarios"
//! (paper §2.1).
//!
//! A [`Segment`] is a half-open frame range `[start, end)` of a source
//! video. The authoring tool produces a [`SegmentTable`] either from shot
//! detection or from manual cuts, and every scenario in the scene graph
//! references exactly one segment.

use crate::error::MediaError;
use crate::timeline::{FrameRate, MediaTime};
use crate::Result;

/// Identifier of a segment within its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A half-open frame range `[start, end)` of the source video.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// This segment's id.
    pub id: SegmentId,
    /// First frame (inclusive).
    pub start: usize,
    /// One past the last frame (exclusive).
    pub end: usize,
}

impl Segment {
    /// Number of frames in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the segment holds no frames (never constructed by the
    /// table, but callers may build segments manually).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether `frame` lies inside the segment.
    pub fn contains(&self, frame: usize) -> bool {
        frame >= self.start && frame < self.end
    }

    /// Duration of the segment at the given frame rate.
    pub fn duration(&self, rate: FrameRate) -> MediaTime {
        rate.frame_to_time(self.len() as u64)
    }
}

/// An ordered, gap-free partition of a video into segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentTable {
    segments: Vec<Segment>,
    frame_count: usize,
}

impl SegmentTable {
    /// Builds the table from cut positions (each a first-frame-of-segment
    /// index). Cuts must be strictly increasing, non-zero and inside the
    /// video.
    ///
    /// # Errors
    /// [`MediaError::InvalidSegment`] on an empty video, out-of-range or
    /// non-monotonic cuts.
    pub fn from_cuts(frame_count: usize, cuts: &[usize]) -> Result<SegmentTable> {
        if frame_count == 0 {
            return Err(MediaError::InvalidSegment("video has no frames".into()));
        }
        let mut segments = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0usize;
        for (i, &cut) in cuts.iter().enumerate() {
            if cut <= start {
                return Err(MediaError::InvalidSegment(format!(
                    "cut #{i} at frame {cut} is not after previous boundary {start}"
                )));
            }
            if cut >= frame_count {
                return Err(MediaError::InvalidSegment(format!(
                    "cut #{i} at frame {cut} is outside the {frame_count}-frame video"
                )));
            }
            segments.push(Segment { id: SegmentId(segments.len() as u32), start, end: cut });
            start = cut;
        }
        segments.push(Segment {
            id: SegmentId(segments.len() as u32),
            start,
            end: frame_count,
        });
        Ok(SegmentTable { segments, frame_count })
    }

    /// A single segment covering the whole video.
    pub fn whole(frame_count: usize) -> Result<SegmentTable> {
        SegmentTable::from_cuts(frame_count, &[])
    }

    /// All segments in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// A table always has at least one segment.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total number of source frames covered.
    pub fn frame_count(&self) -> usize {
        self.frame_count
    }

    /// Looks a segment up by id.
    pub fn get(&self, id: SegmentId) -> Option<&Segment> {
        self.segments.get(id.0 as usize)
    }

    /// The segment containing `frame`, by binary search.
    pub fn segment_at(&self, frame: usize) -> Option<&Segment> {
        if frame >= self.frame_count {
            return None;
        }
        let idx = self
            .segments
            .partition_point(|s| s.end <= frame);
        self.segments.get(idx)
    }

    /// Splits the segment containing `frame` at `frame`, renumbering all
    /// ids (ids are positional). Fails when `frame` is a boundary already.
    pub fn split_at(&mut self, frame: usize) -> Result<()> {
        if frame == 0 || frame >= self.frame_count {
            return Err(MediaError::InvalidSegment(format!(
                "cannot split at frame {frame}"
            )));
        }
        if self.segments.iter().any(|s| s.start == frame) {
            return Err(MediaError::InvalidSegment(format!(
                "frame {frame} is already a boundary"
            )));
        }
        let mut cuts: Vec<usize> = self.segments.iter().skip(1).map(|s| s.start).collect();
        cuts.push(frame);
        cuts.sort_unstable();
        *self = SegmentTable::from_cuts(self.frame_count, &cuts)?;
        Ok(())
    }

    /// Merges the segment containing `frame` with its successor,
    /// renumbering ids. Fails when it is the last segment.
    pub fn merge_after(&mut self, frame: usize) -> Result<()> {
        let seg = *self
            .segment_at(frame)
            .ok_or_else(|| MediaError::InvalidSegment(format!("frame {frame} out of range")))?;
        if seg.end >= self.frame_count {
            return Err(MediaError::InvalidSegment(
                "cannot merge the final segment forward".into(),
            ));
        }
        let cuts: Vec<usize> = self
            .segments
            .iter()
            .skip(1)
            .map(|s| s.start)
            .filter(|&c| c != seg.end)
            .collect();
        *self = SegmentTable::from_cuts(self.frame_count, &cuts)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cuts_partitions() {
        let t = SegmentTable::from_cuts(10, &[3, 7]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.segments()[0], Segment { id: SegmentId(0), start: 0, end: 3 });
        assert_eq!(t.segments()[1], Segment { id: SegmentId(1), start: 3, end: 7 });
        assert_eq!(t.segments()[2], Segment { id: SegmentId(2), start: 7, end: 10 });
    }

    #[test]
    fn from_cuts_rejects_bad_input() {
        assert!(SegmentTable::from_cuts(0, &[]).is_err());
        assert!(SegmentTable::from_cuts(10, &[0]).is_err());
        assert!(SegmentTable::from_cuts(10, &[10]).is_err());
        assert!(SegmentTable::from_cuts(10, &[5, 5]).is_err());
        assert!(SegmentTable::from_cuts(10, &[7, 3]).is_err());
    }

    #[test]
    fn whole_is_single_segment() {
        let t = SegmentTable::whole(42).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.segments()[0].len(), 42);
    }

    #[test]
    fn segment_at_uses_binary_search_correctly() {
        let t = SegmentTable::from_cuts(10, &[3, 7]).unwrap();
        assert_eq!(t.segment_at(0).unwrap().id, SegmentId(0));
        assert_eq!(t.segment_at(2).unwrap().id, SegmentId(0));
        assert_eq!(t.segment_at(3).unwrap().id, SegmentId(1));
        assert_eq!(t.segment_at(6).unwrap().id, SegmentId(1));
        assert_eq!(t.segment_at(7).unwrap().id, SegmentId(2));
        assert_eq!(t.segment_at(9).unwrap().id, SegmentId(2));
        assert!(t.segment_at(10).is_none());
    }

    #[test]
    fn split_and_merge_roundtrip() {
        let mut t = SegmentTable::from_cuts(10, &[5]).unwrap();
        t.split_at(2).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.segment_at(2).unwrap().start, 2);
        // Splitting at an existing boundary fails.
        assert!(t.split_at(5).is_err());
        assert!(t.split_at(0).is_err());
        assert!(t.split_at(10).is_err());
        // Merge segment [2,5) with [5,10).
        t.merge_after(3).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.segment_at(7).unwrap().start, 2);
        // The final segment cannot merge forward.
        assert!(t.merge_after(9).is_err());
    }

    #[test]
    fn duration_uses_rate() {
        let t = SegmentTable::from_cuts(90, &[30]).unwrap();
        let d = t.segments()[0].duration(FrameRate::FPS30);
        assert_eq!(d, MediaTime::from_secs(1));
    }

    #[test]
    fn contains_respects_half_open() {
        let s = Segment { id: SegmentId(0), start: 2, end: 5 };
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
