//! Error type for all media operations.

use std::fmt;

/// Errors produced by the media substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MediaError {
    /// Frame dimensions do not match where they must (e.g. codec input).
    DimensionMismatch {
        /// Expected `(width, height)`.
        expected: (u32, u32),
        /// Actual `(width, height)`.
        actual: (u32, u32),
    },
    /// A frame dimension was zero or above the supported maximum.
    InvalidDimensions {
        /// Offending `(width, height)`.
        dims: (u32, u32),
    },
    /// The bitstream ended unexpectedly or contained an invalid code.
    CorruptBitstream(String),
    /// The container data is not a valid VGV file.
    CorruptContainer(String),
    /// A frame index is outside the video.
    FrameOutOfRange {
        /// Requested frame index.
        index: usize,
        /// Number of frames available.
        len: usize,
    },
    /// A GOP's payload bytes failed their integrity checksum.
    CorruptGop {
        /// Keyframe index of the damaged GOP.
        keyframe: usize,
    },
    /// A segment's bounds are empty or outside the video.
    InvalidSegment(String),
    /// An encode configuration parameter is out of range.
    InvalidConfig(String),
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaError::DimensionMismatch { expected, actual } => write!(
                f,
                "frame dimension mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            MediaError::InvalidDimensions { dims } => {
                write!(f, "invalid frame dimensions {}x{}", dims.0, dims.1)
            }
            MediaError::CorruptBitstream(msg) => write!(f, "corrupt bitstream: {msg}"),
            MediaError::CorruptContainer(msg) => write!(f, "corrupt container: {msg}"),
            MediaError::FrameOutOfRange { index, len } => {
                write!(f, "frame index {index} out of range (video has {len} frames)")
            }
            MediaError::CorruptGop { keyframe } => {
                write!(f, "GOP at keyframe {keyframe} failed its integrity checksum")
            }
            MediaError::InvalidSegment(msg) => write!(f, "invalid segment: {msg}"),
            MediaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for MediaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = MediaError::DimensionMismatch {
            expected: (320, 240),
            actual: (160, 120),
        };
        assert!(e.to_string().contains("320x240"));
        assert!(e.to_string().contains("160x120"));

        let e = MediaError::FrameOutOfRange { index: 9, len: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&MediaError::CorruptBitstream("x".into()));
    }
}
