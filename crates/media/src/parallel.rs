//! Minimal data-parallel helpers built on `crossbeam::scope`.
//!
//! The media pipeline parallelises three embarrassingly parallel stages —
//! per-frame histogram extraction, per-GOP encoding and per-GOP decoding —
//! using a static block distribution: items are split into `threads`
//! contiguous chunks, one scoped thread per chunk. Chunks are contiguous so
//! results can be stitched back without reordering, and for the near-uniform
//! per-item costs in this crate static splitting beats a work-stealing deque
//! (no contention, perfect locality).

/// Applies `f` to every index in `0..n`, in parallel over `threads`
/// OS threads, returning results in index order.
///
/// `threads == 0` or `threads == 1` (or `n <= 1`) degrade to the sequential
/// loop, which keeps call sites free of special cases.
///
/// # Panics
/// Propagates panics from `f` (the scope joins all threads).
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    crossbeam::scope(|s| {
        let mut rest: &mut [Option<T>] = &mut out;
        let mut start = 0usize;
        let f = &f;
        while start < n {
            let len = chunk.min(n - start);
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            let base = start;
            s.spawn(move |_| {
                for (i, slot) in head.iter_mut().enumerate() {
                    *slot = Some(f(base + i));
                }
            });
            start += len;
        }
    })
    .expect("worker thread panicked");

    out.into_iter()
        .map(|x| x.expect("all slots filled by workers"))
        .collect()
}

/// Splits `0..n` into `parts` contiguous `(start, end)` ranges whose sizes
/// differ by at most one. Used to assign GOPs/windows to workers.
pub fn split_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential() {
        let seq: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 7, 100, 200] {
            let par = parallel_map_indexed(100, threads, |i| i * i);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u8> = parallel_map_indexed(0, 4, |_| 0u8);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(1, 4, |i| i + 10);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 8, 50] {
                let ranges = split_ranges(n, parts);
                let mut expect = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, expect, "gap at {s} (n={n}, parts={parts})");
                    assert!(e > s, "empty range (n={n}, parts={parts})");
                    expect = e;
                }
                assert_eq!(expect, n, "coverage (n={n}, parts={parts})");
                if n > 0 {
                    let sizes: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
                    let min = *sizes.iter().min().unwrap();
                    let max = *sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "unbalanced split (n={n}, parts={parts})");
                }
            }
        }
    }

    #[test]
    fn split_ranges_zero_parts() {
        assert!(split_ranges(10, 0).is_empty());
    }
}
