//! Minimal data-parallel helpers built on `crossbeam::scope`.
//!
//! The media pipeline parallelises its embarrassingly parallel stages —
//! per-frame histogram extraction, per-GOP encoding and decoding — with
//! [`parallel_map_indexed`]. Work is distributed **dynamically**: indices
//! are grouped into small contiguous chunks and workers claim chunks from
//! a shared atomic counter as they finish. Unlike the static
//! one-contiguous-block-per-thread split this replaced, a worker that
//! lands cheap items (SKIP-heavy GOPs, still footage) steals the chunks a
//! loaded worker never reaches, so wall-clock tracks the *sum* of item
//! costs rather than the most expensive block. Chunks are contiguous and
//! re-stitched by start index, so results remain in index order and the
//! output is bit-identical to the sequential loop regardless of thread
//! count or claiming order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every index in `0..n`, in parallel over `threads`
/// OS threads, returning results in index order.
///
/// `threads == 0` or `threads == 1` (or `n <= 1`) degrade to the sequential
/// loop, which keeps call sites free of special cases.
///
/// Scheduling is dynamic: workers repeatedly claim the next chunk of
/// `max(1, n / (threads * 8))` consecutive indices from an atomic cursor
/// until none remain. The chunk size bounds claim traffic to ~8 claims
/// per worker on uniform workloads while still letting fast workers take
/// over a slow worker's remaining chunks on skewed ones.
///
/// # Panics
/// Propagates panics from `f` (the scope joins all threads).
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let threads = threads.min(n);
    let chunk = chunk_size(n, threads);
    let cursor = AtomicUsize::new(0);

    let mut parts: Vec<(usize, Vec<T>)> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let cursor = &cursor;
                s.spawn(move |_| {
                    let mut mine: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        mine.push((start, (start..end).map(f).collect()));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("worker thread panicked");

    // Claimed chunks tile [0, n) exactly, so sorting by start index and
    // concatenating reconstructs index order.
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, chunk) in parts {
        out.extend(chunk);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// The dynamic-scheduling claim granularity for `n` items over `threads`
/// workers: ~8 chunks per worker, never below one item.
pub fn chunk_size(n: usize, threads: usize) -> usize {
    (n / (threads.max(1) * 8)).max(1)
}

/// Splits `0..n` into `parts` contiguous `(start, end)` ranges whose sizes
/// differ by at most one. Used where a *fixed* partition is wanted (e.g.
/// assigning detection windows) rather than dynamic claiming.
pub fn split_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_matches_sequential() {
        let seq: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 7, 100, 200] {
            let par = parallel_map_indexed(100, threads, |i| i * i);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u8> = parallel_map_indexed(0, 4, |_| 0u8);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(1, 4, |i| i + 10);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn map_visits_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let out = parallel_map_indexed(257, 4, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..257).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn skewed_workloads_keep_index_order() {
        // Early indices are ~100× more expensive than late ones; under
        // static block splitting thread 0 would dominate wall-clock, and
        // any scheduling bug that reorders results would show here.
        let seq: Vec<u64> = (0..64).map(busy_work).collect();
        let par = parallel_map_indexed(64, 4, busy_work);
        assert_eq!(par, seq);
    }

    fn busy_work(i: usize) -> u64 {
        let rounds = if i < 8 { 40_000 } else { 400 };
        let mut acc = i as u64;
        for r in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(r);
        }
        acc
    }

    #[test]
    fn chunk_size_bounds() {
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(7, 4), 1);
        assert_eq!(chunk_size(64, 4), 2);
        assert_eq!(chunk_size(800, 100), 1);
        assert_eq!(chunk_size(10, 0), 1);
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 8, 50] {
                let ranges = split_ranges(n, parts);
                let mut expect = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, expect, "gap at {s} (n={n}, parts={parts})");
                    assert!(e > s, "empty range (n={n}, parts={parts})");
                    expect = e;
                }
                assert_eq!(expect, n, "coverage (n={n}, parts={parts})");
                if n > 0 {
                    let sizes: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
                    let min = *sizes.iter().min().unwrap();
                    let max = *sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "unbalanced split (n={n}, parts={parts})");
                }
            }
        }
    }

    #[test]
    fn split_ranges_zero_parts() {
        assert!(split_ranges(10, 0).is_empty());
    }
}
