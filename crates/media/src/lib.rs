//! # vgbl-media — the interactive-video substrate
//!
//! This crate implements everything the VGBL platform (Chang, Hsu & Shih,
//! ICPPW 2007) needs from "interactive video technology" (§2.1 of the
//! paper), built from scratch and fully self-contained:
//!
//! * [`frame`] — raw RGB frames and pixel operations.
//! * [`color`] — colour types and colour-space conversion.
//! * [`timeline`] — frame-accurate timestamps and frame rates.
//! * [`synth`] — a deterministic procedural footage generator that stands
//!   in for camera/film material (the paper's designers "produce scenarios
//!   by shooting videos"); it emits ground-truth shot boundaries so that
//!   detection accuracy is measurable.
//! * [`histogram`] + [`shot`] — shot-boundary detection, the mechanism by
//!   which the authoring tool "divides video into scenario components"
//!   (§4.1), with an optional parallel pipeline.
//! * [`codec`] — a toy but structurally honest intra/inter video codec
//!   (block motion compensation, quantisation, RLE, exp-Golomb bitstream).
//! * [`container`] — the `VGV` container format with a keyframe index.
//! * [`mod@seek`] — random access into encoded video, the operation scenario
//!   switching depends on.
//! * [`cache`] — a bounded, sharded, shareable LRU cache of decoded GOPs
//!   that deduplicates decode work across playback sessions, seeks and
//!   prefetchers.
//! * [`segment`] — video segments, "the basic unit used for presenting
//!   scenarios" (§2.1).
//! * [`stats`] — quality metrics (MSE/PSNR) used by the codec benches.
//! * [`parallel`] — small data-parallel helpers shared by the crate.
//!
//! The substitution rationale (synthetic footage + toy codec instead of
//! 2007-era OS codecs) is documented in the repository's `DESIGN.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod codec;
pub mod color;
pub mod container;
pub mod error;
pub mod frame;
pub mod histogram;
pub mod parallel;
pub mod seek;
pub mod segment;
pub mod shot;
pub mod stats;
pub mod synth;
pub mod timeline;

pub use cache::{CacheStats, GopCache, VideoId};
pub use codec::{DecodedVideo, Decoder, EncodeConfig, Encoder, Quality};
pub use container::{
    payload_checksum, ContainerReader, ContainerWriter, FrameKind, GopChecksums, VgvHeader,
};
pub use error::MediaError;
pub use frame::Frame;
pub use seek::{seek, seek_cached, seek_observed, SeekStats};
pub use segment::{Segment, SegmentId, SegmentTable};
pub use shot::{CutScore, ShotDetector, ShotDetectorConfig};
pub use synth::{Footage, FootageSpec, ShotSpec};
pub use timeline::{FrameRate, MediaTime};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MediaError>;
