//! Shared decoded-GOP cache.
//!
//! Every decode hot path in the platform — segment-looping playback,
//! scenario-switch seeks, branch-aware decode-ahead — ends in the same
//! operation: "give me the decoded frames of the GOP starting at keyframe
//! `k` of video `v`". Before this module each consumer kept its own
//! private `HashMap` of decoded GOPs, so a cohort of N concurrent
//! sessions over the *same* content decoded every GOP N times. The
//! [`GopCache`] is one bounded, sharded LRU map shared through an `Arc`:
//! each GOP is decoded once per residency, everyone else gets an
//! `Arc`-clone of the frames.
//!
//! Design:
//!
//! * **Sharded** — entries hash to one of a fixed number of shards, each
//!   behind its own `parking_lot::Mutex`, so sessions touching different
//!   GOPs never contend on one lock.
//! * **Bounded LRU** — capacity is a total GOP count split evenly across
//!   shards; each shard evicts its least-recently-used entry when full.
//!   Capacity 0 disables caching entirely (every lookup decodes).
//! * **Miss-coalescing** — concurrent misses on the same key block on a
//!   per-key waiter while one thread decodes, so a cold cohort performs
//!   ~1× total GOP decodes instead of N×.
//! * **Observable** — hits, misses, evictions and resident bytes are
//!   atomic counters; [`GopCache::stats`] snapshots them for analytics
//!   and the EXP-11 tables.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use vgbl_obs::{Counter, Obs, Series, SeriesSpec};

use crate::codec::EncodedVideo;
use crate::error::MediaError;
use crate::frame::Frame;
use crate::Result;

/// Identity of an encoded video inside the cache key space.
///
/// [`EncodedVideo`] carries no identity of its own, so cache consumers
/// fingerprint the stream once ([`VideoId::of`]) or assign ids out-of-band
/// ([`VideoId::from_raw`]) when they already know streams are distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VideoId(u64);

impl VideoId {
    /// Wraps an externally assigned id.
    pub fn from_raw(id: u64) -> VideoId {
        VideoId(id)
    }

    /// Deterministic fingerprint of a stream: FNV-1a over the header
    /// fields and every frame's kind and payload. Two equal streams get
    /// equal ids; payload hashing makes collisions between different
    /// streams vanishingly unlikely.
    pub fn of(video: &EncodedVideo) -> VideoId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&video.width.to_le_bytes());
        eat(&video.height.to_le_bytes());
        eat(&video.gop.to_le_bytes());
        eat(&[video.quality.to_u8()]);
        eat(&(video.frames.len() as u64).to_le_bytes());
        for f in &video.frames {
            let kind = match f.kind {
                crate::container::FrameKind::Intra => 0u8,
                crate::container::FrameKind::Inter => 1,
                crate::container::FrameKind::Skip => 2,
            };
            eat(&[kind]);
            eat(&(f.data.len() as u32).to_le_bytes());
            eat(&f.data);
        }
        VideoId(h)
    }

    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Cache key: one GOP of one video.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GopKey {
    video: VideoId,
    keyframe: usize,
}

impl GopKey {
    /// Shard selector: splitmix-style scramble so consecutive keyframes
    /// of one video spread across shards.
    fn shard_hash(self) -> u64 {
        let mut z = self.video.0 ^ (self.keyframe as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A resolved or in-flight cache slot.
enum Slot {
    /// Decoded frames plus the last-touch tick for LRU ordering.
    Ready { frames: Arc<Vec<Frame>>, touched: u64 },
    /// A decode is in flight; waiters block on the waiter's condvar.
    Pending(Arc<Waiter>),
}

/// Blocks followers of an in-flight decode until the leader resolves it,
/// then hands every follower the leader's outcome — decoded frames or
/// the decode error. Errors are handed off, never cached: the slot is
/// removed before followers wake, so the key stays retryable.
struct Waiter {
    outcome: Mutex<Option<std::result::Result<Arc<Vec<Frame>>, MediaError>>>,
    cv: Condvar,
}

impl Waiter {
    fn new() -> Arc<Waiter> {
        Arc::new(Waiter { outcome: Mutex::new(None), cv: Condvar::new() })
    }

    fn wait(&self) -> std::result::Result<Arc<Vec<Frame>>, MediaError> {
        let mut guard = self.outcome.lock();
        while guard.is_none() {
            guard = self.cv.wait(guard);
        }
        guard.as_ref().expect("resolved outcome").clone()
    }

    fn resolve(&self, outcome: std::result::Result<Arc<Vec<Frame>>, MediaError>) {
        *self.outcome.lock() = Some(outcome);
        self.cv.notify_all();
    }
}

struct Shard {
    entries: HashMap<GopKey, Slot>,
}

/// Counter snapshot returned by [`GopCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to decode (including coalesced leaders).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// GOPs currently resident.
    pub resident_gops: usize,
    /// Decoded bytes currently resident (RGB frame payloads).
    pub resident_bytes: usize,
    /// Configured capacity in GOPs (0 = caching disabled).
    pub capacity_gops: usize,
}

impl CacheStats {
    /// Fraction of lookups served without decoding. Higher is better;
    /// **empty input (an untouched cache) returns the perfect value
    /// `1.0`** — the workspace-wide convention for ratio metrics.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Resolved observability handles for the cache's event sites. The
/// default (all-noop) handles cost one `Option` check per event, so an
/// unobserved cache is unaffected.
#[derive(Debug, Default)]
struct CacheObs {
    hits: Counter,
    misses: Counter,
    coalesced_hits: Counter,
    evictions: Counter,
    // Windowed series on the cache's own touch-tick clock: each lookup
    // advances logical time by one, so a window reads as "hit/miss mix
    // over the last N lookups" — a rolling hit-rate without wall time.
    hit_series: Series,
    miss_series: Series,
}

/// Bin width (in touch ticks) for the cache hit/miss series.
const CACHE_BIN_TICKS: u64 = 64;
/// Ring length for the cache hit/miss series.
const CACHE_BINS: usize = 64;

/// Bounded, sharded, miss-coalescing LRU cache of decoded GOPs.
pub struct GopCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budget (total capacity / shard count, min 1).
    per_shard: usize,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident_bytes: AtomicUsize,
    resident_gops: AtomicUsize,
    obs: CacheObs,
}

impl std::fmt::Debug for GopCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GopCache")
            .field("capacity_gops", &self.capacity)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

fn frames_bytes(frames: &[Frame]) -> usize {
    frames
        .iter()
        .map(|f| (f.width() as usize) * (f.height() as usize) * 3)
        .sum()
}

impl GopCache {
    /// Creates a cache holding at most `capacity_gops` decoded GOPs in
    /// total. Capacity 0 disables caching: every lookup decodes and
    /// counts as a miss, which gives experiments a true "cold" baseline
    /// with the same code path.
    ///
    /// The shard count scales with capacity (~8 GOPs per shard, at most
    /// 16 shards): small caches stay in one shard so a handful of hot
    /// GOPs can never thrash each other across under-provisioned shards,
    /// while large shared caches spread lock traffic.
    pub fn new(capacity_gops: usize) -> GopCache {
        Self::with_shards(capacity_gops, capacity_gops.div_ceil(8).min(16))
    }

    /// Creates a cache with an explicit shard count (clamped to ≥ 1 and
    /// ≤ the capacity so no shard has a zero budget). Each shard gets a
    /// budget of `capacity / shards` rounded **up**, so total residency
    /// can exceed `capacity_gops` by at most `shards - 1` entries.
    pub fn with_shards(capacity_gops: usize, shards: usize) -> GopCache {
        let n_shards = shards.clamp(1, capacity_gops.max(1));
        let per_shard = if capacity_gops == 0 {
            0
        } else {
            capacity_gops.div_ceil(n_shards)
        };
        GopCache {
            shards: (0..n_shards)
                .map(|_| Mutex::new(Shard { entries: HashMap::new() }))
                .collect(),
            per_shard,
            capacity: capacity_gops,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident_bytes: AtomicUsize::new(0),
            resident_gops: AtomicUsize::new(0),
            obs: CacheObs::default(),
        }
    }

    /// Attaches an observability backend: the cache's hit/miss/
    /// coalesced-hit/eviction events additionally feed `cache.*`
    /// counters (labelled `pillar=media`) in `obs`'s registry. These
    /// mirror the [`CacheStats`] atomics exactly — EXP-13 cross-checks
    /// the two accountings against each other — except that
    /// [`GopCache::reset_counters`] resets only the [`CacheStats`] side.
    /// With a noop backend this is free.
    pub fn observed(mut self, obs: &Obs) -> GopCache {
        let labels: &[(&str, &str)] = &[("pillar", "media")];
        self.obs = CacheObs {
            hits: obs.counter("cache.hits", labels),
            misses: obs.counter("cache.misses", labels),
            coalesced_hits: obs.counter("cache.coalesced_hits", labels),
            evictions: obs.counter("cache.evictions", labels),
            hit_series: obs.series(SeriesSpec::counter(
                "cache.hit_series",
                CACHE_BIN_TICKS,
                CACHE_BINS,
            )),
            miss_series: obs.series(SeriesSpec::counter(
                "cache.miss_series",
                CACHE_BIN_TICKS,
                CACHE_BINS,
            )),
        };
        self
    }

    /// Total capacity in GOPs (0 = disabled).
    pub fn capacity_gops(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_gops: self.resident_gops.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            capacity_gops: self.capacity,
        }
    }

    /// Resets the hit/miss/eviction counters (resident state is kept).
    /// Experiments use this to measure warm phases separately.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Drops every resident entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            let dropped: Vec<Slot> = s.entries.drain().map(|(_, v)| v).collect();
            drop(s);
            for slot in dropped {
                if let Slot::Ready { frames, .. } = slot {
                    self.resident_bytes.fetch_sub(frames_bytes(&frames), Ordering::Relaxed);
                    self.resident_gops.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Whether the GOP at `keyframe` of `video_id` is resident **right
    /// now**. A pure peek for batch planners (see `vgbl-runtime`'s
    /// batched cohort): it takes the shard lock but never touches the
    /// LRU clock or the hit/miss counters, so probing residency to plan
    /// a prewarm does not distort the cache statistics the experiments
    /// report. In-flight (`Pending`) decodes count as absent — a planner
    /// must not skip a key another thread may still fail to produce.
    pub fn contains(&self, video_id: VideoId, keyframe: usize) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let key = GopKey { video: video_id, keyframe };
        let shard = &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize];
        matches!(shard.lock().entries.get(&key), Some(Slot::Ready { .. }))
    }

    /// Looks up the GOP at `keyframe` of `video_id`, decoding it with
    /// `decode` on a miss. Concurrent misses on the same key coalesce:
    /// one caller decodes, the rest block and then read the entry.
    ///
    /// `decode` must produce the frames of the **whole GOP** starting at
    /// `keyframe`; all consumers of a key must agree on that contract
    /// (they do — everyone decodes `[keyframe, next_keyframe)`).
    ///
    /// # Errors
    /// Propagates `decode`'s error. A failed decode is never cached:
    /// coalesced followers are woken with a clone of the leader's error,
    /// and the key stays retryable for later callers.
    pub fn get_or_decode<F>(
        &self,
        video_id: VideoId,
        keyframe: usize,
        decode: F,
    ) -> Result<Arc<Vec<Frame>>>
    where
        F: FnOnce() -> Result<Vec<Frame>>,
    {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.obs.misses.inc();
            self.obs.miss_series.record(self.clock.fetch_add(1, Ordering::Relaxed), 1);
            return decode().map(Arc::new);
        }
        let key = GopKey { video: video_id, keyframe };
        let shard = &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize];
        // Fast path under the shard lock: hit, or join an in-flight
        // decode, or claim leadership of a new one.
        let waiter = {
            let mut s = shard.lock();
            match s.entries.get_mut(&key) {
                Some(Slot::Ready { frames, touched }) => {
                    *touched = self.clock.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.obs.hits.inc();
                    self.obs.hit_series.record(*touched, 1);
                    return Ok(frames.clone());
                }
                Some(Slot::Pending(w)) => w.clone(),
                None => {
                    let w = Waiter::new();
                    s.entries.insert(key, Slot::Pending(w.clone()));
                    drop(s);
                    return self.lead_decode(shard, key, w, decode);
                }
            }
        };
        // Follower: block until the leader resolves, then share its
        // outcome — frames count as a coalesced hit, an error counts as
        // a miss and propagates without being cached anywhere.
        match waiter.wait() {
            Ok(frames) => {
                let tick = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs.hits.inc();
                self.obs.coalesced_hits.inc();
                self.obs.hit_series.record(tick, 1);
                Ok(frames)
            }
            Err(e) => {
                let tick = self.clock.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs.misses.inc();
                self.obs.miss_series.record(tick, 1);
                Err(e)
            }
        }
    }

    /// Leader path: decode outside the lock, publish, wake followers.
    fn lead_decode<F>(
        &self,
        shard: &Mutex<Shard>,
        key: GopKey,
        waiter: Arc<Waiter>,
        decode: F,
    ) -> Result<Arc<Vec<Frame>>>
    where
        F: FnOnce() -> Result<Vec<Frame>>,
    {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs.misses.inc();
        self.obs.miss_series.record(self.clock.load(Ordering::Relaxed), 1);
        let outcome = decode();
        let mut s = shard.lock();
        match outcome {
            Ok(frames) => {
                let frames = Arc::new(frames);
                let touched = self.clock.fetch_add(1, Ordering::Relaxed);
                s.entries
                    .insert(key, Slot::Ready { frames: frames.clone(), touched });
                self.resident_gops.fetch_add(1, Ordering::Relaxed);
                self.resident_bytes.fetch_add(frames_bytes(&frames), Ordering::Relaxed);
                self.evict_over_capacity(&mut s, key);
                drop(s);
                waiter.resolve(Ok(frames.clone()));
                Ok(frames)
            }
            Err(e) => {
                // Negative results are never cached: remove the slot
                // before waking followers so the key stays retryable.
                s.entries.remove(&key);
                drop(s);
                waiter.resolve(Err(e.clone()));
                Err(e)
            }
        }
    }

    /// Evicts least-recently-used Ready entries (never the one just
    /// inserted, never Pending ones) until the shard is within budget.
    fn evict_over_capacity(&self, s: &mut Shard, keep: GopKey) {
        while s.entries.len() > self.per_shard {
            let victim = s
                .entries
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { touched, .. } if *k != keep => Some((*k, *touched)),
                    _ => None,
                })
                .min_by_key(|&(_, touched)| touched)
                .map(|(k, _)| k);
            let Some(victim) = victim else { break };
            if let Some(Slot::Ready { frames, .. }) = s.entries.remove(&victim) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.obs.evictions.inc();
                self.resident_gops.fetch_sub(1, Ordering::Relaxed);
                self.resident_bytes.fetch_sub(frames_bytes(&frames), Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Decoder, EncodeConfig, Encoder};
    use crate::color::Rgb;
    use crate::synth::{FootageSpec, ShotSpec};
    use crate::timeline::FrameRate;

    fn encoded(gop: usize, frames: usize) -> EncodedVideo {
        let footage = FootageSpec {
            width: 24,
            height: 16,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(frames, Rgb::new(90, 140, 60))],
            noise_seed: 11,
        }
        .render()
        .unwrap();
        Encoder::new(EncodeConfig { gop, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap()
    }

    #[test]
    fn hit_after_miss_returns_same_frames() {
        let ev = encoded(4, 12);
        let id = VideoId::of(&ev);
        let cache = GopCache::new(8);
        let dec = Decoder::default();
        let a = cache
            .get_or_decode(id, 4, || dec.decode_gop_at(&ev, 4))
            .unwrap();
        let b = cache
            .get_or_decode(id, 4, || panic!("second lookup must hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.resident_gops, 1);
        assert_eq!(s.resident_bytes, 4 * 24 * 16 * 3);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let ev = encoded(4, 8);
        let id = VideoId::of(&ev);
        let cache = GopCache::new(0);
        let dec = Decoder::default();
        for _ in 0..3 {
            cache
                .get_or_decode(id, 0, || dec.decode_gop_at(&ev, 0))
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 3));
        assert_eq!(s.resident_gops, 0);
        assert_eq!(s.capacity_gops, 0);
    }

    #[test]
    fn lru_evicts_coldest_entry() {
        let ev = encoded(2, 12); // keyframes 0,2,4,6,8,10
        let id = VideoId::of(&ev);
        // Single shard, two entries, so eviction order is fully observable.
        let cache = GopCache::with_shards(2, 1);
        let dec = Decoder::default();
        let fill = |k: usize| {
            cache
                .get_or_decode(id, k, || dec.decode_gop_at(&ev, k))
                .unwrap()
        };
        fill(0);
        fill(2);
        fill(0); // touch 0 so 2 is now the LRU
        fill(4); // evicts 2
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_gops, 2);
        // 0 is still resident (hit), 2 must decode again (miss).
        let before = cache.stats();
        fill(0);
        fill(2);
        let after = cache.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses + 1);
    }

    #[test]
    fn distinct_videos_do_not_collide() {
        let a = encoded(4, 8);
        let b = encoded(4, 16);
        assert_ne!(VideoId::of(&a), VideoId::of(&b));
        assert_eq!(VideoId::of(&a), VideoId::of(&a.clone()));
        let cache = GopCache::new(8);
        let dec = Decoder::default();
        let fa = cache
            .get_or_decode(VideoId::of(&a), 0, || dec.decode_gop_at(&a, 0))
            .unwrap();
        let fb = cache
            .get_or_decode(VideoId::of(&b), 0, || dec.decode_gop_at(&b, 0))
            .unwrap();
        assert_eq!(cache.stats().misses, 2, "same keyframe, different video");
        assert_eq!(fa.len(), 4);
        assert_eq!(fb.len(), 4);
    }

    #[test]
    fn failed_decode_leaves_no_entry() {
        let cache = GopCache::new(4);
        let id = VideoId::from_raw(7);
        let err = cache.get_or_decode(id, 0, || {
            Err(crate::MediaError::CorruptBitstream("boom".into()))
        });
        assert!(err.is_err());
        assert_eq!(cache.stats().resident_gops, 0);
        // The key is retryable.
        let ok = cache.get_or_decode(id, 0, || Ok(Vec::new()));
        assert!(ok.is_ok());
    }

    #[test]
    fn clear_and_reset_counters() {
        let ev = encoded(3, 9);
        let id = VideoId::of(&ev);
        let cache = GopCache::new(8);
        let dec = Decoder::default();
        for k in [0usize, 3, 6] {
            cache
                .get_or_decode(id, k, || dec.decode_gop_at(&ev, k))
                .unwrap();
        }
        assert_eq!(cache.stats().resident_gops, 3);
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.resident_gops, 0);
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.misses, 3, "counters survive clear");
        cache.reset_counters();
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn concurrent_misses_coalesce_to_one_decode() {
        use std::sync::atomic::AtomicUsize;
        let ev = encoded(8, 16);
        let id = VideoId::of(&ev);
        let cache = GopCache::new(8);
        let decodes = AtomicUsize::new(0);
        let dec = Decoder::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let frames = cache
                        .get_or_decode(id, 0, || {
                            decodes.fetch_add(1, Ordering::Relaxed);
                            dec.decode_gop_at(&ev, 0)
                        })
                        .unwrap();
                    assert_eq!(frames.len(), 8);
                });
            }
        });
        assert_eq!(
            decodes.load(Ordering::Relaxed),
            1,
            "all concurrent misses must coalesce onto one decode"
        );
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn flaky_decoder_error_wakes_coalesced_waiters_and_stays_retryable() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::mpsc;
        let cache = GopCache::new(4);
        let id = VideoId::from_raw(3);
        let decodes = AtomicUsize::new(0);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        std::thread::scope(|s| {
            // Leader: decode fails, but only after followers have joined
            // the Pending slot.
            let (cache_ref, decodes_ref) = (&cache, &decodes);
            let leader = s.spawn(move || {
                cache_ref.get_or_decode(id, 0, || {
                    decodes_ref.fetch_add(1, Ordering::Relaxed);
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    Err(crate::MediaError::CorruptBitstream("flaky".into()))
                })
            });
            started_rx.recv().unwrap();
            // Followers join while the decode is in flight; their own
            // closures must never run.
            let followers: Vec<_> = (0..7)
                .map(|_| {
                    s.spawn(|| {
                        cache.get_or_decode(id, 0, || {
                            panic!("follower closure must not run on a coalesced miss")
                        })
                    })
                })
                .collect();
            // Wait until every follower has joined the Pending slot
            // (map + leader + 7 followers = 9 waiter references), then
            // let the decode fail.
            let key = GopKey { video: id, keyframe: 0 };
            let sidx = (key.shard_hash() % cache.shards.len() as u64) as usize;
            loop {
                let shard = cache.shards[sidx].lock();
                match shard.entries.get(&key) {
                    Some(Slot::Pending(w)) if Arc::strong_count(w) >= 9 => break,
                    _ => {}
                }
                drop(shard);
                std::thread::yield_now();
            }
            release_tx.send(()).unwrap();
            let lead_err = leader.join().unwrap().unwrap_err();
            assert_eq!(lead_err, crate::MediaError::CorruptBitstream("flaky".into()));
            for f in followers {
                // Every follower gets the leader's error — woken, not
                // blocked forever, and nothing re-decoded.
                let err = f.join().unwrap().unwrap_err();
                assert_eq!(err, lead_err);
            }
        });
        assert_eq!(decodes.load(Ordering::Relaxed), 1, "exactly one decode attempt");
        assert_eq!(cache.stats().resident_gops, 0, "failure must not be cached");
        // The key is immediately retryable and a success is cached.
        let ok = cache
            .get_or_decode(id, 0, || Ok(Vec::new()))
            .expect("retry after flaky failure succeeds");
        assert!(ok.is_empty());
        assert_eq!(cache.stats().resident_gops, 1);
    }

    #[test]
    fn obs_counters_mirror_cache_stats_exactly() {
        let ev = encoded(2, 12);
        let id = VideoId::of(&ev);
        let obs = Obs::recording();
        let cache = GopCache::with_shards(2, 1).observed(&obs);
        let dec = Decoder::default();
        // Misses, hits and an eviction, all on the observed cache.
        for k in [0usize, 2, 0, 4, 0, 2] {
            cache
                .get_or_decode(id, k, || dec.decode_gop_at(&ev, k))
                .unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "walk must trigger an eviction");
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("cache.hits"), s.hits);
        assert_eq!(snap.counter_total("cache.misses"), s.misses);
        assert_eq!(snap.counter_total("cache.evictions"), s.evictions);
        assert_eq!(snap.counter_total("cache.coalesced_hits"), 0);
    }

    #[test]
    fn stress_many_threads_many_keys() {
        let ev = encoded(2, 40); // 20 GOPs
        let id = VideoId::of(&ev);
        let cache = GopCache::with_shards(6, 3);
        let dec = Decoder::default();
        let reference = dec.decode_all(&ev).unwrap();
        std::thread::scope(|s| {
            for t in 0..6 {
                let reference = &reference;
                let cache = &cache;
                let ev = &ev;
                let dec = &dec;
                s.spawn(move || {
                    // Each thread walks the keyframes with its own stride.
                    for lap in 0..30usize {
                        let k = ((lap * (t + 1) + t) % 20) * 2;
                        let frames = cache
                            .get_or_decode(id, k, || dec.decode_gop_at(ev, k))
                            .unwrap();
                        assert_eq!(frames[0], reference.frames[k], "gop {k}");
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 180);
        assert!(s.resident_gops <= 6 + 2, "resident {} over budget", s.resident_gops);
    }
}
