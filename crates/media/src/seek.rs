//! Random access into encoded video.
//!
//! Scenario switching — the heart of interactive video (paper §2.1:
//! "buttons and objects on the video frame can be triggered to change the
//! play sequence") — is a *seek* in codec terms: jump to the first frame
//! of the target segment. Its cost is the GOP walk from the preceding
//! keyframe; EXP-3 sweeps the keyframe interval against this cost.

use vgbl_obs::{Obs, SeriesSpec};

use crate::cache::{GopCache, VideoId};
use crate::codec::{Decoder, EncodedVideo};
use crate::frame::Frame;
use crate::Result;

/// Cost accounting for one seek.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeekStats {
    /// The requested frame.
    pub target: usize,
    /// The keyframe the decode started from.
    pub keyframe: usize,
    /// Frames decoded to satisfy the request (≥ 1 for a direct seek;
    /// 0 for a cached seek served entirely from a resident GOP).
    pub frames_decoded: usize,
}

/// Seeks to `index`, returning the decoded frame and its cost.
pub fn seek(decoder: &Decoder, video: &EncodedVideo, index: usize) -> Result<(Frame, SeekStats)> {
    let keyframe = video.keyframe_before(index)?;
    let (frame, frames_decoded) = decoder.decode_frame(video, index)?;
    Ok((frame, SeekStats { target: index, keyframe, frames_decoded }))
}

/// Seeks to `index` through the shared decoded-GOP cache: a resident GOP
/// answers with zero decode work, a miss decodes the **whole** GOP once
/// (slightly more than the direct GOP walk) and leaves it resident for
/// every later seek and every other session sharing `cache`.
///
/// The returned frame is bit-identical to [`seek`]'s — both reconstruct
/// the same GOP walk; the cache only changes *when* decoding happens.
pub fn seek_cached(
    decoder: &Decoder,
    video: &EncodedVideo,
    video_id: VideoId,
    cache: &GopCache,
    index: usize,
) -> Result<(Frame, SeekStats)> {
    let keyframe = video.keyframe_before(index)?;
    let mut frames_decoded = 0usize;
    let gop = cache.get_or_decode(video_id, keyframe, || {
        let frames = decoder.decode_gop_at(video, keyframe)?;
        frames_decoded = frames.len();
        Ok(frames)
    })?;
    let frame = gop[index - keyframe].clone();
    Ok((frame, SeekStats { target: index, keyframe, frames_decoded }))
}

/// [`seek_cached`] with observability: each seek increments
/// `seek.requests` and records the GOP-walk cost (`seek.gop_walk_frames`,
/// frames actually decoded — 0 on a resident GOP) and the keyframe
/// distance (`seek.keyframe_distance`, frames between the target and its
/// preceding keyframe, the quantity EXP-3 sweeps). All under
/// `pillar=media`. With a noop backend this is [`seek_cached`] plus
/// four `Option` checks.
pub fn seek_observed(
    decoder: &Decoder,
    video: &EncodedVideo,
    video_id: VideoId,
    cache: &GopCache,
    index: usize,
    obs: &Obs,
) -> Result<(Frame, SeekStats)> {
    let labels: &[(&str, &str)] = &[("pillar", "media")];
    obs.counter("seek.requests", labels).inc();
    let out = seek_cached(decoder, video, video_id, cache, index)?;
    let stats = out.1;
    obs.histogram("seek.gop_walk_frames", labels).record(stats.frames_decoded as u64);
    obs.histogram("seek.keyframe_distance", labels)
        .record((stats.target - stats.keyframe) as u64);
    // Windowed series keyed by position on the media timeline (the
    // target frame index), so hot seek regions show up as bins with
    // high max distance — the histogram alone can't localise them.
    obs.series(SeriesSpec::gauge("seek.keyframe_distance_series", 16, 64))
        .record(stats.target as u64, (stats.target - stats.keyframe) as u64);
    Ok(out)
}

/// Average number of frames decoded per seek over the given targets.
pub fn average_seek_cost(video: &EncodedVideo, targets: &[usize]) -> Result<f64> {
    if targets.is_empty() {
        return Ok(0.0);
    }
    let mut total = 0usize;
    for &t in targets {
        let k = video.keyframe_before(t)?;
        total += t - k + 1;
    }
    Ok(total as f64 / targets.len() as f64)
}

/// Analytic expectation of the seek cost for uniform random targets within
/// a stream of keyframe interval `gop`: `(gop + 1) / 2` frames.
pub fn expected_seek_cost(gop: usize) -> f64 {
    (gop as f64 + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{EncodeConfig, Encoder};
    use crate::color::Rgb;
    use crate::synth::{FootageSpec, ShotSpec};
    use crate::timeline::FrameRate;

    fn encoded(gop: usize, frames: usize) -> EncodedVideo {
        let footage = FootageSpec {
            width: 24,
            height: 16,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(frames, Rgb::new(90, 140, 60))],
            noise_seed: 5,
        }
        .render()
        .unwrap();
        Encoder::new(EncodeConfig { gop, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap()
    }

    #[test]
    fn seek_returns_correct_frame_and_stats() {
        let ev = encoded(4, 10);
        let dec = Decoder::default();
        let all = dec.decode_all(&ev).unwrap();
        for target in 0..10 {
            let (frame, stats) = seek(&dec, &ev, target).unwrap();
            assert_eq!(frame, all.frames[target], "target {target}");
            assert_eq!(stats.target, target);
            assert_eq!(stats.keyframe, (target / 4) * 4);
            assert_eq!(stats.frames_decoded, target - stats.keyframe + 1);
        }
    }

    #[test]
    fn seek_out_of_range_errors() {
        let ev = encoded(4, 6);
        assert!(seek(&Decoder::default(), &ev, 6).is_err());
    }

    #[test]
    fn average_cost_matches_hand_computation() {
        let ev = encoded(5, 10);
        // Targets 0..10: costs 1,2,3,4,5,1,2,3,4,5 → mean 3.0.
        let targets: Vec<usize> = (0..10).collect();
        let avg = average_seek_cost(&ev, &targets).unwrap();
        assert!((avg - 3.0).abs() < 1e-9);
        assert_eq!(average_seek_cost(&ev, &[]).unwrap(), 0.0);
    }

    #[test]
    fn expected_cost_formula() {
        assert_eq!(expected_seek_cost(1), 1.0);
        assert_eq!(expected_seek_cost(15), 8.0);
        // Smaller GOP always seeks cheaper.
        assert!(expected_seek_cost(5) < expected_seek_cost(30));
    }

    #[test]
    fn all_intra_streams_seek_in_one_frame() {
        let ev = encoded(1, 8);
        let dec = Decoder::default();
        for target in 0..8 {
            let (_, stats) = seek(&dec, &ev, target).unwrap();
            assert_eq!(stats.frames_decoded, 1);
        }
    }

    #[test]
    fn cached_seek_is_bit_identical_to_direct() {
        let ev = encoded(4, 10);
        let id = VideoId::of(&ev);
        let dec = Decoder::default();
        let cache = GopCache::new(8);
        for target in 0..10 {
            let (direct, _) = seek(&dec, &ev, target).unwrap();
            let (cached, stats) = seek_cached(&dec, &ev, id, &cache, target).unwrap();
            assert_eq!(cached, direct, "target {target}");
            assert_eq!(stats.target, target);
            assert_eq!(stats.keyframe, (target / 4) * 4);
        }
    }

    #[test]
    fn warm_seeks_decode_nothing() {
        let ev = encoded(5, 10);
        let id = VideoId::of(&ev);
        let dec = Decoder::default();
        let cache = GopCache::new(8);
        // Cold pass: each GOP decodes fully, exactly once.
        let (_, cold) = seek_cached(&dec, &ev, id, &cache, 3).unwrap();
        assert_eq!(cold.frames_decoded, 5, "cold seek decodes the whole GOP");
        // Warm passes: any target in the resident GOP costs zero decodes.
        for target in 0..5 {
            let (_, warm) = seek_cached(&dec, &ev, id, &cache, target).unwrap();
            assert_eq!(warm.frames_decoded, 0, "target {target}");
            assert!(warm.frames_decoded < cold.frames_decoded);
        }
        assert_eq!(cache.stats().hits, 5);
    }

    #[test]
    fn disabled_cache_still_seeks_correctly() {
        let ev = encoded(4, 8);
        let id = VideoId::of(&ev);
        let dec = Decoder::default();
        let cache = GopCache::new(0);
        for target in [1usize, 6, 3] {
            let (direct, _) = seek(&dec, &ev, target).unwrap();
            let (cached, stats) = seek_cached(&dec, &ev, id, &cache, target).unwrap();
            assert_eq!(cached, direct);
            assert!(stats.frames_decoded >= 1, "capacity 0 always decodes");
        }
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn obs_seek_records_requests_and_walk_costs() {
        let ev = encoded(5, 10);
        let id = VideoId::of(&ev);
        let dec = Decoder::default();
        let cache = GopCache::new(8);
        let obs = Obs::recording();
        // Cold seek to frame 3 (walk decodes GOP of 5), warm seeks 0..5.
        for target in [3usize, 0, 1, 2, 3, 4] {
            let (frame, _) = seek_observed(&dec, &ev, id, &cache, target, &obs).unwrap();
            let (direct, _) = seek(&dec, &ev, target).unwrap();
            assert_eq!(frame, direct);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("seek.requests"), 6);
        let walk = snap.histogram("seek.gop_walk_frames").unwrap();
        assert_eq!(walk.count, 6);
        assert_eq!(walk.sum, 5, "one cold GOP decode, then all resident");
        let dist = snap.histogram("seek.keyframe_distance").unwrap();
        // Targets [3,0,1,2,3,4] sit 3,0,1,2,3,4 frames past keyframe 0.
        assert_eq!(dist.sum, 13);
    }

    #[test]
    fn cached_seek_out_of_range_errors() {
        let ev = encoded(4, 6);
        let cache = GopCache::new(4);
        let err = seek_cached(&Decoder::default(), &ev, VideoId::of(&ev), &cache, 6);
        assert!(err.is_err());
    }
}
