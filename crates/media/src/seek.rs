//! Random access into encoded video.
//!
//! Scenario switching — the heart of interactive video (paper §2.1:
//! "buttons and objects on the video frame can be triggered to change the
//! play sequence") — is a *seek* in codec terms: jump to the first frame
//! of the target segment. Its cost is the GOP walk from the preceding
//! keyframe; EXP-3 sweeps the keyframe interval against this cost.

use crate::codec::{Decoder, EncodedVideo};
use crate::frame::Frame;
use crate::Result;

/// Cost accounting for one seek.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeekStats {
    /// The requested frame.
    pub target: usize,
    /// The keyframe the decode started from.
    pub keyframe: usize,
    /// Frames decoded to satisfy the request (≥ 1).
    pub frames_decoded: usize,
}

/// Seeks to `index`, returning the decoded frame and its cost.
pub fn seek(decoder: &Decoder, video: &EncodedVideo, index: usize) -> Result<(Frame, SeekStats)> {
    let keyframe = video.keyframe_before(index)?;
    let (frame, frames_decoded) = decoder.decode_frame(video, index)?;
    Ok((frame, SeekStats { target: index, keyframe, frames_decoded }))
}

/// Average number of frames decoded per seek over the given targets.
pub fn average_seek_cost(video: &EncodedVideo, targets: &[usize]) -> Result<f64> {
    if targets.is_empty() {
        return Ok(0.0);
    }
    let mut total = 0usize;
    for &t in targets {
        let k = video.keyframe_before(t)?;
        total += t - k + 1;
    }
    Ok(total as f64 / targets.len() as f64)
}

/// Analytic expectation of the seek cost for uniform random targets within
/// a stream of keyframe interval `gop`: `(gop + 1) / 2` frames.
pub fn expected_seek_cost(gop: usize) -> f64 {
    (gop as f64 + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{EncodeConfig, Encoder};
    use crate::color::Rgb;
    use crate::synth::{FootageSpec, ShotSpec};
    use crate::timeline::FrameRate;

    fn encoded(gop: usize, frames: usize) -> EncodedVideo {
        let footage = FootageSpec {
            width: 24,
            height: 16,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(frames, Rgb::new(90, 140, 60))],
            noise_seed: 5,
        }
        .render()
        .unwrap();
        Encoder::new(EncodeConfig { gop, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap()
    }

    #[test]
    fn seek_returns_correct_frame_and_stats() {
        let ev = encoded(4, 10);
        let dec = Decoder::default();
        let all = dec.decode_all(&ev).unwrap();
        for target in 0..10 {
            let (frame, stats) = seek(&dec, &ev, target).unwrap();
            assert_eq!(frame, all.frames[target], "target {target}");
            assert_eq!(stats.target, target);
            assert_eq!(stats.keyframe, (target / 4) * 4);
            assert_eq!(stats.frames_decoded, target - stats.keyframe + 1);
        }
    }

    #[test]
    fn seek_out_of_range_errors() {
        let ev = encoded(4, 6);
        assert!(seek(&Decoder::default(), &ev, 6).is_err());
    }

    #[test]
    fn average_cost_matches_hand_computation() {
        let ev = encoded(5, 10);
        // Targets 0..10: costs 1,2,3,4,5,1,2,3,4,5 → mean 3.0.
        let targets: Vec<usize> = (0..10).collect();
        let avg = average_seek_cost(&ev, &targets).unwrap();
        assert!((avg - 3.0).abs() < 1e-9);
        assert_eq!(average_seek_cost(&ev, &[]).unwrap(), 0.0);
    }

    #[test]
    fn expected_cost_formula() {
        assert_eq!(expected_seek_cost(1), 1.0);
        assert_eq!(expected_seek_cost(15), 8.0);
        // Smaller GOP always seeks cheaper.
        assert!(expected_seek_cost(5) < expected_seek_cost(30));
    }

    #[test]
    fn all_intra_streams_seek_in_one_frame() {
        let ev = encoded(1, 8);
        let dec = Decoder::default();
        for target in 0..8 {
            let (_, stats) = seek(&dec, &ev, target).unwrap();
            assert_eq!(stats.frames_decoded, 1);
        }
    }
}
