//! Shot-boundary detection.
//!
//! The authoring tool's video import (paper §4.1: "video can be divided
//! into scenario components by the authoring tool") is implemented here:
//! per-frame colour histograms (optionally on 2× downsampled frames, and
//! computed in parallel), consecutive-frame distances, and a cut decision
//! rule that is either a fixed threshold or an adaptive local
//! mean + k·σ rule with a minimum shot length.
//!
//! [`score_detection`] compares detected cuts against the synthesiser's
//! ground truth, yielding precision/recall/F1 for EXP-1.

use crate::frame::Frame;
use crate::histogram::ColorHistogram;
use crate::parallel::parallel_map_indexed;
use crate::segment::SegmentTable;
use crate::Result;

/// Histogram distance metric used between consecutive frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistMetric {
    /// Histogram-intersection dissimilarity (robust, bounded).
    Intersection,
    /// Symmetric chi-square distance (more sensitive).
    ChiSquare,
}

/// Cut decision rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// A cut wherever the distance exceeds this constant.
    Fixed(f32),
    /// Adaptive rule: a cut where the distance exceeds
    /// `mean + k·σ` of the distances in a `window`-wide neighbourhood and
    /// also exceeds `floor` (guarding the all-static-footage case).
    Adaptive {
        /// Half-width, in frames, of the local statistics window.
        window: usize,
        /// Multiplier on the local standard deviation.
        k: f32,
        /// Absolute minimum distance for a cut.
        floor: f32,
    },
}

/// Configuration of the detector.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotDetectorConfig {
    /// Distance metric.
    pub metric: HistMetric,
    /// Decision rule.
    pub threshold: Threshold,
    /// Downsample frames 2× before histogramming (4× fewer pixels).
    pub downsample: bool,
    /// Minimum frames between accepted cuts (and before the first cut).
    pub min_shot_len: usize,
    /// Worker threads for histogram extraction (≤ 1 = sequential).
    pub threads: usize,
}

impl Default for ShotDetectorConfig {
    fn default() -> Self {
        ShotDetectorConfig {
            metric: HistMetric::Intersection,
            threshold: Threshold::Adaptive { window: 8, k: 3.0, floor: 0.18 },
            downsample: true,
            min_shot_len: 4,
            threads: 1,
        }
    }
}

/// A detected cut: the first frame of the new shot, with its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutScore {
    /// Index of the first frame of the new shot.
    pub frame: usize,
    /// Distance value that triggered the cut.
    pub score: f32,
}

/// The shot-boundary detector.
#[derive(Debug, Clone, Default)]
pub struct ShotDetector {
    config: ShotDetectorConfig,
}

impl ShotDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: ShotDetectorConfig) -> ShotDetector {
        ShotDetector { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ShotDetectorConfig {
        &self.config
    }

    /// Computes the distance between each consecutive frame pair;
    /// `result[i]` is the distance between frames `i` and `i+1`, so a cut
    /// *at* frame `i+1` corresponds to a spike at index `i`.
    pub fn distances(&self, frames: &[Frame]) -> Vec<f32> {
        if frames.len() < 2 {
            return Vec::new();
        }
        let cfg = &self.config;
        let hists: Vec<ColorHistogram> = parallel_map_indexed(frames.len(), cfg.threads, |i| {
            if cfg.downsample {
                ColorHistogram::of(&frames[i].downsample_2x())
            } else {
                ColorHistogram::of(&frames[i])
            }
        });
        let mut out = Vec::with_capacity(frames.len() - 1);
        for pair in hists.windows(2) {
            let d = match cfg.metric {
                HistMetric::Intersection => pair[0].intersection_distance(&pair[1]),
                HistMetric::ChiSquare => pair[0].chi_square_distance(&pair[1]),
            };
            out.push(d);
        }
        out
    }

    /// Detects cuts in the footage; returned positions are first-frames of
    /// new shots, strictly increasing, each at least `min_shot_len` frames
    /// after the previous boundary.
    pub fn detect(&self, frames: &[Frame]) -> Vec<CutScore> {
        let dist = self.distances(frames);
        self.decide(&dist)
    }

    /// Applies the decision rule to a precomputed distance sequence.
    pub fn decide(&self, dist: &[f32]) -> Vec<CutScore> {
        let min_len = self.config.min_shot_len.max(1);
        let mut cuts = Vec::new();
        let mut last_boundary = 0usize; // start of current shot
        for (i, &d) in dist.iter().enumerate() {
            let cut_frame = i + 1;
            if cut_frame < last_boundary + min_len {
                continue;
            }
            let fires = match self.config.threshold {
                Threshold::Fixed(t) => d > t,
                Threshold::Adaptive { window, k, floor } => {
                    if d <= floor {
                        false
                    } else {
                        let lo = i.saturating_sub(window);
                        let hi = (i + window + 1).min(dist.len());
                        // Exclude the candidate itself from the statistics.
                        let mut sum = 0f64;
                        let mut n = 0f64;
                        for (j, &v) in dist[lo..hi].iter().enumerate() {
                            if lo + j != i {
                                sum += v as f64;
                                n += 1.0;
                            }
                        }
                        if n == 0.0 {
                            d > floor
                        } else {
                            let mean = sum / n;
                            let mut var = 0f64;
                            for (j, &v) in dist[lo..hi].iter().enumerate() {
                                if lo + j != i {
                                    var += (v as f64 - mean) * (v as f64 - mean);
                                }
                            }
                            let std = (var / n).sqrt();
                            d as f64 > mean + k as f64 * std
                        }
                    }
                }
            };
            // Local-maximum test: suppress shoulders of the same spike.
            let is_local_max = (i == 0 || dist[i - 1] <= d)
                && (i + 1 >= dist.len() || dist[i + 1] < d);
            if fires && is_local_max {
                cuts.push(CutScore { frame: cut_frame, score: d });
                last_boundary = cut_frame;
            }
        }
        cuts
    }

    /// Runs detection and converts the result into a [`SegmentTable`]
    /// partitioning the whole video.
    pub fn segment(&self, frames: &[Frame]) -> Result<SegmentTable> {
        let cuts: Vec<usize> = self.detect(frames).iter().map(|c| c.frame).collect();
        SegmentTable::from_cuts(frames.len(), &cuts)
    }
}

/// Precision/recall of a detection run against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionScore {
    /// Detected cuts that match a true cut within the tolerance.
    pub true_positives: usize,
    /// Detected cuts with no matching true cut.
    pub false_positives: usize,
    /// True cuts with no matching detection.
    pub false_negatives: usize,
}

impl DetectionScore {
    /// Precision = TP / (TP + FP); 1.0 when nothing was detected.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when there was nothing to detect.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Greedily matches detected cuts to ground-truth cuts within ±`tolerance`
/// frames (each truth cut matches at most one detection).
pub fn score_detection(detected: &[usize], truth: &[usize], tolerance: usize) -> DetectionScore {
    let mut matched_truth = vec![false; truth.len()];
    let mut tp = 0usize;
    for &d in detected {
        let mut best: Option<(usize, usize)> = None; // (truth index, |d - t|)
        for (ti, &t) in truth.iter().enumerate() {
            if matched_truth[ti] {
                continue;
            }
            let gap = d.abs_diff(t);
            if gap <= tolerance && best.is_none_or(|(_, g)| gap < g) {
                best = Some((ti, gap));
            }
        }
        if let Some((ti, _)) = best {
            matched_truth[ti] = true;
            tp += 1;
        }
    }
    DetectionScore {
        true_positives: tp,
        false_positives: detected.len() - tp,
        false_negatives: matched_truth.iter().filter(|m| !**m).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;
    use crate::synth::{FootageSpec, ShotSpec};
    use crate::timeline::FrameRate;

    fn footage(shots: Vec<ShotSpec>) -> Vec<Frame> {
        FootageSpec {
            width: 48,
            height: 32,
            rate: FrameRate::FPS30,
            shots,
            noise_seed: 11,
        }
        .render()
        .unwrap()
        .frames
    }

    #[test]
    fn distances_spike_at_cut() {
        let frames = footage(vec![
            ShotSpec::plain(6, Rgb::new(220, 30, 30)),
            ShotSpec::plain(6, Rgb::new(30, 30, 220)),
        ]);
        let det = ShotDetector::default();
        let d = det.distances(&frames);
        assert_eq!(d.len(), 11);
        let (spike_idx, _) = d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(spike_idx, 5); // distance between frames 5 and 6
    }

    #[test]
    fn detects_clean_cuts_exactly() {
        let frames = footage(vec![
            ShotSpec::plain(10, Rgb::new(220, 40, 40)),
            ShotSpec::plain(8, Rgb::new(40, 220, 40)),
            ShotSpec::plain(12, Rgb::new(40, 40, 220)),
        ]);
        let det = ShotDetector::default();
        let cuts: Vec<usize> = det.detect(&frames).iter().map(|c| c.frame).collect();
        assert_eq!(cuts, vec![10, 18]);
    }

    #[test]
    fn fixed_threshold_mode_works() {
        let frames = footage(vec![
            ShotSpec::plain(6, Rgb::new(200, 0, 0)),
            ShotSpec::plain(6, Rgb::new(0, 0, 200)),
        ]);
        let det = ShotDetector::new(ShotDetectorConfig {
            threshold: Threshold::Fixed(0.5),
            ..Default::default()
        });
        let cuts: Vec<usize> = det.detect(&frames).iter().map(|c| c.frame).collect();
        assert_eq!(cuts, vec![6]);
    }

    #[test]
    fn min_shot_len_suppresses_early_and_rapid_cuts() {
        let frames = footage(vec![
            ShotSpec::plain(2, Rgb::new(200, 0, 0)),
            ShotSpec::plain(2, Rgb::new(0, 200, 0)),
            ShotSpec::plain(20, Rgb::new(0, 0, 200)),
        ]);
        let det = ShotDetector::new(ShotDetectorConfig {
            min_shot_len: 4,
            threshold: Threshold::Fixed(0.5),
            ..Default::default()
        });
        let cuts: Vec<usize> = det.detect(&frames).iter().map(|c| c.frame).collect();
        // The cut at frame 2 violates min length; the one at 4 is kept.
        assert_eq!(cuts, vec![4]);
    }

    #[test]
    fn no_cuts_in_static_footage_adaptive() {
        let frames = footage(vec![ShotSpec {
            frames: 30,
            background: Rgb::GREY,
            sprites: vec![],
            luma_drift: 20, // slow lighting change must NOT trigger
            noise: 2,
        }]);
        let det = ShotDetector::default();
        assert!(det.detect(&frames).is_empty());
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let frames = footage(vec![
            ShotSpec::plain(9, Rgb::new(200, 10, 10)),
            ShotSpec::plain(9, Rgb::new(10, 200, 10)),
            ShotSpec::plain(9, Rgb::new(10, 10, 200)),
        ]);
        let seq = ShotDetector::new(ShotDetectorConfig { threads: 1, ..Default::default() });
        let par = ShotDetector::new(ShotDetectorConfig { threads: 4, ..Default::default() });
        assert_eq!(seq.distances(&frames), par.distances(&frames));
        assert_eq!(seq.detect(&frames), par.detect(&frames));
    }

    #[test]
    fn segment_table_from_detection() {
        let frames = footage(vec![
            ShotSpec::plain(8, Rgb::new(200, 10, 10)),
            ShotSpec::plain(8, Rgb::new(10, 200, 10)),
        ]);
        let table = ShotDetector::default().segment(&frames).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.segments()[0].end, 8);
        assert_eq!(table.frame_count(), 16);
    }

    #[test]
    fn short_inputs_yield_nothing() {
        let det = ShotDetector::default();
        assert!(det.distances(&[]).is_empty());
        let one = footage(vec![ShotSpec::plain(1, Rgb::GREY)]);
        assert!(det.distances(&one).is_empty());
        assert!(det.detect(&one).is_empty());
    }

    #[test]
    fn scoring_counts_matches_with_tolerance() {
        let s = score_detection(&[10, 20, 31], &[10, 21, 40], 1);
        assert_eq!(s.true_positives, 2); // 10 exact, 20≈21; 31 vs 40 misses
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 1);
        assert!((s.precision() - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.recall() - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.f1() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn scoring_each_truth_matches_once() {
        // Two detections near one truth cut: only one TP.
        let s = score_detection(&[10, 11], &[10], 2);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 0);
    }

    #[test]
    fn scoring_empty_cases() {
        let s = score_detection(&[], &[], 2);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        let s = score_detection(&[], &[5], 2);
        assert_eq!(s.recall(), 0.0);
        let s = score_detection(&[5], &[], 2);
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn end_to_end_on_random_footage_high_f1() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2026);
        let spec = FootageSpec::random(&mut rng, 64, 48, 10, 8, 20);
        let footage = spec.render().unwrap();
        let det = ShotDetector::new(ShotDetectorConfig { threads: 2, ..Default::default() });
        let cuts: Vec<usize> = det.detect(&footage.frames).iter().map(|c| c.frame).collect();
        let score = score_detection(&cuts, &footage.cuts, 1);
        assert!(
            score.f1() > 0.8,
            "F1 too low: {:.2} (detected {:?}, truth {:?})",
            score.f1(),
            cuts,
            footage.cuts
        );
    }
}
