//! The `VGV` container format.
//!
//! A minimal but complete on-disk/wire format for encoded interactive
//! video: a fixed header, a frame table (kind + payload length per frame,
//! which doubles as the keyframe index needed for seeking), the
//! concatenated payloads, and an FNV-1a integrity checksum. All integers
//! are little-endian; parsing is defensive — any malformed input yields
//! [`MediaError::CorruptContainer`], never a panic or oversized
//! allocation.

use crate::codec::{EncodedFrame, EncodedVideo, Quality};
use crate::error::MediaError;
use crate::frame::MAX_DIM;
use crate::timeline::FrameRate;
use crate::Result;
use bytes::{Buf, BufMut};

/// File magic: "VGV1".
pub const MAGIC: [u8; 4] = *b"VGV1";

/// Hard cap on the declared frame count, to bound allocations when
/// parsing untrusted headers.
pub const MAX_FRAMES: u32 = 1 << 24;

/// Whether a frame is a keyframe, predicted, or a zero-cost copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Self-contained keyframe.
    Intra,
    /// Predicted from the previous frame.
    Inter,
    /// Identical (after quantisation) to the previous frame: no payload
    /// at all. Looping scenario video is full of these.
    Skip,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Intra => 0,
            FrameKind::Inter => 1,
            FrameKind::Skip => 2,
        }
    }

    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            0 => Some(FrameKind::Intra),
            1 => Some(FrameKind::Inter),
            2 => Some(FrameKind::Skip),
            _ => None,
        }
    }
}

/// Parsed VGV header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VgvHeader {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frame rate.
    pub rate: FrameRate,
    /// Quality preset of the stream.
    pub quality: Quality,
    /// Keyframe interval.
    pub gop: u32,
    /// Number of frames in the stream.
    pub frame_count: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a checksum over the concatenated payloads of `frames` — the same
/// hash [`ContainerWriter`] stores in the trailer, restricted to a frame
/// range. Delivery chunks and GOP integrity checks reuse this path so
/// every consumer agrees on what "intact payload" means.
pub fn payload_checksum(frames: &[EncodedFrame]) -> u64 {
    frames.iter().fold(FNV_OFFSET, |h, f| fnv1a(h, &f.data))
}

/// Per-GOP integrity checksums of one encoded stream, built from pristine
/// bytes and checked later — after transit, caching or storage — to
/// detect payload damage before it reaches the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GopChecksums {
    /// `(keyframe, checksum)` pairs, ascending by keyframe.
    sums: Vec<(usize, u64)>,
}

impl GopChecksums {
    /// Computes the checksum of every GOP in `video`.
    pub fn build(video: &EncodedVideo) -> GopChecksums {
        let keyframes = video.keyframes();
        let mut sums = Vec::with_capacity(keyframes.len());
        for (i, &start) in keyframes.iter().enumerate() {
            let end = keyframes.get(i + 1).copied().unwrap_or(video.len());
            sums.push((start, payload_checksum(&video.frames[start..end])));
        }
        GopChecksums { sums }
    }

    /// Number of GOPs covered.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Whether no GOPs are covered (empty stream).
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Verifies the GOP starting at `keyframe` against `video`'s current
    /// bytes.
    ///
    /// # Errors
    /// [`MediaError::CorruptGop`] when the payload no longer hashes to
    /// the recorded value, [`MediaError::FrameOutOfRange`] when
    /// `keyframe` does not start a recorded GOP.
    pub fn verify(&self, video: &EncodedVideo, keyframe: usize) -> Result<()> {
        let idx = self
            .sums
            .binary_search_by_key(&keyframe, |&(k, _)| k)
            .map_err(|_| MediaError::FrameOutOfRange { index: keyframe, len: video.len() })?;
        let (start, expect) = self.sums[idx];
        let end = self.sums.get(idx + 1).map(|&(k, _)| k).unwrap_or(video.len());
        if video.frames.len() < end {
            return Err(MediaError::CorruptGop { keyframe });
        }
        if payload_checksum(&video.frames[start..end]) != expect {
            return Err(MediaError::CorruptGop { keyframe });
        }
        Ok(())
    }
}

/// Serialises [`EncodedVideo`] streams into VGV bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContainerWriter;

impl ContainerWriter {
    /// Writes `video` to a fresh byte vector.
    pub fn write(video: &EncodedVideo) -> Vec<u8> {
        let table_len = video.frames.len() * 5;
        let payload_len: usize = video.frames.iter().map(|f| f.data.len()).sum();
        let mut out = Vec::with_capacity(4 + 25 + table_len + payload_len + 8);
        out.put_slice(&MAGIC);
        out.put_u32_le(video.width);
        out.put_u32_le(video.height);
        out.put_u32_le(video.rate.num());
        out.put_u32_le(video.rate.den());
        out.put_u8(video.quality.to_u8());
        out.put_u32_le(video.gop);
        out.put_u32_le(video.frames.len() as u32);
        for f in &video.frames {
            out.put_u8(f.kind.to_u8());
            out.put_u32_le(f.data.len() as u32);
        }
        let mut checksum = FNV_OFFSET;
        for f in &video.frames {
            out.put_slice(&f.data);
            checksum = fnv1a(checksum, &f.data);
        }
        out.put_u64_le(checksum);
        out
    }
}

/// Parses VGV bytes back into [`EncodedVideo`] streams.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContainerReader;

impl ContainerReader {
    /// Parses just the header (cheap; used by streaming clients to size
    /// their buffers before fetching payloads).
    pub fn read_header(mut buf: &[u8]) -> Result<VgvHeader> {
        let err = |msg: &str| MediaError::CorruptContainer(msg.into());
        if buf.remaining() < 4 + 4 + 4 + 4 + 4 + 1 + 4 + 4 {
            return Err(err("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(err("bad magic"));
        }
        let width = buf.get_u32_le();
        let height = buf.get_u32_le();
        if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
            return Err(err("unreasonable dimensions"));
        }
        let rate_num = buf.get_u32_le();
        let rate_den = buf.get_u32_le();
        let rate = FrameRate::new(rate_num, rate_den).ok_or_else(|| err("zero frame rate"))?;
        let quality = Quality::from_u8(buf.get_u8()).ok_or_else(|| err("unknown quality id"))?;
        let gop = buf.get_u32_le();
        if gop == 0 {
            return Err(err("zero gop"));
        }
        let frame_count = buf.get_u32_le();
        if frame_count > MAX_FRAMES {
            return Err(err("frame count exceeds limit"));
        }
        Ok(VgvHeader { width, height, rate, quality, gop, frame_count })
    }

    /// Parses a complete VGV stream, verifying the checksum.
    pub fn read(bytes: &[u8]) -> Result<EncodedVideo> {
        let err = |msg: &str| MediaError::CorruptContainer(msg.into());
        let header = Self::read_header(bytes)?;
        let mut buf = &bytes[29..]; // fixed header size
        let n = header.frame_count as usize;
        if buf.remaining() < n * 5 {
            return Err(err("truncated frame table"));
        }
        let mut kinds = Vec::with_capacity(n);
        let mut lens = Vec::with_capacity(n);
        let mut total: u64 = 0;
        for _ in 0..n {
            let kind = FrameKind::from_u8(buf.get_u8()).ok_or_else(|| err("bad frame kind"))?;
            let len = buf.get_u32_le();
            kinds.push(kind);
            lens.push(len as usize);
            total += len as u64;
        }
        if (buf.remaining() as u64) < total + 8 {
            return Err(err("truncated payloads"));
        }
        let mut frames = Vec::with_capacity(n);
        let mut checksum = FNV_OFFSET;
        for (kind, len) in kinds.into_iter().zip(lens) {
            let data = buf[..len].to_vec();
            checksum = fnv1a(checksum, &data);
            buf.advance(len);
            frames.push(EncodedFrame { kind, data });
        }
        let stored = buf.get_u64_le();
        if stored != checksum {
            return Err(err("checksum mismatch"));
        }
        if let Some(first) = frames.first() {
            if first.kind != FrameKind::Intra {
                return Err(err("stream does not start with a keyframe"));
            }
        }
        Ok(EncodedVideo {
            width: header.width,
            height: header.height,
            rate: header.rate,
            quality: header.quality,
            gop: header.gop,
            frames,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{EncodeConfig, Encoder};
    use crate::color::Rgb;
    use crate::synth::{FootageSpec, ShotSpec};

    fn encoded() -> EncodedVideo {
        let footage = FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(6, Rgb::new(120, 60, 30))],
            noise_seed: 1,
        }
        .render()
        .unwrap();
        Encoder::new(EncodeConfig { gop: 3, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ev = encoded();
        let bytes = ContainerWriter::write(&ev);
        let back = ContainerReader::read(&bytes).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn header_parses_alone() {
        let ev = encoded();
        let bytes = ContainerWriter::write(&ev);
        let h = ContainerReader::read_header(&bytes).unwrap();
        assert_eq!(h.width, 32);
        assert_eq!(h.height, 24);
        assert_eq!(h.frame_count, 6);
        assert_eq!(h.gop, 3);
        assert_eq!(h.quality, ev.quality);
        assert_eq!(h.rate, FrameRate::FPS30);
    }

    #[test]
    fn rejects_bad_magic() {
        let ev = encoded();
        let mut bytes = ContainerWriter::write(&ev);
        bytes[0] = b'X';
        assert!(ContainerReader::read(&bytes).is_err());
    }

    #[test]
    fn rejects_truncations_everywhere() {
        let ev = encoded();
        let bytes = ContainerWriter::write(&ev);
        // Every prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                ContainerReader::read(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn detects_payload_corruption() {
        let ev = encoded();
        let mut bytes = ContainerWriter::write(&ev);
        let n = bytes.len();
        bytes[n - 20] ^= 0xFF; // flip payload bits near the end
        assert!(matches!(
            ContainerReader::read(&bytes),
            Err(MediaError::CorruptContainer(msg)) if msg.contains("checksum")
        ));
    }

    #[test]
    fn rejects_absurd_header_values() {
        let ev = encoded();
        let mut bytes = ContainerWriter::write(&ev);
        // width = 0
        bytes[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(ContainerReader::read(&bytes).is_err());

        let mut bytes = ContainerWriter::write(&ev);
        // frame_count absurdly large
        bytes[25..29].copy_from_slice(&(MAX_FRAMES + 1).to_le_bytes());
        assert!(ContainerReader::read(&bytes).is_err());

        let mut bytes = ContainerWriter::write(&ev);
        // quality id unknown
        bytes[20] = 99;
        assert!(ContainerReader::read(&bytes).is_err());
    }

    #[test]
    fn rejects_stream_not_starting_with_keyframe() {
        let ev = encoded();
        let mut bytes = ContainerWriter::write(&ev);
        // Frame table starts at offset 29; first byte is frame 0's kind.
        bytes[29] = 1; // claim Inter
        // Fix the checksum path: kinds are not checksummed, so only the
        // keyframe validation should trip.
        assert!(matches!(
            ContainerReader::read(&bytes),
            Err(MediaError::CorruptContainer(msg)) if msg.contains("keyframe")
        ));
    }

    #[test]
    fn empty_stream_roundtrips() {
        let ev = EncodedVideo {
            width: 16,
            height: 16,
            rate: FrameRate::FPS24,
            quality: Quality::Medium,
            gop: 10,
            frames: Vec::new(),
        };
        let bytes = ContainerWriter::write(&ev);
        let back = ContainerReader::read(&bytes).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn gop_checksums_verify_pristine_and_flag_damage() {
        let ev = encoded(); // gop 3, 6 frames → 2 GOPs
        let sums = GopChecksums::build(&ev);
        assert_eq!(sums.len(), 2);
        assert!(!sums.is_empty());
        assert!(sums.verify(&ev, 0).is_ok());
        assert!(sums.verify(&ev, 3).is_ok());
        // Non-keyframe index is rejected.
        assert!(matches!(
            sums.verify(&ev, 1),
            Err(MediaError::FrameOutOfRange { .. })
        ));
        // Flip a payload bit in the second GOP: only it reports damage.
        let mut bad = ev.clone();
        let victim = (3..6).find(|&i| !bad.frames[i].data.is_empty()).unwrap();
        bad.frames[victim].data[0] ^= 0x40;
        assert!(sums.verify(&bad, 0).is_ok());
        assert!(matches!(
            sums.verify(&bad, 3),
            Err(MediaError::CorruptGop { keyframe: 3 })
        ));
    }

    #[test]
    fn payload_checksum_matches_container_trailer() {
        let ev = encoded();
        let bytes = ContainerWriter::write(&ev);
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        assert_eq!(payload_checksum(&ev.frames), stored);
    }

    #[test]
    fn decoded_roundtrip_through_container() {
        use crate::codec::Decoder;
        let ev = encoded();
        let bytes = ContainerWriter::write(&ev);
        let back = ContainerReader::read(&bytes).unwrap();
        let a = Decoder::default().decode_all(&ev).unwrap();
        let b = Decoder::default().decode_all(&back).unwrap();
        assert_eq!(a.frames, b.frames);
    }
}
