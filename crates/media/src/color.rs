//! Colour types and conversions used by frames, the synthesiser and the
//! runtime's overlay compositor.

/// An 8-bit-per-channel RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red channel, 0–255.
    pub r: u8,
    /// Green channel, 0–255.
    pub g: u8,
    /// Blue channel, 0–255.
    pub b: u8,
}

impl Rgb {
    /// Pure black.
    pub const BLACK: Rgb = Rgb::new(0, 0, 0);
    /// Pure white.
    pub const WHITE: Rgb = Rgb::new(255, 255, 255);
    /// Mid grey.
    pub const GREY: Rgb = Rgb::new(128, 128, 128);
    /// Pure red.
    pub const RED: Rgb = Rgb::new(255, 0, 0);
    /// Pure green.
    pub const GREEN: Rgb = Rgb::new(0, 255, 0);
    /// Pure blue.
    pub const BLUE: Rgb = Rgb::new(0, 0, 255);

    /// Creates a colour from components.
    pub const fn new(r: u8, g: u8, b: u8) -> Rgb {
        Rgb { r, g, b }
    }

    /// Rec. 601 luma of the colour, 0–255.
    pub fn luma(self) -> u8 {
        // Integer approximation of 0.299 R + 0.587 G + 0.114 B.
        ((77 * self.r as u32 + 150 * self.g as u32 + 29 * self.b as u32) >> 8) as u8
    }

    /// Linearly interpolates between `self` (t = 0) and `other` (t = 1).
    ///
    /// `t` is clamped to `[0, 1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 { (a as f32 + (b as f32 - a as f32) * t).round() as u8 };
        Rgb::new(mix(self.r, other.r), mix(self.g, other.g), mix(self.b, other.b))
    }

    /// Brightens (positive `delta`) or darkens (negative) all channels,
    /// saturating at the channel bounds.
    pub fn shifted(self, delta: i16) -> Rgb {
        let shift = |c: u8| -> u8 { (c as i16 + delta).clamp(0, 255) as u8 };
        Rgb::new(shift(self.r), shift(self.g), shift(self.b))
    }

    /// Squared Euclidean distance in RGB space; cheap dissimilarity metric.
    pub fn dist_sq(self, other: Rgb) -> u32 {
        let d = |a: u8, b: u8| -> u32 {
            let diff = a as i32 - b as i32;
            (diff * diff) as u32
        };
        d(self.r, other.r) + d(self.g, other.g) + d(self.b, other.b)
    }

    /// Deterministically maps an arbitrary seed to a saturated palette
    /// colour; used by the synthesiser to pick distinct shot backdrops.
    pub fn from_seed(seed: u64) -> Rgb {
        // Split the seed into hue-ish components with a multiplicative hash.
        let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let r = (h >> 16) as u8;
        let g = (h >> 32) as u8;
        let b = (h >> 48) as u8;
        // Keep it away from near-black so luma-based metrics stay stable.
        Rgb::new(r | 0x20, g | 0x20, b | 0x20)
    }
}

impl From<(u8, u8, u8)> for Rgb {
    fn from((r, g, b): (u8, u8, u8)) -> Rgb {
        Rgb::new(r, g, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_matches_extremes() {
        assert_eq!(Rgb::BLACK.luma(), 0);
        // The integer approximation of white lands at 255 within 1 unit.
        assert!(Rgb::WHITE.luma() >= 254);
        assert!(Rgb::GREEN.luma() > Rgb::BLUE.luma());
        assert!(Rgb::GREEN.luma() > Rgb::RED.luma());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Rgb::new(0, 100, 200);
        let b = Rgb::new(200, 100, 0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Rgb::new(100, 100, 100));
        // Out-of-range t clamps.
        assert_eq!(a.lerp(b, -3.0), a);
        assert_eq!(a.lerp(b, 7.0), b);
    }

    #[test]
    fn shifted_saturates() {
        assert_eq!(Rgb::WHITE.shifted(40), Rgb::WHITE);
        assert_eq!(Rgb::BLACK.shifted(-40), Rgb::BLACK);
        assert_eq!(Rgb::GREY.shifted(10), Rgb::new(138, 138, 138));
        assert_eq!(Rgb::GREY.shifted(-10), Rgb::new(118, 118, 118));
    }

    #[test]
    fn dist_sq_is_symmetric_and_zero_on_equal() {
        let a = Rgb::new(10, 20, 30);
        let b = Rgb::new(40, 10, 90);
        assert_eq!(a.dist_sq(a), 0);
        assert_eq!(a.dist_sq(b), b.dist_sq(a));
        assert_eq!(a.dist_sq(b), 30 * 30 + 10 * 10 + 60 * 60);
    }

    #[test]
    fn from_seed_is_deterministic_and_spreads() {
        assert_eq!(Rgb::from_seed(42), Rgb::from_seed(42));
        // Different seeds should essentially always differ.
        let distinct = (0..64u64)
            .map(Rgb::from_seed)
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 48, "palette collapsed: {}", distinct.len());
    }

    #[test]
    fn from_tuple() {
        let c: Rgb = (1, 2, 3).into();
        assert_eq!(c, Rgb::new(1, 2, 3));
    }
}
