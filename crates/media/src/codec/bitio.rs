//! Bit-level I/O and exponential-Golomb entropy codes.
//!
//! The codec's entropy layer: a big-endian bit writer/reader plus the
//! unsigned (`ue`) and signed (`se`) exp-Golomb codes familiar from
//! H.264-era bitstreams. Golomb codes give short words to the small
//! residuals the predictor leaves behind, with no code tables to ship.

use crate::error::MediaError;
use crate::Result;

/// Accumulates bits MSB-first into a byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0–7).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Appends the low `n` bits of `value`, most significant first.
    pub fn put_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        let mut n = n as usize;
        // Top up a partially filled final byte (at most 7 iterations),
        // after which the stream is byte-aligned.
        while n > 0 && self.used != 0 {
            n -= 1;
            self.put_bit((value >> n) & 1 == 1);
        }
        // Aligned: emit whole bytes directly.
        while n >= 8 {
            n -= 8;
            self.bytes.push((value >> n) as u8);
        }
        // Remaining tail bits open a fresh byte, MSB-first.
        if n > 0 {
            let tail = (value & ((1 << n) - 1)) as u8;
            self.bytes.push(tail << (8 - n));
            self.used = n as u8;
        }
    }

    /// Unsigned exp-Golomb: `v` → `leading_zeros(len(v+1)-1) ++ bin(v+1)`.
    pub fn put_ue(&mut self, v: u64) {
        let x = v + 1;
        let bits = 64 - x.leading_zeros() as u8; // length of x in bits, ≥ 1
        self.put_bits(0, bits - 1);
        self.put_bits(x, bits);
    }

    /// Signed exp-Golomb via the standard zig-zag mapping
    /// (0, 1, −1, 2, −2, …).
    pub fn put_se(&mut self, v: i64) {
        let mapped = if v <= 0 { (-v as u64) * 2 } else { (v as u64) * 2 - 1 };
        self.put_ue(mapped);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Finishes the stream (zero-padding the final byte) and returns it.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
///
/// Internally keeps a left-aligned 64-bit cache of upcoming bits
/// (refilled bytewise), so the per-code cost of the exp-Golomb hot
/// path is a `leading_zeros` and two shifts rather than per-bit byte
/// indexing. Invariants: `cache` holds the next `cached` stream bits
/// in its high end with zeros below, and `pos + cached` is always a
/// whole number of consumed-or-cached bytes.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Bits consumed so far (the public cursor).
    pos: usize,
    /// Upcoming bits, left-aligned (MSB is the next bit).
    cache: u64,
    /// Number of valid bits in `cache`.
    cached: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0, cache: 0, cached: 0 }
    }

    /// Tops up the cache from the byte stream (whole bytes only, so the
    /// byte-alignment invariant holds). Away from the end of the slice
    /// this is one unaligned 8-byte load; the final few bytes trickle
    /// in one at a time.
    #[inline]
    fn refill(&mut self) {
        let mut next = (self.pos + self.cached as usize) / 8;
        if next + 8 <= self.bytes.len() {
            let w =
                u64::from_be_bytes(self.bytes[next..next + 8].try_into().expect("8-byte window"));
            if self.cached == 0 {
                self.cache = w;
                self.cached = 64;
            } else {
                // `cached | 56` adds the most whole bytes that fit
                // (0–7 of the 8 loaded); the mask clears the partial
                // byte the shift smeared below them.
                let new = self.cached | 56;
                self.cache = (self.cache | (w >> self.cached)) & !(u64::MAX >> new);
                self.cached = new;
            }
            return;
        }
        while self.cached <= 56 && next < self.bytes.len() {
            self.cache |= u64::from(self.bytes[next]) << (56 - self.cached);
            self.cached += 8;
            next += 1;
        }
    }

    /// Drops the top `n` bits of the cache (`n` ≤ `cached`).
    #[inline]
    fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.cached);
        self.cache = if n == 64 { 0 } else { self.cache << n };
        self.cached -= n;
        self.pos += n as usize;
    }

    /// Reads one bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool> {
        if self.cached == 0 {
            self.refill();
            if self.cached == 0 {
                return Err(MediaError::CorruptBitstream("bit read past end".into()));
            }
        }
        let bit = self.cache >> 63 == 1;
        self.consume(1);
        Ok(bit)
    }

    /// Reads `n` bits, MSB first.
    pub fn get_bits(&mut self, n: u8) -> Result<u64> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Ok(0);
        }
        if self.pos + n as usize > self.bytes.len() * 8 {
            return Err(MediaError::CorruptBitstream("bit read past end".into()));
        }
        let mut v = 0u64;
        let mut need = u32::from(n);
        while need > 0 {
            if self.cached == 0 {
                self.refill();
            }
            let take = need.min(self.cached);
            let chunk = if take == 64 { self.cache } else { self.cache >> (64 - take) };
            v = if take == 64 { chunk } else { (v << take) | chunk };
            self.consume(take);
            need -= take;
        }
        Ok(v)
    }

    /// Reads an unsigned exp-Golomb code.
    pub fn get_ue(&mut self) -> Result<u64> {
        // 32 cached bits cover every code up to `ue(65534)` — far past
        // the residual runs the codec writes — so most calls skip the
        // refill entirely.
        if self.cached < 32 {
            self.refill();
        }
        let lz = if self.cache == 0 { 64 } else { self.cache.leading_zeros() };
        if lz >= self.cached {
            // Every cached bit is zero: the prefix outruns the window
            // (over-long prefix or truncated stream) — take the bitwise
            // path, which owns those corruption checks.
            return self.get_ue_bitwise();
        }
        let zeros = lz;
        let code_len = 2 * zeros + 1;
        if code_len <= self.cached {
            let x = self.cache >> (64 - code_len);
            self.consume(code_len);
            return Ok(x - 1);
        }
        // Prefix fits in the cache but the tail crosses the window edge.
        self.consume(zeros + 1);
        let tail = self.get_bits(zeros as u8)?;
        Ok(((1u64 << zeros) | tail) - 1)
    }

    /// Bit-at-a-time `ue` decode: the fallback for codes whose zero
    /// prefix outruns the 64-bit peek window, and the sole place the
    /// over-long-prefix corruption check lives.
    fn get_ue_bitwise(&mut self) -> Result<u64> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 63 {
                return Err(MediaError::CorruptBitstream("ue prefix too long".into()));
            }
        }
        let tail = self.get_bits(zeros)?;
        let x = (1u64 << zeros) | tail;
        Ok(x - 1)
    }

    /// Bits left between the cursor and the end of the byte slice.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Reads a signed exp-Golomb code.
    pub fn get_se(&mut self) -> Result<i64> {
        let mapped = self.get_ue()?;
        if mapped & 1 == 0 {
            Ok(-((mapped >> 1) as i64))
        } else {
            Ok(((mapped >> 1) + 1) as i64)
        }
    }

    /// Current bit position (for diagnostics).
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit().unwrap(), b);
        }
    }

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101_1001_0110, 11);
        w.put_bits(0x3FF, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(11).unwrap(), 0b101_1001_0110);
        assert_eq!(r.get_bits(10).unwrap(), 0x3FF);
    }

    #[test]
    fn ue_known_codewords() {
        // Classic table: 0→1, 1→010, 2→011, 3→00100 …
        let mut w = BitWriter::new();
        w.put_ue(0);
        assert_eq!(w.bit_len(), 1);
        let mut w = BitWriter::new();
        w.put_ue(1);
        assert_eq!(w.bit_len(), 3);
        let mut w = BitWriter::new();
        w.put_ue(3);
        assert_eq!(w.bit_len(), 5);
    }

    #[test]
    fn ue_roundtrip_many() {
        let values = [0u64, 1, 2, 3, 7, 8, 100, 255, 65535, 1 << 40];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip_many() {
        let values = [0i64, 1, -1, 2, -2, 127, -128, 255, -255, 10_000, -10_000];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_se().unwrap(), v);
        }
    }

    #[test]
    fn se_zigzag_order() {
        // se(0) must be the shortest code.
        let len = |v: i64| {
            let mut w = BitWriter::new();
            w.put_se(v);
            w.bit_len()
        };
        assert_eq!(len(0), 1);
        assert!(len(1) <= len(-1));
        assert!(len(-1) < len(2));
    }

    #[test]
    fn reader_errors_past_end() {
        let mut r = BitReader::new(&[0b1000_0000]);
        for _ in 0..8 {
            r.get_bit().unwrap();
        }
        assert!(r.get_bit().is_err());
        let mut r = BitReader::new(&[]);
        assert!(r.get_ue().is_err());
    }

    #[test]
    fn corrupt_ue_prefix_detected() {
        // 16 bytes of zeros: prefix exceeds any sane length.
        let zeros = [0u8; 16];
        let mut r = BitReader::new(&zeros);
        assert!(r.get_ue().is_err());
    }
}
