//! A toy but structurally honest video codec.
//!
//! The paper's platform rides on 2007-era OS codecs; this reproduction
//! implements its own so the whole pipeline is self-contained (see
//! `DESIGN.md`). The design mirrors the classic hybrid codec structure:
//!
//! * **I-frames** — spatial prediction (left/top neighbour on the
//!   *reconstructed* plane), quantisation, zero-run RLE, exp-Golomb
//!   entropy coding.
//! * **P-frames** — 16×16 full-search block motion estimation on luma,
//!   motion-compensated residuals per RGB plane, same quantise/RLE/Golomb
//!   back end. References are always *reconstructed* frames, so encoder
//!   and decoder never drift.
//! * **GOPs** — a keyframe every `gop` frames. GOPs are independent, which
//!   both bounds seek cost (see [`mod@crate::seek`]) and makes encode/decode
//!   embarrassingly parallel across GOPs.

pub mod bitio;
pub mod plane;

use crate::container::FrameKind;
use crate::error::MediaError;
use crate::frame::Frame;
use crate::parallel::parallel_map_indexed;
use crate::timeline::FrameRate;
use crate::Result;
use bitio::{BitReader, BitWriter};
use plane::Plane;

/// Macroblock edge for motion estimation.
const MB: u32 = 16;

/// Quantiser presets. Higher compression ⇔ lower fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quality {
    /// Quantiser step 1 — bit-exact reconstruction.
    Lossless,
    /// Quantiser step 2.
    High,
    /// Quantiser step 4.
    Medium,
    /// Quantiser step 8.
    Low,
}

impl Quality {
    /// The quantiser step.
    pub fn qstep(self) -> i64 {
        match self {
            Quality::Lossless => 1,
            Quality::High => 2,
            Quality::Medium => 4,
            Quality::Low => 8,
        }
    }

    /// Stable wire id for the container header.
    pub fn to_u8(self) -> u8 {
        match self {
            Quality::Lossless => 0,
            Quality::High => 1,
            Quality::Medium => 2,
            Quality::Low => 3,
        }
    }

    /// Parses a wire id.
    pub fn from_u8(v: u8) -> Option<Quality> {
        match v {
            0 => Some(Quality::Lossless),
            1 => Some(Quality::High),
            2 => Some(Quality::Medium),
            3 => Some(Quality::Low),
            _ => None,
        }
    }

    /// All presets, for sweeps.
    pub fn all() -> [Quality; 4] {
        [Quality::Lossless, Quality::High, Quality::Medium, Quality::Low]
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeConfig {
    /// Quantiser preset.
    pub quality: Quality,
    /// Keyframe interval in frames (≥ 1; 1 = all-intra).
    pub gop: usize,
    /// Worker threads for GOP-parallel encoding (≤ 1 = sequential).
    pub threads: usize,
    /// Motion search range in pixels (full search over ±range).
    pub search_range: u8,
}

impl Default for EncodeConfig {
    fn default() -> Self {
        EncodeConfig { quality: Quality::High, gop: 15, threads: 1, search_range: 7 }
    }
}

/// One encoded frame: its kind plus its bitstream payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Intra (keyframe), inter (predicted), or skip (copy).
    pub kind: FrameKind,
    /// Entropy-coded payload.
    pub data: Vec<u8>,
}

/// A fully encoded video, the in-memory form of a `VGV` file.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedVideo {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frame rate.
    pub rate: FrameRate,
    /// Quality the stream was encoded at.
    pub quality: Quality,
    /// Keyframe interval used by the encoder.
    pub gop: u32,
    /// The encoded frames in presentation order.
    pub frames: Vec<EncodedFrame>,
}

impl EncodedVideo {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the stream holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total payload bytes across all frames (excludes container framing).
    pub fn payload_bytes(&self) -> usize {
        self.frames.iter().map(|f| f.data.len()).sum()
    }

    /// Size of the raw RGB source this stream represents.
    pub fn raw_bytes(&self) -> usize {
        (self.width * self.height * 3) as usize * self.frames.len()
    }

    /// Compression ratio raw/encoded (higher is better).
    pub fn compression_ratio(&self) -> f64 {
        let payload = self.payload_bytes();
        if payload == 0 {
            0.0
        } else {
            self.raw_bytes() as f64 / payload as f64
        }
    }

    /// Index of the nearest keyframe at or before `index`.
    pub fn keyframe_before(&self, index: usize) -> Result<usize> {
        if index >= self.frames.len() {
            return Err(MediaError::FrameOutOfRange { index, len: self.frames.len() });
        }
        let mut k = index;
        loop {
            if self.frames[k].kind == FrameKind::Intra {
                return Ok(k);
            }
            if k == 0 {
                return Err(MediaError::CorruptBitstream(
                    "stream does not start with a keyframe".into(),
                ));
            }
            k -= 1;
        }
    }

    /// Start indices of every GOP (i.e. every keyframe position).
    pub fn keyframes(&self) -> Vec<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.kind == FrameKind::Intra)
            .map(|(i, _)| i)
            .collect()
    }

    /// One past the last frame of the GOP starting at `keyframe`: the
    /// next keyframe's index, or the stream length for the final GOP.
    /// Scans forward only, so it is cheap for the per-GOP hot paths
    /// (playback, seeking, cache fills) that would otherwise rebuild the
    /// whole keyframe table per lookup.
    pub fn gop_end(&self, keyframe: usize) -> usize {
        self.frames[keyframe + 1..]
            .iter()
            .position(|f| f.kind == FrameKind::Intra)
            .map(|off| keyframe + 1 + off)
            .unwrap_or(self.frames.len())
    }
}

/// A decoded video: frames plus timing.
#[derive(Debug, Clone)]
pub struct DecodedVideo {
    /// Decoded frames in presentation order.
    pub frames: Vec<Frame>,
    /// Frame rate carried over from the stream.
    pub rate: FrameRate,
}

#[inline]
fn quantize(v: i64, q: i64) -> i64 {
    if q == 1 {
        v
    } else if v >= 0 {
        (v + q / 2) / q
    } else {
        -((-v + q / 2) / q)
    }
}

/// Zero-run RLE + Golomb encoding of a residual sequence.
fn write_residuals(w: &mut BitWriter, residuals: &[i64]) {
    let n = residuals.len();
    let mut pos = 0usize;
    while pos < n {
        let mut run = 0usize;
        while pos + run < n && residuals[pos + run] == 0 {
            run += 1;
        }
        w.put_ue(run as u64);
        if pos + run < n {
            w.put_se(residuals[pos + run]);
            pos += run + 1;
        } else {
            pos = n;
        }
    }
}

/// Inverse of [`write_residuals`], in sparse `(index, value)` form —
/// the natural shape of the zero-run RLE. Decoders treat the zero runs
/// between entries as whole spans (prediction pass-through) instead of
/// doing per-sample `pred + 0` arithmetic on a dense buffer.
fn read_residuals_sparse(r: &mut BitReader<'_>, n: usize) -> Result<Vec<(usize, i64)>> {
    // Each token costs ≥ 4 bits on the wire (run `ue` + value `se`), so
    // remaining_bits/4 caps the token count — a tight-enough hint to
    // avoid growth reallocations without overcommitting.
    let mut out = Vec::with_capacity(n.min(r.remaining_bits() / 4 + 1));
    let mut pos = 0usize;
    while pos < n {
        let run = r.get_ue()? as usize;
        if run > n - pos {
            return Err(MediaError::CorruptBitstream(format!(
                "zero run {run} exceeds remaining {} samples",
                n - pos
            )));
        }
        pos += run;
        if pos < n {
            out.push((pos, r.get_se()?));
            pos += 1;
        }
    }
    Ok(out)
}

/// Dense form of [`read_residuals_sparse`] (round-trip tests only).
#[cfg(test)]
fn read_residuals(r: &mut BitReader<'_>, n: usize) -> Result<Vec<i64>> {
    let mut out = vec![0i64; n];
    for (pos, val) in read_residuals_sparse(r, n)? {
        out[pos] = val;
    }
    Ok(out)
}

/// Intra-codes one plane: scan-order residuals against the reconstructed
/// left/top neighbour. Returns the reconstructed plane.
///
/// Runs on the raw sample buffer (the prediction needs only `buf[i-1]` /
/// `buf[i-stride]`), so the scan is index arithmetic instead of
/// per-pixel coordinate accessors; the reconstruction is wrapped into a
/// [`Plane`] once at the end.
fn encode_plane_intra(w: &mut BitWriter, src: &Plane, q: i64) -> Plane {
    let (pw, ph) = (src.width(), src.height());
    let n = (pw * ph) as usize;
    let stride = pw as usize;
    let sdata = src.data();
    let mut recon = vec![0u8; n];
    let mut residuals = Vec::with_capacity(n);
    for i in 0..n {
        let pred = intra_pred(&recon, i, stride);
        let res = sdata[i] as i64 - pred;
        let qres = quantize(res, q);
        residuals.push(qres);
        recon[i] = (pred + qres * q).clamp(0, 255) as u8;
    }
    write_residuals(w, &residuals);
    Plane::from_raw(pw, ph, recon)
}

fn decode_plane_intra(r: &mut BitReader<'_>, pw: u32, ph: u32, q: i64) -> Result<Plane> {
    let n = (pw * ph) as usize;
    let stride = pw as usize;
    let sparse = read_residuals_sparse(r, n)?;
    let mut recon = vec![0u8; n];
    let mut next = 0usize;
    for &(pos, val) in &sparse {
        fill_intra_run(&mut recon, next, pos, stride);
        let pred = intra_pred(&recon, pos, stride);
        recon[pos] = (pred + val * q).clamp(0, 255) as u8;
        next = pos + 1;
    }
    fill_intra_run(&mut recon, next, n, stride);
    Ok(Plane::from_raw(pw, ph, recon))
}

/// Reconstructs the zero-residual span `[from, to)`: each sample equals
/// its prediction exactly (`clamp(pred + 0)` of an in-range neighbour),
/// so left-prediction propagates one constant along each row and only
/// the row-start sample looks up its above neighbour.
fn fill_intra_run(recon: &mut [u8], from: usize, to: usize, stride: usize) {
    let mut i = from;
    while i < to {
        if i.is_multiple_of(stride) {
            recon[i] = if i >= stride { recon[i - stride] } else { 128 };
            i += 1;
        } else {
            let row_end = (i / stride + 1) * stride;
            let end = to.min(row_end);
            let v = recon[i - 1];
            recon[i..end].fill(v);
            i = end;
        }
    }
}

/// Left neighbour, else above neighbour, else mid-grey — on the raw
/// scan-order buffer (`i % stride == 0` is the left edge, `i < stride`
/// the top row).
#[inline]
fn intra_pred(recon: &[u8], i: usize, stride: usize) -> i64 {
    if !i.is_multiple_of(stride) {
        recon[i - 1] as i64
    } else if i >= stride {
        recon[i - stride] as i64
    } else {
        128
    }
}

/// Motion-vector grid dimensions for a frame.
fn mb_grid(width: u32, height: u32) -> (u32, u32) {
    (width.div_ceil(MB), height.div_ceil(MB))
}

/// Full-search motion estimation on luma; one vector per macroblock.
fn motion_search(cur: &Plane, reference: &Plane, range: u8) -> Vec<(i8, i8)> {
    let (cols, rows) = mb_grid(cur.width(), cur.height());
    let r = range as i64;
    let mut mvs = Vec::with_capacity((cols * rows) as usize);
    for my in 0..rows {
        for mx in 0..cols {
            let x = mx * MB;
            let y = my * MB;
            let bw = MB.min(cur.width() - x);
            let bh = MB.min(cur.height() - y);
            // Zero vector first: it is the overwhelmingly common winner and
            // seeds the early-exit bound.
            let mut best = cur.block_sad(reference, x, y, bw, bh, 0, 0, u64::MAX);
            let mut best_mv = (0i8, 0i8);
            'search: for dy in -r..=r {
                for dx in -r..=r {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    if best == 0 {
                        break 'search;
                    }
                    let sad = cur.block_sad(reference, x, y, bw, bh, dx, dy, best);
                    if sad < best {
                        best = sad;
                        best_mv = (dx as i8, dy as i8);
                    }
                }
            }
            mvs.push(best_mv);
        }
    }
    mvs
}

/// Motion-compensated prediction samples for the row `y`, span
/// `[x0, x1)`, under motion vector `(dx, dy)` with clamped sampling —
/// appended to `pred_row`. The clamped source row is computed once per
/// span; fully in-bounds spans (the overwhelming majority) are a plain
/// slice copy, edge spans clamp per sample.
// Innermost prediction loop; discrete coordinates beat a geometry
// struct per span, as in `Plane::block_sad`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn predict_span(
    pred_row: &mut Vec<u8>,
    rdata: &[u8],
    pw: u32,
    ph: u32,
    y: u32,
    x0: u32,
    x1: u32,
    dx: i64,
    dy: i64,
) {
    let stride = pw as usize;
    let ry = (y as i64 + dy).clamp(0, ph as i64 - 1) as usize;
    let rrow = &rdata[ry * stride..ry * stride + stride];
    if x0 as i64 + dx >= 0 && x1 as i64 + dx <= pw as i64 {
        let r0 = (x0 as i64 + dx) as usize;
        pred_row.extend_from_slice(&rrow[r0..r0 + (x1 - x0) as usize]);
    } else {
        for x in x0..x1 {
            let rx = (x as i64 + dx).clamp(0, pw as i64 - 1) as usize;
            pred_row.push(rrow[rx]);
        }
    }
}

/// Appends the motion-compensated prediction for the whole pixel row
/// `y` to `dst`, coalescing adjacent macroblocks that share a motion
/// vector into one [`predict_span`] call (static regions make runs of
/// equal vectors, so most rows collapse to a handful of long copies).
/// `mvs_row` holds the row's per-macroblock vectors, left to right.
#[inline]
fn predict_mb_row(dst: &mut Vec<u8>, rdata: &[u8], pw: u32, ph: u32, y: u32, mvs_row: &[(i8, i8)]) {
    let cols = mvs_row.len();
    let mut col = 0usize;
    while col < cols {
        let mv = mvs_row[col];
        let x0 = col as u32 * MB;
        col += 1;
        while col < cols && mvs_row[col] == mv {
            col += 1;
        }
        let x1 = (col as u32 * MB).min(pw);
        predict_span(dst, rdata, pw, ph, y, x0, x1, mv.0 as i64, mv.1 as i64);
    }
}

/// Inter-codes one plane given per-macroblock motion vectors.
/// Returns the reconstructed plane.
fn encode_plane_inter(
    w: &mut BitWriter,
    src: &Plane,
    reference: &Plane,
    mvs: &[(i8, i8)],
    q: i64,
) -> Plane {
    let (pw, ph) = (src.width(), src.height());
    let (cols, _) = mb_grid(pw, ph);
    let n = (pw * ph) as usize;
    let stride = pw as usize;
    let sdata = src.data();
    let rdata = reference.data();
    let mut recon = vec![0u8; n];
    let mut residuals = Vec::with_capacity(n);
    let mut pred_row = Vec::with_capacity(stride);
    for y in 0..ph {
        pred_row.clear();
        let mb_row = ((y / MB) * cols) as usize;
        predict_mb_row(&mut pred_row, rdata, pw, ph, y, &mvs[mb_row..mb_row + cols as usize]);
        let row = y as usize * stride;
        for (x, &pred) in pred_row.iter().enumerate() {
            let pred = pred as i64;
            let res = sdata[row + x] as i64 - pred;
            let qres = quantize(res, q);
            residuals.push(qres);
            recon[row + x] = (pred + qres * q).clamp(0, 255) as u8;
        }
    }
    write_residuals(w, &residuals);
    Plane::from_raw(pw, ph, recon)
}

fn decode_plane_inter(
    r: &mut BitReader<'_>,
    reference: &Plane,
    mvs: &[(i8, i8)],
    q: i64,
) -> Result<Plane> {
    let (pw, ph) = (reference.width(), reference.height());
    let (cols, _) = mb_grid(pw, ph);
    let n = (pw * ph) as usize;
    let rdata = reference.data();
    let sparse = read_residuals_sparse(r, n)?;
    // The prediction IS the reconstruction wherever the residual is
    // zero, so build the motion-compensated prediction directly into
    // the output buffer (mostly row-span copies) and then patch only
    // the sparse nonzero samples in place.
    let mut recon = Vec::with_capacity(n);
    for y in 0..ph {
        let mb_row = ((y / MB) * cols) as usize;
        predict_mb_row(&mut recon, rdata, pw, ph, y, &mvs[mb_row..mb_row + cols as usize]);
    }
    for &(pos, val) in &sparse {
        let pred = recon[pos] as i64;
        recon[pos] = (pred + val * q).clamp(0, 255) as u8;
    }
    Ok(Plane::from_raw(pw, ph, recon))
}

/// The encoder.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    config: EncodeConfig,
}

impl Encoder {
    /// Creates an encoder with the given configuration.
    pub fn new(config: EncodeConfig) -> Encoder {
        Encoder { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EncodeConfig {
        &self.config
    }

    /// Encodes `frames` at rate `rate` with the regular keyframe cadence
    /// (one every `gop` frames).
    ///
    /// # Errors
    /// Fails on an empty input, a zero GOP, or frames whose dimensions
    /// differ from the first frame.
    ///
    /// # Examples
    ///
    /// ```
    /// use vgbl_media::codec::{Decoder, EncodeConfig, Encoder, Quality};
    /// use vgbl_media::color::Rgb;
    /// use vgbl_media::{Frame, FrameRate};
    ///
    /// let frames = vec![Frame::filled(32, 24, Rgb::GREY).unwrap(); 4];
    /// let encoder = Encoder::new(EncodeConfig {
    ///     quality: Quality::Lossless,
    ///     gop: 2,
    ///     ..Default::default()
    /// });
    /// let video = encoder.encode(&frames, FrameRate::FPS30).unwrap();
    /// assert_eq!(video.keyframes(), vec![0, 2]);
    ///
    /// let decoded = Decoder::default().decode_all(&video).unwrap();
    /// assert_eq!(decoded.frames, frames); // lossless round-trip
    /// ```
    pub fn encode(&self, frames: &[Frame], rate: FrameRate) -> Result<EncodedVideo> {
        self.encode_aligned(frames, rate, &[])
    }

    /// Encodes with **segment-aligned keyframes**: in addition to the
    /// regular cadence, a keyframe is forced at every `boundary` (the
    /// first frames of scenario segments), and the cadence restarts
    /// there. A scenario switch then always lands on a keyframe — seek
    /// cost 1 — and GOP-chunks never straddle two segments.
    ///
    /// Boundaries must be strictly increasing, non-zero and inside the
    /// video; duplicates are rejected.
    pub fn encode_aligned(
        &self,
        frames: &[Frame],
        rate: FrameRate,
        boundaries: &[usize],
    ) -> Result<EncodedVideo> {
        if frames.is_empty() {
            return Err(MediaError::InvalidConfig("cannot encode zero frames".into()));
        }
        if self.config.gop == 0 {
            return Err(MediaError::InvalidConfig("gop must be at least 1".into()));
        }
        let (w, h) = (frames[0].width(), frames[0].height());
        for f in frames {
            if f.width() != w || f.height() != h {
                return Err(MediaError::DimensionMismatch {
                    expected: (w, h),
                    actual: (f.width(), f.height()),
                });
            }
        }

        // Build the keyframe schedule: boundary starts plus the regular
        // cadence within each bounded region.
        let gop = self.config.gop;
        let mut region_starts = Vec::with_capacity(boundaries.len() + 1);
        region_starts.push(0usize);
        for (i, &b) in boundaries.iter().enumerate() {
            let prev = *region_starts.last().expect("non-empty");
            if b <= prev || b >= frames.len() {
                return Err(MediaError::InvalidConfig(format!(
                    "keyframe boundary #{i} at {b} is not strictly inside the video"
                )));
            }
            region_starts.push(b);
        }
        let mut starts = Vec::new();
        for (i, &rs) in region_starts.iter().enumerate() {
            let region_end = region_starts.get(i + 1).copied().unwrap_or(frames.len());
            let mut k = rs;
            while k < region_end {
                starts.push(k);
                k += gop;
            }
        }

        let cfg = self.config;
        let n_gops = starts.len();
        let encoded_gops: Vec<Vec<EncodedFrame>> =
            parallel_map_indexed(n_gops, cfg.threads, |g| {
                let start = starts[g];
                let end = starts.get(g + 1).copied().unwrap_or(frames.len());
                encode_gop(&frames[start..end], &cfg)
            });

        let mut out = Vec::with_capacity(frames.len());
        for g in encoded_gops {
            out.extend(g);
        }
        Ok(EncodedVideo {
            width: w,
            height: h,
            rate,
            quality: self.config.quality,
            gop: gop as u32,
            frames: out,
        })
    }

    /// [`Encoder::encode`] with observability: counts the call and the
    /// frames encoded (`codec.encode_calls`, `codec.frames_encoded`) and
    /// records one `codec.gop_encoded_bytes` observation per produced
    /// GOP, all under `pillar=media`. With a noop backend this is
    /// [`Encoder::encode`] plus a handful of `Option` checks.
    pub fn encode_observed(
        &self,
        frames: &[Frame],
        rate: FrameRate,
        obs: &vgbl_obs::Obs,
    ) -> Result<EncodedVideo> {
        let labels: &[(&str, &str)] = &[("pillar", "media")];
        obs.counter("codec.encode_calls", labels).inc();
        let video = self.encode(frames, rate)?;
        obs.counter("codec.frames_encoded", labels).add(video.len() as u64);
        let gop_bytes = obs.histogram("codec.gop_encoded_bytes", labels);
        let keyframes = video.keyframes();
        for (i, &k) in keyframes.iter().enumerate() {
            let end = keyframes.get(i + 1).copied().unwrap_or(video.len());
            let bytes: usize = video.frames[k..end].iter().map(|f| f.data.len()).sum();
            gop_bytes.record(bytes as u64);
        }
        Ok(video)
    }
}

/// Whether every sample of `src` quantises to its reference — i.e. the
/// frame would code as all-zero residuals at zero motion, so it can be a
/// zero-byte SKIP frame.
fn frame_skips(src: &[Plane; 3], reference: &[Plane; 3], q: i64) -> bool {
    for (s, r) in src.iter().zip(reference.iter()) {
        for (a, b) in s.data().iter().zip(r.data().iter()) {
            if quantize(*a as i64 - *b as i64, q) != 0 {
                return false;
            }
        }
    }
    true
}

/// Encodes one GOP sequentially: an I-frame followed by P/SKIP frames.
fn encode_gop(frames: &[Frame], cfg: &EncodeConfig) -> Vec<EncodedFrame> {
    let q = cfg.quality.qstep();
    let mut out = Vec::with_capacity(frames.len());
    let mut reference: Option<[Plane; 3]> = None;
    for (i, frame) in frames.iter().enumerate() {
        let src = Plane::split(frame);
        let mut w = BitWriter::new();
        let recon;
        let kind;
        if i == 0 {
            kind = FrameKind::Intra;
            recon = [
                encode_plane_intra(&mut w, &src[0], q),
                encode_plane_intra(&mut w, &src[1], q),
                encode_plane_intra(&mut w, &src[2], q),
            ];
        } else {
            let ref_planes = reference.as_ref().expect("P-frame has a reference");
            if frame_skips(&src, ref_planes, q) {
                // Zero payload: the decoder re-shows the reference.
                out.push(EncodedFrame { kind: FrameKind::Skip, data: Vec::new() });
                continue; // reference stays as-is
            }
            kind = FrameKind::Inter;
            let cur_luma = Plane::luma_of(frame);
            let ref_luma = Plane::luma_of_planes(ref_planes);
            let mvs = motion_search(&cur_luma, &ref_luma, cfg.search_range);
            for &(dx, dy) in &mvs {
                w.put_se(dx as i64);
                w.put_se(dy as i64);
            }
            recon = [
                encode_plane_inter(&mut w, &src[0], &ref_planes[0], &mvs, q),
                encode_plane_inter(&mut w, &src[1], &ref_planes[1], &mvs, q),
                encode_plane_inter(&mut w, &src[2], &ref_planes[2], &mvs, q),
            ];
        }
        out.push(EncodedFrame { kind, data: w.finish() });
        reference = Some(recon);
    }
    out
}

/// The decoder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder {
    /// Worker threads for GOP-parallel decoding (≤ 1 = sequential).
    pub threads: usize,
}

impl Decoder {
    /// Creates a decoder using `threads` workers for full decodes.
    pub fn new(threads: usize) -> Decoder {
        Decoder { threads }
    }

    /// Decodes the whole stream.
    pub fn decode_all(&self, video: &EncodedVideo) -> Result<DecodedVideo> {
        if video.frames.is_empty() {
            return Ok(DecodedVideo { frames: Vec::new(), rate: video.rate });
        }
        let keyframes = video.keyframes();
        if keyframes.first() != Some(&0) {
            return Err(MediaError::CorruptBitstream(
                "stream does not start with a keyframe".into(),
            ));
        }
        // Decode GOPs in parallel, one work item per GOP: the dynamic
        // scheduler lets workers that draw cheap GOPs (SKIP-heavy still
        // stretches) steal the expensive ones a loaded worker never
        // reaches, instead of pinning contiguous GOP ranges to threads.
        let gop_bounds: Vec<(usize, usize)> = keyframes
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let end = keyframes.get(i + 1).copied().unwrap_or(video.frames.len());
                (k, end)
            })
            .collect();

        let chunks: Vec<Result<Vec<Frame>>> =
            parallel_map_indexed(gop_bounds.len(), self.threads.max(1), |g| {
                let (start, end) = gop_bounds[g];
                decode_gop(video, start, end)
            });

        let mut frames = Vec::with_capacity(video.frames.len());
        for chunk in chunks {
            frames.extend(chunk?);
        }
        Ok(DecodedVideo { frames, rate: video.rate })
    }

    /// Decodes the single frame `index`, starting from its GOP's keyframe.
    /// Returns the frame and the number of frames actually decoded (the
    /// seek cost measured by EXP-3).
    pub fn decode_frame(&self, video: &EncodedVideo, index: usize) -> Result<(Frame, usize)> {
        let key = video.keyframe_before(index)?;
        let frames = decode_gop(video, key, index + 1)?;
        let count = frames.len();
        let frame = frames.into_iter().next_back().expect("decode_gop yields ≥1 frame");
        Ok((frame, count))
    }

    /// Decodes the complete GOP starting at `keyframe` (which must be a
    /// keyframe index, e.g. from [`EncodedVideo::keyframe_before`]).
    /// This is the unit the shared [`crate::cache::GopCache`] stores.
    ///
    /// # Errors
    /// Fails when `keyframe` is out of range or does not start a GOP.
    pub fn decode_gop_at(&self, video: &EncodedVideo, keyframe: usize) -> Result<Vec<Frame>> {
        match video.frames.get(keyframe) {
            None => Err(MediaError::FrameOutOfRange {
                index: keyframe,
                len: video.frames.len(),
            }),
            Some(f) if f.kind != FrameKind::Intra => Err(MediaError::CorruptBitstream(
                format!("frame {keyframe} is not a keyframe"),
            )),
            Some(_) => decode_gop(video, keyframe, video.gop_end(keyframe)),
        }
    }

    /// [`Decoder::decode_all`] with observability: counts the call and
    /// the frames decoded (`codec.decode_calls`, `codec.frames_decoded`)
    /// and records one `codec.gop_frames` observation per GOP, all under
    /// `pillar=media`. With a noop backend this is
    /// [`Decoder::decode_all`] plus a handful of `Option` checks.
    pub fn decode_all_observed(
        &self,
        video: &EncodedVideo,
        obs: &vgbl_obs::Obs,
    ) -> Result<DecodedVideo> {
        let labels: &[(&str, &str)] = &[("pillar", "media")];
        obs.counter("codec.decode_calls", labels).inc();
        let decoded = self.decode_all(video)?;
        obs.counter("codec.frames_decoded", labels).add(decoded.frames.len() as u64);
        let gop_frames = obs.histogram("codec.gop_frames", labels);
        let keyframes = video.keyframes();
        for (i, &k) in keyframes.iter().enumerate() {
            let end = keyframes.get(i + 1).copied().unwrap_or(video.len());
            gop_frames.record((end - k) as u64);
        }
        Ok(decoded)
    }
}

/// Decodes frames `[start, end)` where `start` must be a keyframe.
fn decode_gop(video: &EncodedVideo, start: usize, end: usize) -> Result<Vec<Frame>> {
    let q = video
        .quality
        .qstep();
    let (w, h) = (video.width, video.height);
    if w == 0 || h == 0 {
        return Err(MediaError::InvalidDimensions { dims: (w, h) });
    }
    let mut out = Vec::with_capacity(end - start);
    let mut reference: Option<[Plane; 3]> = None;
    for idx in start..end {
        let ef = &video.frames[idx];
        let mut r = BitReader::new(&ef.data);
        let planes = match ef.kind {
            FrameKind::Intra => [
                decode_plane_intra(&mut r, w, h, q)?,
                decode_plane_intra(&mut r, w, h, q)?,
                decode_plane_intra(&mut r, w, h, q)?,
            ],
            FrameKind::Inter => {
                let refp = reference.as_ref().ok_or_else(|| {
                    MediaError::CorruptBitstream(format!("P-frame {idx} without reference"))
                })?;
                let (cols, rows) = mb_grid(w, h);
                let mut mvs = Vec::with_capacity((cols * rows) as usize);
                for _ in 0..cols * rows {
                    let dx = r.get_se()?;
                    let dy = r.get_se()?;
                    if !(-127..=127).contains(&dx) || !(-127..=127).contains(&dy) {
                        return Err(MediaError::CorruptBitstream(
                            "motion vector out of range".into(),
                        ));
                    }
                    mvs.push((dx as i8, dy as i8));
                }
                [
                    decode_plane_inter(&mut r, &refp[0], &mvs, q)?,
                    decode_plane_inter(&mut r, &refp[1], &mvs, q)?,
                    decode_plane_inter(&mut r, &refp[2], &mvs, q)?,
                ]
            }
            FrameKind::Skip => {
                if reference.is_none() {
                    return Err(MediaError::CorruptBitstream(format!(
                        "SKIP frame {idx} without reference"
                    )));
                }
                // Re-show the previous output (an Arc bump): a SKIP
                // decodes in O(1) instead of re-merging three planes,
                // and the reference planes stay as-is.
                let prev: Frame =
                    out.last().cloned().expect("reference implies a prior output frame");
                out.push(prev);
                continue;
            }
        };
        out.push(Plane::merge(&planes));
        reference = Some(planes);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;
    use crate::synth::{FootageSpec, ShotSpec, SpriteShape, SpriteSpec};

    fn test_footage(frames: usize) -> Vec<Frame> {
        FootageSpec {
            width: 48,
            height: 32,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec {
                frames,
                background: Rgb::new(60, 90, 120),
                sprites: vec![SpriteSpec {
                    shape: SpriteShape::Rect(10, 8),
                    color: Rgb::new(220, 200, 40),
                    pos: (10.0, 10.0),
                    vel: (2.0, 1.0),
                }],
                luma_drift: 6,
                noise: 1,
            }],
            noise_seed: 3,
        }
        .render()
        .unwrap()
        .frames
    }

    #[test]
    fn residual_rle_roundtrip() {
        let cases: Vec<Vec<i64>> = vec![
            vec![],
            vec![0, 0, 0, 0],
            vec![5],
            vec![0, 0, 3, 0, -2, 0, 0, 0],
            vec![1, -1, 2, -2, 3],
            vec![0; 100],
        ];
        for case in cases {
            let mut w = BitWriter::new();
            write_residuals(&mut w, &case);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let back = read_residuals(&mut r, case.len()).unwrap();
            assert_eq!(back, case);
        }
    }

    #[test]
    fn residual_reader_rejects_overlong_run() {
        let mut w = BitWriter::new();
        w.put_ue(50); // run of 50 into a 10-sample plane
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(read_residuals(&mut r, 10).is_err());
    }

    #[test]
    fn quantize_is_symmetric() {
        for q in [1i64, 2, 4, 8] {
            for v in -50..=50i64 {
                assert_eq!(quantize(v, q), -quantize(-v, q), "v={v} q={q}");
                // Reconstruction error bounded by q/2.
                let err = (quantize(v, q) * q - v).abs();
                assert!(err <= q / 2, "v={v} q={q} err={err}");
            }
        }
    }

    #[test]
    fn lossless_roundtrip_is_exact() {
        let frames = test_footage(8);
        let enc = Encoder::new(EncodeConfig {
            quality: Quality::Lossless,
            gop: 4,
            ..Default::default()
        });
        let ev = enc.encode(&frames, FrameRate::FPS30).unwrap();
        let dec = Decoder::default().decode_all(&ev).unwrap();
        assert_eq!(dec.frames.len(), frames.len());
        for (a, b) in frames.iter().zip(dec.frames.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn lossy_roundtrip_is_close() {
        let frames = test_footage(10);
        for quality in [Quality::High, Quality::Medium, Quality::Low] {
            let enc = Encoder::new(EncodeConfig { quality, gop: 5, ..Default::default() });
            let ev = enc.encode(&frames, FrameRate::FPS30).unwrap();
            let dec = Decoder::default().decode_all(&ev).unwrap();
            for (a, b) in frames.iter().zip(dec.frames.iter()) {
                let mse = a.mse(b).unwrap();
                let bound = (quality.qstep() * quality.qstep()) as f64;
                assert!(mse <= bound, "{quality:?}: mse {mse} > {bound}");
            }
        }
    }

    #[test]
    fn lower_quality_compresses_harder() {
        let frames = test_footage(12);
        let size_at = |q: Quality| {
            Encoder::new(EncodeConfig { quality: q, gop: 6, ..Default::default() })
                .encode(&frames, FrameRate::FPS30)
                .unwrap()
                .payload_bytes()
        };
        let lossless = size_at(Quality::Lossless);
        let low = size_at(Quality::Low);
        assert!(low < lossless, "low {low} !< lossless {lossless}");
    }

    /// Noise-free footage with a moving sprite: temporal prediction should
    /// shine here, while per-pixel sensor noise (as in [`test_footage`])
    /// costs intra and inter coding about equally.
    fn clean_footage(frames: usize) -> Vec<Frame> {
        FootageSpec {
            width: 48,
            height: 32,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec {
                frames,
                background: Rgb::new(60, 90, 120),
                sprites: vec![SpriteSpec {
                    shape: SpriteShape::Rect(10, 8),
                    color: Rgb::new(220, 200, 40),
                    pos: (10.0, 10.0),
                    vel: (2.0, 1.0),
                }],
                luma_drift: 0,
                noise: 0,
            }],
            noise_seed: 3,
        }
        .render()
        .unwrap()
        .frames
    }

    #[test]
    fn inter_frames_beat_all_intra_on_static_content() {
        let frames = clean_footage(12);
        let with_gop = |gop: usize| {
            Encoder::new(EncodeConfig { gop, ..Default::default() })
                .encode(&frames, FrameRate::FPS30)
                .unwrap()
                .payload_bytes()
        };
        assert!(with_gop(12) < with_gop(1));
    }

    #[test]
    fn gop_structure_is_correct() {
        let frames = test_footage(10);
        let ev = Encoder::new(EncodeConfig { gop: 4, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        let kinds: Vec<FrameKind> = ev.frames.iter().map(|f| f.kind).collect();
        use FrameKind::{Inter, Intra};
        assert_eq!(
            kinds,
            vec![Intra, Inter, Inter, Inter, Intra, Inter, Inter, Inter, Intra, Inter]
        );
        assert_eq!(ev.keyframes(), vec![0, 4, 8]);
        assert_eq!(ev.keyframe_before(3).unwrap(), 0);
        assert_eq!(ev.keyframe_before(4).unwrap(), 4);
        assert_eq!(ev.keyframe_before(9).unwrap(), 8);
        assert!(ev.keyframe_before(10).is_err());
    }

    #[test]
    fn parallel_encode_matches_sequential() {
        let frames = test_footage(16);
        let seq = Encoder::new(EncodeConfig { gop: 4, threads: 1, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        let par = Encoder::new(EncodeConfig { gop: 4, threads: 4, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_decode_matches_sequential() {
        let frames = test_footage(16);
        let ev = Encoder::new(EncodeConfig { gop: 4, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        let seq = Decoder::new(1).decode_all(&ev).unwrap();
        let par = Decoder::new(4).decode_all(&ev).unwrap();
        assert_eq!(seq.frames, par.frames);
    }

    #[test]
    fn decode_frame_counts_gop_walk() {
        let frames = test_footage(10);
        let ev = Encoder::new(EncodeConfig { gop: 5, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        let dec = Decoder::default();
        let (_, n) = dec.decode_frame(&ev, 0).unwrap();
        assert_eq!(n, 1);
        let (_, n) = dec.decode_frame(&ev, 4).unwrap();
        assert_eq!(n, 5);
        let (_, n) = dec.decode_frame(&ev, 5).unwrap();
        assert_eq!(n, 1);
        // The frame itself matches the full decode.
        let all = dec.decode_all(&ev).unwrap();
        let (f7, _) = dec.decode_frame(&ev, 7).unwrap();
        assert_eq!(f7, all.frames[7]);
    }

    #[test]
    fn encode_validates_input() {
        let enc = Encoder::default();
        assert!(enc.encode(&[], FrameRate::FPS30).is_err());
        let bad_gop = Encoder::new(EncodeConfig { gop: 0, ..Default::default() });
        let frames = test_footage(2);
        assert!(bad_gop.encode(&frames, FrameRate::FPS30).is_err());
        let mixed = vec![
            Frame::new(8, 8).unwrap(),
            Frame::new(9, 8).unwrap(),
        ];
        assert!(enc.encode(&mixed, FrameRate::FPS30).is_err());
    }

    #[test]
    fn decoder_rejects_headless_stream() {
        let frames = test_footage(4);
        let mut ev = Encoder::new(EncodeConfig { gop: 2, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        // Corrupt: drop the leading keyframe.
        ev.frames.remove(0);
        assert!(Decoder::default().decode_all(&ev).is_err());
    }

    #[test]
    fn decoder_rejects_truncated_payload() {
        let frames = test_footage(3);
        let mut ev = Encoder::new(EncodeConfig { gop: 3, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        ev.frames[0].data.truncate(4);
        assert!(Decoder::default().decode_all(&ev).is_err());
    }

    #[test]
    fn motion_search_finds_translation() {
        // A textured block shifted right by 3 px between frames.
        let mut f0 = Frame::filled(32, 32, Rgb::BLACK).unwrap();
        let mut f1 = Frame::filled(32, 32, Rgb::BLACK).unwrap();
        for i in 0..8 {
            f0.fill_rect(8 + i, 8 + i, 2, 2, Rgb::new(200, (20 * i) as u8, 100));
            f1.fill_rect(11 + i, 8 + i, 2, 2, Rgb::new(200, (20 * i) as u8, 100));
        }
        let cur = Plane::luma_of(&f1);
        let refp = Plane::luma_of(&f0);
        let mvs = motion_search(&cur, &refp, 7);
        // The macroblock containing the texture ((0,0)..(16,16)) should
        // carry the (-3, 0) vector (current samples map back to ref).
        assert_eq!(mvs[0], (-3, 0));
    }

    #[test]
    fn compression_ratio_reported() {
        let frames = test_footage(6);
        let ev = Encoder::default().encode(&frames, FrameRate::FPS30).unwrap();
        assert!(ev.compression_ratio() > 1.0, "ratio {}", ev.compression_ratio());
        assert_eq!(ev.raw_bytes(), 48 * 32 * 3 * 6);
    }
}

#[cfg(test)]
mod aligned_tests {
    use super::*;
    use crate::color::Rgb;
    use crate::synth::{FootageSpec, ShotSpec};

    fn frames(n: usize) -> Vec<Frame> {
        FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(n, Rgb::new(70, 110, 150))],
            noise_seed: 8,
        }
        .render()
        .unwrap()
        .frames
    }

    #[test]
    fn aligned_keyframes_land_on_boundaries() {
        let f = frames(20);
        let enc = Encoder::new(EncodeConfig { gop: 6, ..Default::default() });
        let ev = enc.encode_aligned(&f, FrameRate::FPS30, &[7, 15]).unwrap();
        // Regions [0,7), [7,15), [15,20) with cadence 6 inside each:
        assert_eq!(ev.keyframes(), vec![0, 6, 7, 13, 15]);
        // Every boundary seeks in exactly one frame.
        let dec = Decoder::default();
        for b in [0usize, 7, 15] {
            let (_, n) = dec.decode_frame(&ev, b).unwrap();
            assert_eq!(n, 1, "boundary {b}");
        }
    }

    #[test]
    fn aligned_decodes_identically_to_source_at_lossless() {
        let f = frames(18);
        let enc = Encoder::new(EncodeConfig {
            gop: 5,
            quality: Quality::Lossless,
            ..Default::default()
        });
        let ev = enc.encode_aligned(&f, FrameRate::FPS30, &[4, 9]).unwrap();
        let dec = Decoder::default().decode_all(&ev).unwrap();
        assert_eq!(dec.frames, f);
    }

    #[test]
    fn empty_boundaries_equals_plain_encode() {
        let f = frames(12);
        let enc = Encoder::new(EncodeConfig { gop: 4, ..Default::default() });
        let a = enc.encode(&f, FrameRate::FPS30).unwrap();
        let b = enc.encode_aligned(&f, FrameRate::FPS30, &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_boundaries() {
        let f = frames(10);
        let enc = Encoder::new(EncodeConfig { gop: 4, ..Default::default() });
        for bad in [vec![0usize], vec![10], vec![5, 5], vec![7, 3], vec![11]] {
            assert!(
                enc.encode_aligned(&f, FrameRate::FPS30, &bad).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn alignment_costs_little_compression() {
        let f = frames(30);
        let enc = Encoder::new(EncodeConfig { gop: 10, ..Default::default() });
        let plain = enc.encode(&f, FrameRate::FPS30).unwrap();
        let aligned = enc.encode_aligned(&f, FrameRate::FPS30, &[13]).unwrap();
        // One extra keyframe: some size cost, but bounded (< 40% here).
        assert!(aligned.payload_bytes() >= plain.payload_bytes());
        assert!(
            (aligned.payload_bytes() as f64) < plain.payload_bytes() as f64 * 1.4,
            "{} vs {}",
            aligned.payload_bytes(),
            plain.payload_bytes()
        );
    }
}

#[cfg(test)]
mod skip_tests {
    use super::*;
    use crate::color::Rgb;
    use crate::synth::{FootageSpec, ShotSpec, SpriteShape, SpriteSpec};

    fn static_frames(n: usize) -> Vec<Frame> {
        FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(n, Rgb::new(120, 140, 90))],
            noise_seed: 1,
        }
        .render()
        .unwrap()
        .frames
    }

    #[test]
    fn static_content_collapses_to_skip_frames() {
        let frames = static_frames(10);
        let ev = Encoder::new(EncodeConfig { gop: 10, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        let kinds: Vec<FrameKind> = ev.frames.iter().map(|f| f.kind).collect();
        assert_eq!(kinds[0], FrameKind::Intra);
        assert!(
            kinds[1..].iter().all(|k| *k == FrameKind::Skip),
            "kinds: {kinds:?}"
        );
        // SKIP frames carry no payload at all.
        assert!(ev.frames[1..].iter().all(|f| f.data.is_empty()));
        // And decode identically to the source.
        let dec = Decoder::default().decode_all(&ev).unwrap();
        assert_eq!(dec.frames, frames);
    }

    #[test]
    fn skip_massively_improves_static_compression() {
        let frames = static_frames(30);
        let ev = Encoder::new(EncodeConfig { gop: 30, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        // Essentially one intra frame's worth of bytes for 30 frames.
        assert!(
            ev.compression_ratio() > 20.0,
            "ratio only {:.1}",
            ev.compression_ratio()
        );
    }

    #[test]
    fn moving_content_does_not_skip() {
        let frames = FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec {
                frames: 6,
                background: Rgb::GREY,
                sprites: vec![SpriteSpec {
                    shape: SpriteShape::Rect(8, 8),
                    color: Rgb::RED,
                    pos: (8.0, 8.0),
                    vel: (3.0, 0.0),
                }],
                luma_drift: 0,
                noise: 0,
            }],
            noise_seed: 1,
        }
        .render()
        .unwrap()
        .frames;
        let ev = Encoder::new(EncodeConfig { gop: 6, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        assert!(ev.frames[1..].iter().all(|f| f.kind == FrameKind::Inter));
    }

    #[test]
    fn lossy_quantisation_absorbs_tiny_noise_into_skips() {
        // Noise amplitude 1 quantises away at Low quality (q=8: |v|<=3).
        let frames = FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec {
                frames: 8,
                background: Rgb::GREY,
                sprites: vec![],
                luma_drift: 0,
                noise: 1,
            }],
            noise_seed: 2,
        }
        .render()
        .unwrap()
        .frames;
        let lossless = Encoder::new(EncodeConfig {
            quality: Quality::Lossless,
            gop: 8,
            ..Default::default()
        })
        .encode(&frames, FrameRate::FPS30)
        .unwrap();
        let low = Encoder::new(EncodeConfig {
            quality: Quality::Low,
            gop: 8,
            ..Default::default()
        })
        .encode(&frames, FrameRate::FPS30)
        .unwrap();
        let skips = |ev: &EncodedVideo| {
            ev.frames.iter().filter(|f| f.kind == FrameKind::Skip).count()
        };
        assert_eq!(skips(&lossless), 0);
        assert_eq!(skips(&low), 7);
    }

    #[test]
    fn skip_frames_roundtrip_through_container() {
        let frames = static_frames(6);
        let ev = Encoder::new(EncodeConfig { gop: 6, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        let bytes = crate::container::ContainerWriter::write(&ev);
        let back = crate::container::ContainerReader::read(&bytes).unwrap();
        assert_eq!(back, ev);
        let dec = Decoder::default().decode_all(&back).unwrap();
        assert_eq!(dec.frames.len(), 6);
    }

    #[test]
    fn corrupt_leading_skip_rejected() {
        let frames = static_frames(4);
        let mut ev = Encoder::new(EncodeConfig { gop: 4, ..Default::default() })
            .encode(&frames, FrameRate::FPS30)
            .unwrap();
        ev.frames[0].kind = FrameKind::Skip;
        ev.frames[0].data.clear();
        assert!(Decoder::default().decode_all(&ev).is_err());
    }
}
