//! Colour planes and motion compensation.
//!
//! The codec works on separated 8-bit planes (R, G, B, plus a derived luma
//! plane used only for motion search). Planes support clamped sampling so
//! motion vectors may point partially outside the reference frame.

use crate::color::Rgb;
use crate::frame::Frame;

/// One 8-bit channel of a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl Plane {
    /// A zero-filled plane.
    pub fn new(width: u32, height: u32) -> Plane {
        Plane { width, height, data: vec![0; (width * height) as usize] }
    }

    /// Plane width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Plane height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw samples, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw samples.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sample at `(x, y)` with coordinates clamped to the plane bounds —
    /// the edge-extension rule used for out-of-frame motion references.
    #[inline]
    pub fn sample_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.data[(cy * self.width + cx) as usize]
    }

    /// In-bounds sample access.
    #[inline]
    pub fn at(&self, x: u32, y: u32) -> u8 {
        self.data[(y * self.width + x) as usize]
    }

    /// In-bounds sample write.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        self.data[(y * self.width + x) as usize] = v;
    }

    /// Extracts the three colour planes of a frame.
    pub fn split(frame: &Frame) -> [Plane; 3] {
        let (w, h) = (frame.width(), frame.height());
        let mut planes = [Plane::new(w, h), Plane::new(w, h), Plane::new(w, h)];
        for (i, px) in frame.raw().chunks_exact(3).enumerate() {
            planes[0].data[i] = px[0];
            planes[1].data[i] = px[1];
            planes[2].data[i] = px[2];
        }
        planes
    }

    /// Rebuilds an RGB frame from three planes (which must share a shape).
    pub fn merge(planes: &[Plane; 3]) -> Frame {
        let (w, h) = (planes[0].width, planes[0].height);
        debug_assert!(planes.iter().all(|p| p.width == w && p.height == h));
        let mut data = Vec::with_capacity((w * h * 3) as usize);
        for i in 0..(w * h) as usize {
            data.push(planes[0].data[i]);
            data.push(planes[1].data[i]);
            data.push(planes[2].data[i]);
        }
        Frame::from_raw(w, h, data).expect("merged plane dimensions are valid")
    }

    /// Derives the luma plane of a frame (for motion search only).
    pub fn luma_of(frame: &Frame) -> Plane {
        let mut p = Plane::new(frame.width(), frame.height());
        for (dst, px) in p.data.iter_mut().zip(frame.raw().chunks_exact(3)) {
            *dst = Rgb::new(px[0], px[1], px[2]).luma();
        }
        p
    }

    /// Sum of absolute differences between a `bw×bh` block at `(x, y)` in
    /// `self` and the block at `(x+dx, y+dy)` in `reference`, with clamped
    /// sampling on the reference. Early-exits once `best` is exceeded.
    // A SAD call is the innermost loop of motion search; passing discrete
    // coordinates beats constructing a geometry struct per probe.
    #[allow(clippy::too_many_arguments)]
    pub fn block_sad(
        &self,
        reference: &Plane,
        x: u32,
        y: u32,
        bw: u32,
        bh: u32,
        dx: i64,
        dy: i64,
        best: u64,
    ) -> u64 {
        let mut acc = 0u64;
        for by in 0..bh {
            for bx in 0..bw {
                let a = self.at(x + bx, y + by) as i64;
                let b = reference.sample_clamped(x as i64 + bx as i64 + dx, y as i64 + by as i64 + dy)
                    as i64;
                acc += a.abs_diff(b);
            }
            if acc >= best {
                return acc; // cannot improve on the incumbent
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;

    #[test]
    fn split_merge_roundtrip() {
        let mut f = Frame::new(5, 4).unwrap();
        f.set(1, 2, Rgb::new(9, 8, 7));
        f.set(4, 3, Rgb::new(200, 100, 50));
        let planes = Plane::split(&f);
        assert_eq!(planes[0].at(1, 2), 9);
        assert_eq!(planes[1].at(1, 2), 8);
        assert_eq!(planes[2].at(1, 2), 7);
        let back = Plane::merge(&planes);
        assert_eq!(back, f);
    }

    #[test]
    fn clamped_sampling_extends_edges() {
        let mut p = Plane::new(3, 3);
        p.set(0, 0, 10);
        p.set(2, 2, 99);
        assert_eq!(p.sample_clamped(-5, -5), 10);
        assert_eq!(p.sample_clamped(7, 7), 99);
        assert_eq!(p.sample_clamped(1, 1), 0);
    }

    #[test]
    fn luma_plane_matches_pixel_luma() {
        let f = Frame::filled(2, 2, Rgb::new(30, 60, 90)).unwrap();
        let l = Plane::luma_of(&f);
        assert_eq!(l.at(0, 0), Rgb::new(30, 60, 90).luma());
    }

    #[test]
    fn sad_zero_for_identical_blocks() {
        let f = Frame::filled(16, 16, Rgb::new(77, 77, 77)).unwrap();
        let p = Plane::luma_of(&f);
        assert_eq!(p.block_sad(&p, 0, 0, 8, 8, 0, 0, u64::MAX), 0);
    }

    #[test]
    fn sad_detects_shift() {
        // A plane with a vertical step edge: shifting by the step width
        // aligns it again.
        let mut a = Plane::new(16, 8);
        let mut b = Plane::new(16, 8);
        for y in 0..8 {
            for x in 0..16 {
                a.set(x, y, if x >= 4 { 200 } else { 10 });
                b.set(x, y, if x >= 6 { 200 } else { 10 });
            }
        }
        // Block in `a` matches `b` shifted by +2.
        let sad_aligned = a.block_sad(&b, 4, 0, 8, 8, 2, 0, u64::MAX);
        let sad_unaligned = a.block_sad(&b, 4, 0, 8, 8, 0, 0, u64::MAX);
        assert_eq!(sad_aligned, 0);
        assert!(sad_unaligned > 0);
    }

    #[test]
    fn sad_early_exit_returns_at_least_best() {
        let mut a = Plane::new(8, 8);
        let b = Plane::new(8, 8);
        for v in a.data_mut().iter_mut() {
            *v = 255;
        }
        let sad = a.block_sad(&b, 0, 0, 8, 8, 0, 0, 100);
        assert!(sad >= 100);
    }
}
