//! Colour planes and motion compensation.
//!
//! The codec works on separated 8-bit planes (R, G, B, plus a derived luma
//! plane used only for motion search). Planes support clamped sampling so
//! motion vectors may point partially outside the reference frame.

use std::sync::Arc;

use crate::color::Rgb;
use crate::frame::Frame;

/// One 8-bit channel of a frame.
///
/// Samples live behind an [`Arc`], so cloning a plane (reference frames
/// in the encoder, SKIP reconstruction in the decoder) shares the
/// buffer instead of copying it; the first mutation of a shared plane
/// copies on write via [`Arc::make_mut`]. Hot producers should build
/// the full sample buffer and wrap it once with [`Plane::from_raw`]
/// rather than calling [`Plane::set`] per pixel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    width: u32,
    height: u32,
    data: Arc<Vec<u8>>,
}

impl Plane {
    /// A zero-filled plane.
    pub fn new(width: u32, height: u32) -> Plane {
        Plane { width, height, data: Arc::new(vec![0; (width * height) as usize]) }
    }

    /// Wraps a ready-made row-major sample buffer (must hold exactly
    /// `width * height` samples).
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Plane {
        assert_eq!(data.len(), (width * height) as usize, "plane buffer size mismatch");
        Plane { width, height, data: Arc::new(data) }
    }

    /// Plane width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Plane height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw samples, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw samples (copy-on-write if the buffer is shared).
    pub fn data_mut(&mut self) -> &mut [u8] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Sample at `(x, y)` with coordinates clamped to the plane bounds —
    /// the edge-extension rule used for out-of-frame motion references.
    #[inline]
    pub fn sample_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.data[(cy * self.width + cx) as usize]
    }

    /// In-bounds sample access.
    #[inline]
    pub fn at(&self, x: u32, y: u32) -> u8 {
        self.data[(y * self.width + x) as usize]
    }

    /// In-bounds sample write (copy-on-write if the buffer is shared).
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        Arc::make_mut(&mut self.data)[(y * self.width + x) as usize] = v;
    }

    /// Extracts the three colour planes of a frame.
    pub fn split(frame: &Frame) -> [Plane; 3] {
        let (w, h) = (frame.width(), frame.height());
        let n = (w * h) as usize;
        let mut r = Vec::with_capacity(n);
        let mut g = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for px in frame.raw().chunks_exact(3) {
            r.push(px[0]);
            g.push(px[1]);
            b.push(px[2]);
        }
        [Plane::from_raw(w, h, r), Plane::from_raw(w, h, g), Plane::from_raw(w, h, b)]
    }

    /// Rebuilds an RGB frame from three planes (which must share a shape).
    pub fn merge(planes: &[Plane; 3]) -> Frame {
        let (w, h) = (planes[0].width, planes[0].height);
        debug_assert!(planes.iter().all(|p| p.width == w && p.height == h));
        let mut data = vec![0u8; (w * h * 3) as usize];
        let rgb = data.chunks_exact_mut(3);
        let chans = planes[0].data.iter().zip(planes[1].data.iter()).zip(planes[2].data.iter());
        for (px, ((&r, &g), &b)) in rgb.zip(chans) {
            px[0] = r;
            px[1] = g;
            px[2] = b;
        }
        Frame::from_raw(w, h, data).expect("merged plane dimensions are valid")
    }

    /// Derives the luma plane of a frame (for motion search only).
    pub fn luma_of(frame: &Frame) -> Plane {
        let data: Vec<u8> = frame
            .raw()
            .chunks_exact(3)
            .map(|px| Rgb::new(px[0], px[1], px[2]).luma())
            .collect();
        Plane::from_raw(frame.width(), frame.height(), data)
    }

    /// Derives the luma plane directly from split colour planes —
    /// identical samples to `luma_of(&Plane::merge(planes))` without
    /// materialising the merged RGB frame (the encoder calls this once
    /// per inter frame).
    pub fn luma_of_planes(planes: &[Plane; 3]) -> Plane {
        let (w, h) = (planes[0].width, planes[0].height);
        debug_assert!(planes.iter().all(|p| p.width == w && p.height == h));
        let data: Vec<u8> = planes[0]
            .data
            .iter()
            .zip(planes[1].data.iter())
            .zip(planes[2].data.iter())
            .map(|((&r, &g), &b)| Rgb::new(r, g, b).luma())
            .collect();
        Plane::from_raw(w, h, data)
    }

    /// Sum of absolute differences between a `bw×bh` block at `(x, y)` in
    /// `self` and the block at `(x+dx, y+dy)` in `reference`, with clamped
    /// sampling on the reference. Early-exits once `best` is exceeded.
    ///
    /// Fully in-bounds probes (the overwhelming majority — only blocks
    /// hugging the frame edge ever clamp) compare whole rows: 8 samples
    /// at a time as `u64` words, skipping word-equal runs outright (the
    /// common case on the zero vector), with a scalar tail. The
    /// out-of-bounds path and the per-row early-exit are exactly
    /// [`Plane::block_sad_reference`]'s, so results are bit-identical.
    // A SAD call is the innermost loop of motion search; passing discrete
    // coordinates beats constructing a geometry struct per probe.
    #[allow(clippy::too_many_arguments)]
    pub fn block_sad(
        &self,
        reference: &Plane,
        x: u32,
        y: u32,
        bw: u32,
        bh: u32,
        dx: i64,
        dy: i64,
        best: u64,
    ) -> u64 {
        let rx = x as i64 + dx;
        let ry = y as i64 + dy;
        let in_bounds = rx >= 0
            && ry >= 0
            && rx + bw as i64 <= reference.width as i64
            && ry + bh as i64 <= reference.height as i64;
        if !in_bounds {
            return self.block_sad_reference(reference, x, y, bw, bh, dx, dy, best);
        }
        let (rx, ry) = (rx as u32, ry as u32);
        let mut acc = 0u64;
        for by in 0..bh {
            let a0 = ((y + by) * self.width + x) as usize;
            let b0 = ((ry + by) * reference.width + rx) as usize;
            let row_a = &self.data[a0..a0 + bw as usize];
            let row_b = &reference.data[b0..b0 + bw as usize];
            acc += row_sad(row_a, row_b);
            if acc >= best {
                return acc; // cannot improve on the incumbent
            }
        }
        acc
    }

    /// The naive per-sample SAD the optimized [`Plane::block_sad`] must
    /// match bit-for-bit; retained as the proptest oracle and as the
    /// fallback for probes that clamp outside the reference.
    #[allow(clippy::too_many_arguments)]
    pub fn block_sad_reference(
        &self,
        reference: &Plane,
        x: u32,
        y: u32,
        bw: u32,
        bh: u32,
        dx: i64,
        dy: i64,
        best: u64,
    ) -> u64 {
        let mut acc = 0u64;
        for by in 0..bh {
            for bx in 0..bw {
                let a = self.at(x + bx, y + by) as i64;
                let b = reference.sample_clamped(x as i64 + bx as i64 + dx, y as i64 + by as i64 + dy)
                    as i64;
                acc += a.abs_diff(b);
            }
            if acc >= best {
                return acc; // cannot improve on the incumbent
            }
        }
        acc
    }
}

/// SAD of two equal-length sample rows: 8-byte words first (equal words
/// contribute 0 and are skipped without unpacking), scalar remainder.
#[inline]
fn row_sad(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0u64;
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
        let ua = u64::from_le_bytes(wa.try_into().expect("exact 8-byte chunk"));
        let ub = u64::from_le_bytes(wb.try_into().expect("exact 8-byte chunk"));
        if ua == ub {
            continue;
        }
        for (&sa, &sb) in wa.iter().zip(wb.iter()) {
            acc += sa.abs_diff(sb) as u64;
        }
    }
    for (&sa, &sb) in ca.remainder().iter().zip(cb.remainder().iter()) {
        acc += sa.abs_diff(sb) as u64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;

    #[test]
    fn split_merge_roundtrip() {
        let mut f = Frame::new(5, 4).unwrap();
        f.set(1, 2, Rgb::new(9, 8, 7));
        f.set(4, 3, Rgb::new(200, 100, 50));
        let planes = Plane::split(&f);
        assert_eq!(planes[0].at(1, 2), 9);
        assert_eq!(planes[1].at(1, 2), 8);
        assert_eq!(planes[2].at(1, 2), 7);
        let back = Plane::merge(&planes);
        assert_eq!(back, f);
    }

    #[test]
    fn clamped_sampling_extends_edges() {
        let mut p = Plane::new(3, 3);
        p.set(0, 0, 10);
        p.set(2, 2, 99);
        assert_eq!(p.sample_clamped(-5, -5), 10);
        assert_eq!(p.sample_clamped(7, 7), 99);
        assert_eq!(p.sample_clamped(1, 1), 0);
    }

    #[test]
    fn luma_plane_matches_pixel_luma() {
        let f = Frame::filled(2, 2, Rgb::new(30, 60, 90)).unwrap();
        let l = Plane::luma_of(&f);
        assert_eq!(l.at(0, 0), Rgb::new(30, 60, 90).luma());
    }

    #[test]
    fn sad_zero_for_identical_blocks() {
        let f = Frame::filled(16, 16, Rgb::new(77, 77, 77)).unwrap();
        let p = Plane::luma_of(&f);
        assert_eq!(p.block_sad(&p, 0, 0, 8, 8, 0, 0, u64::MAX), 0);
    }

    #[test]
    fn sad_detects_shift() {
        // A plane with a vertical step edge: shifting by the step width
        // aligns it again.
        let mut a = Plane::new(16, 8);
        let mut b = Plane::new(16, 8);
        for y in 0..8 {
            for x in 0..16 {
                a.set(x, y, if x >= 4 { 200 } else { 10 });
                b.set(x, y, if x >= 6 { 200 } else { 10 });
            }
        }
        // Block in `a` matches `b` shifted by +2.
        let sad_aligned = a.block_sad(&b, 4, 0, 8, 8, 2, 0, u64::MAX);
        let sad_unaligned = a.block_sad(&b, 4, 0, 8, 8, 0, 0, u64::MAX);
        assert_eq!(sad_aligned, 0);
        assert!(sad_unaligned > 0);
    }

    #[test]
    fn sad_early_exit_returns_at_least_best() {
        let mut a = Plane::new(8, 8);
        let b = Plane::new(8, 8);
        for v in a.data_mut().iter_mut() {
            *v = 255;
        }
        let sad = a.block_sad(&b, 0, 0, 8, 8, 0, 0, 100);
        assert!(sad >= 100);
    }
}
