//! Small numeric helpers shared by the benches and the quality metrics.

/// Peak signal-to-noise ratio in dB for 8-bit content, from a mean squared
/// error. Returns `f64::INFINITY` for a zero MSE (lossless).
pub fn psnr_from_mse(mse: f64) -> f64 {
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * ((255.0 * 255.0) / mse).log10()
    }
}

/// Mean and (population) standard deviation of a sample. Empty input
/// yields `(0, 0)`.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// The `p`-th percentile (0–100) by nearest-rank on a copy of the data.
/// Empty input yields 0.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psnr_known_values() {
        assert_eq!(psnr_from_mse(0.0), f64::INFINITY);
        let p = psnr_from_mse(255.0 * 255.0); // MSE equal to peak² → 0 dB
        assert!(p.abs() < 1e-9);
        assert!((psnr_from_mse(1.0) - 48.1308).abs() < 1e-3);
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.0).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 100.0), 5.0);
    }
}
