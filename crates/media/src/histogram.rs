//! Colour histograms and histogram distances.
//!
//! Shot-boundary detection (paper §4.1: the tool "divides the video into
//! scenario components") compares consecutive frames via coarse RGB
//! histograms — the classic Zhang/Kankanhalli/Smoliar approach that 2007-era
//! interactive-video tools used.

use crate::frame::Frame;

/// Bins per colour channel; 4×4×4 = 64 total bins.
pub const BINS_PER_CHANNEL: usize = 4;
/// Total number of histogram bins.
pub const TOTAL_BINS: usize = BINS_PER_CHANNEL * BINS_PER_CHANNEL * BINS_PER_CHANNEL;

/// A normalised coarse RGB histogram of one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorHistogram {
    bins: [f32; TOTAL_BINS],
}

impl ColorHistogram {
    /// Computes the histogram of a frame. Bin weights sum to 1.
    pub fn of(frame: &Frame) -> ColorHistogram {
        let mut counts = [0u32; TOTAL_BINS];
        for px in frame.raw().chunks_exact(3) {
            let r = (px[0] >> 6) as usize; // 256/4 = 64 levels per bin
            let g = (px[1] >> 6) as usize;
            let b = (px[2] >> 6) as usize;
            counts[(r * BINS_PER_CHANNEL + g) * BINS_PER_CHANNEL + b] += 1;
        }
        let total = frame.pixel_count().max(1) as f32;
        let mut bins = [0f32; TOTAL_BINS];
        for (dst, src) in bins.iter_mut().zip(counts.iter()) {
            *dst = *src as f32 / total;
        }
        ColorHistogram { bins }
    }

    /// Raw normalised bin weights.
    pub fn bins(&self) -> &[f32; TOTAL_BINS] {
        &self.bins
    }

    /// Histogram-intersection *dissimilarity*: `1 - Σ min(a_i, b_i)`.
    /// 0 for identical histograms, approaching 1 for disjoint content.
    pub fn intersection_distance(&self, other: &ColorHistogram) -> f32 {
        let mut inter = 0f32;
        for (a, b) in self.bins.iter().zip(other.bins.iter()) {
            inter += a.min(*b);
        }
        (1.0 - inter).max(0.0)
    }

    /// Symmetric chi-square distance, more sensitive to small shifts than
    /// intersection; used by the detector's `ChiSquare` metric mode.
    pub fn chi_square_distance(&self, other: &ColorHistogram) -> f32 {
        let mut acc = 0f32;
        for (a, b) in self.bins.iter().zip(other.bins.iter()) {
            let sum = a + b;
            if sum > 0.0 {
                let d = a - b;
                acc += d * d / sum;
            }
        }
        // Bounded by 2 for normalised histograms; scale into [0, 1].
        acc / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;

    #[test]
    fn histogram_is_normalised() {
        let f = Frame::filled(16, 16, Rgb::new(200, 30, 90)).unwrap();
        let h = ColorHistogram::of(&f);
        let total: f32 = h.bins().iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn identical_frames_have_zero_distance() {
        let f = Frame::filled(8, 8, Rgb::new(10, 200, 45)).unwrap();
        let a = ColorHistogram::of(&f);
        let b = ColorHistogram::of(&f);
        assert!(a.intersection_distance(&b) < 1e-6);
        assert!(a.chi_square_distance(&b) < 1e-6);
    }

    #[test]
    fn disjoint_frames_have_max_distance() {
        let black = ColorHistogram::of(&Frame::filled(8, 8, Rgb::BLACK).unwrap());
        let white = ColorHistogram::of(&Frame::filled(8, 8, Rgb::WHITE).unwrap());
        assert!(black.intersection_distance(&white) > 0.99);
        assert!(black.chi_square_distance(&white) > 0.99);
    }

    #[test]
    fn distances_are_symmetric() {
        let mut f1 = Frame::filled(8, 8, Rgb::RED).unwrap();
        f1.fill_rect(0, 0, 4, 8, Rgb::BLUE);
        let f2 = Frame::filled(8, 8, Rgb::RED).unwrap();
        let a = ColorHistogram::of(&f1);
        let b = ColorHistogram::of(&f2);
        assert!((a.intersection_distance(&b) - b.intersection_distance(&a)).abs() < 1e-6);
        assert!((a.chi_square_distance(&b) - b.chi_square_distance(&a)).abs() < 1e-6);
    }

    #[test]
    fn partial_overlap_is_between_extremes() {
        let mut half = Frame::filled(8, 8, Rgb::BLACK).unwrap();
        half.fill_rect(0, 0, 4, 8, Rgb::WHITE);
        let black = ColorHistogram::of(&Frame::filled(8, 8, Rgb::BLACK).unwrap());
        let h = ColorHistogram::of(&half);
        let d = black.intersection_distance(&h);
        assert!(d > 0.4 && d < 0.6, "expected ~0.5, got {d}");
    }
}
