//! Raw RGB frames and the pixel operations the rest of the platform builds
//! on: blitting (runtime overlay compositing), rectangle fills (synthetic
//! footage), histograms (shot detection) and downsampling.

use std::sync::Arc;

use crate::color::Rgb;
use crate::error::MediaError;
use crate::Result;

/// Maximum supported frame edge, a sanity bound that keeps untrusted
/// container headers from requesting absurd allocations.
pub const MAX_DIM: u32 = 8192;

/// A single video frame: tightly packed 8-bit RGB, row-major.
///
/// Pixels live behind an [`Arc`], so cloning a frame — serving a cached
/// GOP, freezing a concealment frame, SKIP reconstruction — shares the
/// buffer instead of copying ~`w*h*3` bytes. Mutation copies on write
/// ([`Arc::make_mut`]); the compositing loops hoist that to one check
/// per call, not per pixel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: u32,
    height: u32,
    data: Arc<Vec<u8>>,
}

impl Frame {
    /// Creates a black frame of the given size.
    ///
    /// # Errors
    /// Returns [`MediaError::InvalidDimensions`] when either edge is zero or
    /// exceeds [`MAX_DIM`].
    pub fn new(width: u32, height: u32) -> Result<Frame> {
        Self::filled(width, height, Rgb::BLACK)
    }

    /// Creates a frame of the given size filled with `color`.
    pub fn filled(width: u32, height: u32, color: Rgb) -> Result<Frame> {
        if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
            return Err(MediaError::InvalidDimensions { dims: (width, height) });
        }
        let data = [color.r, color.g, color.b].repeat((width * height) as usize);
        Ok(Frame { width, height, data: Arc::new(data) })
    }

    /// Reconstructs a frame from raw RGB bytes (length must be `w*h*3`).
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Result<Frame> {
        if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
            return Err(MediaError::InvalidDimensions { dims: (width, height) });
        }
        if data.len() != (width * height * 3) as usize {
            return Err(MediaError::CorruptBitstream(format!(
                "raw frame byte count {} does not match {}x{}x3",
                data.len(),
                width,
                height
            )));
        }
        Ok(Frame { width, height, data: Arc::new(data) })
    }

    /// Frame width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The raw RGB bytes, row-major, 3 bytes per pixel.
    #[inline]
    pub fn raw(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw RGB bytes (copy-on-write if shared).
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [u8] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Number of pixels in the frame.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        (self.width * self.height) as usize
    }

    #[inline]
    fn offset(&self, x: u32, y: u32) -> usize {
        ((y * self.width + x) * 3) as usize
    }

    /// Reads the pixel at `(x, y)`. Returns `None` outside the frame.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Option<Rgb> {
        if x >= self.width || y >= self.height {
            return None;
        }
        let o = self.offset(x, y);
        Some(Rgb::new(self.data[o], self.data[o + 1], self.data[o + 2]))
    }

    /// Writes the pixel at `(x, y)`; out-of-bounds writes are ignored.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Rgb) {
        if x >= self.width || y >= self.height {
            return;
        }
        let o = self.offset(x, y);
        let data = Arc::make_mut(&mut self.data);
        data[o] = c.r;
        data[o + 1] = c.g;
        data[o + 2] = c.b;
    }

    /// Fills the whole frame with one colour.
    pub fn fill(&mut self, c: Rgb) {
        for px in Arc::make_mut(&mut self.data).chunks_exact_mut(3) {
            px[0] = c.r;
            px[1] = c.g;
            px[2] = c.b;
        }
    }

    /// Fills the axis-aligned rectangle `[x, x+w) × [y, y+h)`, clipped to
    /// the frame.
    pub fn fill_rect(&mut self, x: i64, y: i64, w: u32, h: u32, c: Rgb) {
        let x0 = x.clamp(0, self.width as i64) as u32;
        let y0 = y.clamp(0, self.height as i64) as u32;
        let x1 = (x + w as i64).clamp(x0 as i64, self.width as i64) as u32;
        let y1 = (y + h as i64).clamp(y0 as i64, self.height as i64) as u32;
        let width = self.width;
        let data = Arc::make_mut(&mut self.data);
        for yy in y0..y1 {
            let row = ((yy * width + x0) * 3) as usize;
            let row_end = ((yy * width + x1) * 3) as usize;
            for px in data[row..row_end].chunks_exact_mut(3) {
                px[0] = c.r;
                px[1] = c.g;
                px[2] = c.b;
            }
        }
    }

    /// Draws a filled circle centred at `(cx, cy)`, clipped to the frame.
    pub fn fill_circle(&mut self, cx: i64, cy: i64, radius: u32, c: Rgb) {
        let r = radius as i64;
        let y0 = (cy - r).max(0);
        let y1 = (cy + r + 1).min(self.height as i64);
        let width = self.width;
        let data = Arc::make_mut(&mut self.data);
        for yy in y0..y1 {
            let dy = yy - cy;
            let span = ((r * r - dy * dy) as f64).sqrt() as i64;
            let x0 = (cx - span).max(0);
            let x1 = (cx + span + 1).min(width as i64);
            if x0 >= x1 {
                continue;
            }
            let row = ((yy as u32 * width + x0 as u32) * 3) as usize;
            let row_end = ((yy as u32 * width + x1 as u32) * 3) as usize;
            for px in data[row..row_end].chunks_exact_mut(3) {
                px[0] = c.r;
                px[1] = c.g;
                px[2] = c.b;
            }
        }
    }

    /// The source-column range `[sx0, sx1)` of `src` that lands inside a
    /// destination of width `dst_w` when blitted at offset `x`.
    fn blit_cols(dst_w: u32, src_w: u32, x: i64) -> (u32, u32) {
        let sx0 = (-x).clamp(0, src_w as i64) as u32;
        let sx1 = (dst_w as i64 - x).clamp(sx0 as i64, src_w as i64) as u32;
        (sx0, sx1)
    }

    /// Copies `src` onto this frame with its top-left corner at `(x, y)`,
    /// clipping at the frame edges. This is the runtime's overlay
    /// compositing primitive ("an image object … is mounted on the video
    /// frame", paper §4.3). Each clipped source row is one `memcpy`.
    pub fn blit(&mut self, src: &Frame, x: i64, y: i64) {
        let (sx0, sx1) = Self::blit_cols(self.width, src.width, x);
        if sx0 >= sx1 {
            return;
        }
        let (width, height) = (self.width, self.height);
        let data = Arc::make_mut(&mut self.data);
        let n = (sx1 - sx0) as usize * 3;
        for sy in 0..src.height {
            let dy = y + sy as i64;
            if dy < 0 || dy >= height as i64 {
                continue;
            }
            let d0 = ((dy as u32 * width) + (x + sx0 as i64) as u32) as usize * 3;
            let s0 = ((sy * src.width) + sx0) as usize * 3;
            data[d0..d0 + n].copy_from_slice(&src.data[s0..s0 + n]);
        }
    }

    /// Like [`Frame::blit`] but skips pixels that equal `key`, giving the
    /// "image object with white background" effect from Figure 2 a proper
    /// colour-key transparency.
    pub fn blit_keyed(&mut self, src: &Frame, x: i64, y: i64, key: Rgb) {
        let (sx0, sx1) = Self::blit_cols(self.width, src.width, x);
        if sx0 >= sx1 {
            return;
        }
        let (width, height) = (self.width, self.height);
        let data = Arc::make_mut(&mut self.data);
        let key = [key.r, key.g, key.b];
        let n = (sx1 - sx0) as usize * 3;
        for sy in 0..src.height {
            let dy = y + sy as i64;
            if dy < 0 || dy >= height as i64 {
                continue;
            }
            let d0 = ((dy as u32 * width) + (x + sx0 as i64) as u32) as usize * 3;
            let s0 = ((sy * src.width) + sx0) as usize * 3;
            let drow = &mut data[d0..d0 + n];
            let srow = &src.data[s0..s0 + n];
            for (dpx, spx) in drow.chunks_exact_mut(3).zip(srow.chunks_exact(3)) {
                if spx != key {
                    dpx.copy_from_slice(spx);
                }
            }
        }
    }

    /// Average luma of the frame, 0–255.
    pub fn mean_luma(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mut sum: u64 = 0;
        for px in self.data.chunks_exact(3) {
            sum += Rgb::new(px[0], px[1], px[2]).luma() as u64;
        }
        sum as f64 / self.pixel_count() as f64
    }

    /// Returns a frame with both edges halved via 2×2 box averaging.
    /// Shot detection runs on downsampled frames for throughput, so this
    /// is a hot path: the common fully-in-bounds 2×2 case runs on raw
    /// row slices with no per-pixel bounds checks.
    pub fn downsample_2x(&self) -> Frame {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut data = Vec::with_capacity((w * h * 3) as usize);
        let src = &self.data;
        let stride = (self.width * 3) as usize;
        for y in 0..h {
            let y0 = (y * 2).min(self.height - 1) as usize;
            let y1 = (y * 2 + 1).min(self.height - 1) as usize;
            let row0 = &src[y0 * stride..y0 * stride + stride];
            let row1 = &src[y1 * stride..y1 * stride + stride];
            for x in 0..w {
                let x0 = ((x * 2).min(self.width - 1) * 3) as usize;
                let x1 = ((x * 2 + 1).min(self.width - 1) * 3) as usize;
                for ch in 0..3 {
                    let sum = row0[x0 + ch] as u32
                        + row0[x1 + ch] as u32
                        + row1[x0 + ch] as u32
                        + row1[x1 + ch] as u32;
                    data.push((sum / 4) as u8);
                }
            }
        }
        Frame::from_raw(w, h, data).expect("halved dims are valid")
    }

    /// Mean squared error between two same-sized frames.
    ///
    /// # Errors
    /// [`MediaError::DimensionMismatch`] when shapes differ.
    pub fn mse(&self, other: &Frame) -> Result<f64> {
        if self.width != other.width || self.height != other.height {
            return Err(MediaError::DimensionMismatch {
                expected: (self.width, self.height),
                actual: (other.width, other.height),
            });
        }
        let mut acc: u64 = 0;
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            let d = *a as i64 - *b as i64;
            acc += (d * d) as u64;
        }
        Ok(acc as f64 / self.data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_dimensions() {
        assert!(Frame::new(0, 10).is_err());
        assert!(Frame::new(10, 0).is_err());
        assert!(Frame::new(MAX_DIM + 1, 10).is_err());
        assert!(Frame::new(16, 16).is_ok());
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(Frame::from_raw(2, 2, vec![0; 12]).is_ok());
        assert!(Frame::from_raw(2, 2, vec![0; 11]).is_err());
        assert!(Frame::from_raw(0, 2, vec![]).is_err());
    }

    #[test]
    fn get_set_roundtrip_and_bounds() {
        let mut f = Frame::new(4, 3).unwrap();
        f.set(2, 1, Rgb::RED);
        assert_eq!(f.get(2, 1), Some(Rgb::RED));
        assert_eq!(f.get(4, 0), None);
        assert_eq!(f.get(0, 3), None);
        // Out-of-bounds set is a no-op, not a panic.
        f.set(100, 100, Rgb::BLUE);
    }

    #[test]
    fn fill_rect_clips() {
        let mut f = Frame::new(8, 8).unwrap();
        f.fill_rect(-2, -2, 4, 4, Rgb::GREEN);
        assert_eq!(f.get(0, 0), Some(Rgb::GREEN));
        assert_eq!(f.get(1, 1), Some(Rgb::GREEN));
        assert_eq!(f.get(2, 2), Some(Rgb::BLACK));
        f.fill_rect(6, 6, 10, 10, Rgb::RED);
        assert_eq!(f.get(7, 7), Some(Rgb::RED));
        assert_eq!(f.get(5, 7), Some(Rgb::BLACK));
    }

    #[test]
    fn fill_circle_is_roughly_round() {
        let mut f = Frame::new(21, 21).unwrap();
        f.fill_circle(10, 10, 5, Rgb::WHITE);
        assert_eq!(f.get(10, 10), Some(Rgb::WHITE));
        assert_eq!(f.get(10, 5), Some(Rgb::WHITE));
        assert_eq!(f.get(10, 15), Some(Rgb::WHITE));
        // Corner of the bounding box stays background.
        assert_eq!(f.get(5, 5), Some(Rgb::BLACK));
    }

    #[test]
    fn blit_clips_and_copies() {
        let mut dst = Frame::new(8, 8).unwrap();
        let src = Frame::filled(4, 4, Rgb::BLUE).unwrap();
        dst.blit(&src, 6, 6);
        assert_eq!(dst.get(6, 6), Some(Rgb::BLUE));
        assert_eq!(dst.get(7, 7), Some(Rgb::BLUE));
        assert_eq!(dst.get(5, 5), Some(Rgb::BLACK));
        dst.blit(&src, -3, -3);
        assert_eq!(dst.get(0, 0), Some(Rgb::BLUE));
        assert_eq!(dst.get(1, 1), Some(Rgb::BLACK)); // already past src extent
    }

    #[test]
    fn blit_keyed_skips_key_colour() {
        let mut dst = Frame::filled(4, 4, Rgb::BLACK).unwrap();
        let mut src = Frame::filled(2, 2, Rgb::WHITE).unwrap();
        src.set(0, 0, Rgb::RED);
        dst.blit_keyed(&src, 0, 0, Rgb::WHITE);
        assert_eq!(dst.get(0, 0), Some(Rgb::RED));
        assert_eq!(dst.get(1, 0), Some(Rgb::BLACK)); // white pixel skipped
    }

    #[test]
    fn mean_luma_tracks_content() {
        let black = Frame::new(8, 8).unwrap();
        let white = Frame::filled(8, 8, Rgb::WHITE).unwrap();
        assert!(black.mean_luma() < 1.0);
        assert!(white.mean_luma() > 250.0);
    }

    #[test]
    fn downsample_halves_and_averages() {
        let mut f = Frame::new(4, 4).unwrap();
        f.fill_rect(0, 0, 2, 2, Rgb::WHITE);
        let d = f.downsample_2x();
        assert_eq!((d.width(), d.height()), (2, 2));
        assert_eq!(d.get(0, 0), Some(Rgb::WHITE));
        assert_eq!(d.get(1, 1), Some(Rgb::BLACK));
    }

    #[test]
    fn downsample_never_hits_zero() {
        let f = Frame::new(1, 1).unwrap();
        let d = f.downsample_2x();
        assert_eq!((d.width(), d.height()), (1, 1));
    }

    #[test]
    fn mse_zero_for_identical_and_checks_dims() {
        let a = Frame::filled(4, 4, Rgb::GREY).unwrap();
        let b = a.clone();
        assert_eq!(a.mse(&b).unwrap(), 0.0);
        let c = Frame::new(5, 4).unwrap();
        assert!(a.mse(&c).is_err());
        let mut d = a.clone();
        d.set(0, 0, Rgb::new(129, 128, 128));
        assert!(a.mse(&d).unwrap() > 0.0);
    }
}
