//! Deterministic procedural footage.
//!
//! The paper's course designers "produce scenarios by shooting videos" and
//! the authoring tool then cuts them into segments. Camera footage is not
//! available in this reproduction, so this module generates *synthetic
//! footage with ground-truth shot boundaries*: a sequence of shots, each
//! with its own backdrop colour, moving sprites, slow luminance drift and
//! sensor-style noise, joined by hard cuts. The ground truth makes shot
//! detection *measurably* correct (EXP-1), something real footage cannot
//! provide without hand labelling.
//!
//! Rendering is fully deterministic given the [`FootageSpec`]: the spec
//! carries its own noise seed and all randomness in `FootageSpec::random`
//! flows through a caller-supplied RNG.

use crate::color::Rgb;
use crate::frame::Frame;
use crate::timeline::FrameRate;
use rand::Rng;

/// A moving solid-colour sprite inside one shot.
#[derive(Debug, Clone, PartialEq)]
pub struct SpriteSpec {
    /// Sprite shape.
    pub shape: SpriteShape,
    /// Fill colour.
    pub color: Rgb,
    /// Initial centre position in pixels.
    pub pos: (f32, f32),
    /// Velocity in pixels per frame; sprites bounce off frame edges.
    pub vel: (f32, f32),
}

/// Shape of a synthetic sprite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpriteShape {
    /// Axis-aligned rectangle of the given width × height.
    Rect(u32, u32),
    /// Filled circle of the given radius.
    Circle(u32),
}

/// One shot: a run of frames sharing a backdrop and sprite cast.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotSpec {
    /// Number of frames in the shot (must be ≥ 1 to contribute).
    pub frames: usize,
    /// Backdrop colour.
    pub background: Rgb,
    /// Sprites moving across the shot.
    pub sprites: Vec<SpriteSpec>,
    /// Total luminance drift (added gradually over the shot), simulating
    /// lighting changes — the classic false-positive source for naive
    /// fixed-threshold detectors.
    pub luma_drift: i16,
    /// Peak amplitude of per-pixel noise (0 disables).
    pub noise: u8,
}

impl ShotSpec {
    /// A minimal static shot, useful in tests.
    pub fn plain(frames: usize, background: Rgb) -> ShotSpec {
        ShotSpec { frames, background, sprites: Vec::new(), luma_drift: 0, noise: 0 }
    }
}

/// A complete synthetic-footage description.
#[derive(Debug, Clone, PartialEq)]
pub struct FootageSpec {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frame rate of the rendered footage.
    pub rate: FrameRate,
    /// Shots in presentation order.
    pub shots: Vec<ShotSpec>,
    /// Seed for the deterministic noise generator.
    pub noise_seed: u64,
}

/// Rendered footage plus its ground truth.
#[derive(Debug, Clone)]
pub struct Footage {
    /// The rendered frames.
    pub frames: Vec<Frame>,
    /// Frame rate.
    pub rate: FrameRate,
    /// Ground-truth cut positions: index of the *first frame* of every shot
    /// after the first. Sorted ascending.
    pub cuts: Vec<usize>,
}

impl Footage {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the footage has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Tiny SplitMix64 step — deterministic noise without threading a full RNG
/// through the render loop.
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FootageSpec {
    /// Renders the footage deterministically.
    ///
    /// Each shot starts from its backdrop, applies the gradual luma drift,
    /// draws its sprites at their integrated positions (bouncing off the
    /// edges), then sprinkles noise.
    pub fn render(&self) -> crate::Result<Footage> {
        let mut frames = Vec::new();
        let mut cuts = Vec::new();
        let mut noise_state = self.noise_seed;

        for (shot_idx, shot) in self.shots.iter().enumerate() {
            if shot.frames == 0 {
                continue;
            }
            if !frames.is_empty() {
                cuts.push(frames.len());
            }
            let mut sprites: Vec<(f32, f32, f32, f32)> = shot
                .sprites
                .iter()
                .map(|s| (s.pos.0, s.pos.1, s.vel.0, s.vel.1))
                .collect();

            for fi in 0..shot.frames {
                let t = if shot.frames > 1 {
                    fi as f32 / (shot.frames - 1) as f32
                } else {
                    0.0
                };
                let drift = (shot.luma_drift as f32 * t).round() as i16;
                let bg = shot.background.shifted(drift);
                let mut frame = Frame::filled(self.width, self.height, bg)?;

                for (spec, state) in shot.sprites.iter().zip(sprites.iter_mut()) {
                    let color = spec.color.shifted(drift);
                    match spec.shape {
                        SpriteShape::Rect(w, h) => frame.fill_rect(
                            (state.0 - w as f32 / 2.0) as i64,
                            (state.1 - h as f32 / 2.0) as i64,
                            w,
                            h,
                            color,
                        ),
                        SpriteShape::Circle(r) => {
                            frame.fill_circle(state.0 as i64, state.1 as i64, r, color)
                        }
                    }
                    // Integrate and bounce.
                    state.0 += state.2;
                    state.1 += state.3;
                    if state.0 < 0.0 || state.0 >= self.width as f32 {
                        state.2 = -state.2;
                        state.0 = state.0.clamp(0.0, self.width as f32 - 1.0);
                    }
                    if state.1 < 0.0 || state.1 >= self.height as f32 {
                        state.3 = -state.3;
                        state.1 = state.1.clamp(0.0, self.height as f32 - 1.0);
                    }
                }

                if shot.noise > 0 {
                    let amp = shot.noise as i16;
                    let data = frame.raw_mut();
                    // One 64-bit draw covers eight byte-sized samples.
                    let mut i = 0;
                    while i < data.len() {
                        let bits = splitmix(&mut noise_state);
                        for k in 0..8 {
                            if i + k >= data.len() {
                                break;
                            }
                            let b = ((bits >> (k * 8)) & 0xFF) as i16;
                            let delta = (b % (2 * amp + 1)) - amp;
                            data[i + k] = (data[i + k] as i16 + delta).clamp(0, 255) as u8;
                        }
                        i += 8;
                    }
                }
                frames.push(frame);
            }
            let _ = shot_idx;
        }

        Ok(Footage { frames, rate: self.rate, cuts })
    }

    /// Draws a randomised multi-shot spec: `n_shots` shots of
    /// `min_len..=max_len` frames each, distinct backdrops, 1–3 sprites per
    /// shot, mild drift and noise. Deterministic for a given RNG state.
    pub fn random<R: Rng>(
        rng: &mut R,
        width: u32,
        height: u32,
        n_shots: usize,
        min_len: usize,
        max_len: usize,
    ) -> FootageSpec {
        assert!(min_len >= 1 && max_len >= min_len, "invalid shot-length range");
        let mut shots = Vec::with_capacity(n_shots);
        for s in 0..n_shots {
            let frames = rng.gen_range(min_len..=max_len);
            // Offset shot seeds so neighbouring backdrops differ strongly.
            let background = Rgb::from_seed(rng.gen::<u64>() ^ (s as u64) << 32);
            let n_sprites = rng.gen_range(1..=3);
            let sprites = (0..n_sprites)
                .map(|_| {
                    let shape = if rng.gen_bool(0.5) {
                        SpriteShape::Rect(
                            rng.gen_range(width / 16..width / 4).max(2),
                            rng.gen_range(height / 16..height / 4).max(2),
                        )
                    } else {
                        SpriteShape::Circle(rng.gen_range(2..height / 6).max(2))
                    };
                    SpriteSpec {
                        shape,
                        color: Rgb::from_seed(rng.gen()),
                        pos: (
                            rng.gen_range(0.0..width as f32),
                            rng.gen_range(0.0..height as f32),
                        ),
                        vel: (rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)),
                    }
                })
                .collect();
            shots.push(ShotSpec {
                frames,
                background,
                sprites,
                luma_drift: rng.gen_range(-12..=12),
                noise: rng.gen_range(0..4),
            });
        }
        FootageSpec {
            width,
            height,
            rate: FrameRate::FPS30,
            shots,
            noise_seed: rng.gen(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_shot_spec() -> FootageSpec {
        FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(5, Rgb::new(200, 40, 40)),
                ShotSpec::plain(7, Rgb::new(40, 40, 200)),
            ],
            noise_seed: 7,
        }
    }

    #[test]
    fn render_counts_and_cuts() {
        let footage = two_shot_spec().render().unwrap();
        assert_eq!(footage.len(), 12);
        assert_eq!(footage.cuts, vec![5]);
        assert_eq!(footage.frames[0].get(0, 0), Some(Rgb::new(200, 40, 40)));
        assert_eq!(footage.frames[5].get(0, 0), Some(Rgb::new(40, 40, 200)));
    }

    #[test]
    fn render_is_deterministic() {
        let spec = FootageSpec {
            shots: vec![ShotSpec {
                frames: 6,
                background: Rgb::GREY,
                sprites: vec![SpriteSpec {
                    shape: SpriteShape::Circle(4),
                    color: Rgb::RED,
                    pos: (10.0, 10.0),
                    vel: (3.0, 2.0),
                }],
                luma_drift: 10,
                noise: 3,
            }],
            ..two_shot_spec()
        };
        let a = spec.render().unwrap();
        let b = spec.render().unwrap();
        assert_eq!(a.frames, b.frames);
    }

    #[test]
    fn zero_length_shots_are_skipped() {
        let spec = FootageSpec {
            shots: vec![
                ShotSpec::plain(0, Rgb::RED),
                ShotSpec::plain(3, Rgb::GREEN),
                ShotSpec::plain(0, Rgb::BLUE),
                ShotSpec::plain(2, Rgb::WHITE),
            ],
            ..two_shot_spec()
        };
        let footage = spec.render().unwrap();
        assert_eq!(footage.len(), 5);
        assert_eq!(footage.cuts, vec![3]);
    }

    #[test]
    fn sprites_move_between_frames() {
        let spec = FootageSpec {
            shots: vec![ShotSpec {
                frames: 4,
                background: Rgb::BLACK,
                sprites: vec![SpriteSpec {
                    shape: SpriteShape::Rect(4, 4),
                    color: Rgb::WHITE,
                    pos: (6.0, 6.0),
                    vel: (5.0, 0.0),
                }],
                luma_drift: 0,
                noise: 0,
            }],
            ..two_shot_spec()
        };
        let footage = spec.render().unwrap();
        assert_ne!(footage.frames[0], footage.frames[1]);
        // Sprite starts around x=6 and moves right.
        assert_eq!(footage.frames[0].get(6, 6), Some(Rgb::WHITE));
        assert_eq!(footage.frames[2].get(16, 6), Some(Rgb::WHITE));
    }

    #[test]
    fn luma_drift_brightens_over_shot() {
        let spec = FootageSpec {
            shots: vec![ShotSpec {
                frames: 10,
                background: Rgb::GREY,
                sprites: vec![],
                luma_drift: 40,
                noise: 0,
            }],
            ..two_shot_spec()
        };
        let footage = spec.render().unwrap();
        assert!(footage.frames[9].mean_luma() > footage.frames[0].mean_luma() + 30.0);
    }

    #[test]
    fn random_spec_is_reproducible_and_renders() {
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        let s1 = FootageSpec::random(&mut r1, 64, 48, 4, 8, 16);
        let s2 = FootageSpec::random(&mut r2, 64, 48, 4, 8, 16);
        assert_eq!(s1, s2);
        let footage = s1.render().unwrap();
        assert_eq!(footage.cuts.len(), 3);
        assert!(footage.len() >= 4 * 8 && footage.len() <= 4 * 16);
    }

    #[test]
    fn noise_stays_in_range_and_perturbs() {
        let spec = FootageSpec {
            shots: vec![ShotSpec {
                frames: 2,
                background: Rgb::GREY,
                sprites: vec![],
                luma_drift: 0,
                noise: 3,
            }],
            ..two_shot_spec()
        };
        let footage = spec.render().unwrap();
        let f = &footage.frames[0];
        let mut saw_diff = false;
        for px in f.raw() {
            assert!((*px as i16 - 128).abs() <= 3);
            if *px != 128 {
                saw_diff = true;
            }
        }
        assert!(saw_diff, "noise had no effect");
    }
}
