//! Frame-accurate time arithmetic.
//!
//! Interactive video keeps two clocks in sync: the *frame index* inside a
//! segment and the *wall time* reported to the player UI. [`FrameRate`]
//! converts between them exactly (rational arithmetic, no drift), and
//! [`MediaTime`] is a microsecond timestamp with saturating operations.

use std::fmt;

/// A rational frame rate, `num/den` frames per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRate {
    num: u32,
    den: u32,
}

impl FrameRate {
    /// Standard 30 fps used by the synthetic footage generator.
    pub const FPS30: FrameRate = FrameRate { num: 30, den: 1 };
    /// Cinema 24 fps.
    pub const FPS24: FrameRate = FrameRate { num: 24, den: 1 };
    /// NTSC 29.97 fps (30000/1001).
    pub const NTSC: FrameRate = FrameRate { num: 30000, den: 1001 };

    /// Creates a frame rate. Returns `None` when either part is zero.
    pub fn new(num: u32, den: u32) -> Option<FrameRate> {
        if num == 0 || den == 0 {
            None
        } else {
            Some(FrameRate { num, den })
        }
    }

    /// Numerator of the rate.
    pub fn num(&self) -> u32 {
        self.num
    }

    /// Denominator of the rate.
    pub fn den(&self) -> u32 {
        self.den
    }

    /// Frames per second as a float (for display only).
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Timestamp of frame `index`, rounded *up* to the next microsecond so
    /// that the returned time always falls within the frame (making
    /// `time_to_frame(frame_to_time(i)) == i` hold for every rate).
    pub fn frame_to_time(&self, index: u64) -> MediaTime {
        // t = index * den / num seconds = index * den * 1e6 / num µs.
        let num = self.num as u128;
        let micros = (index as u128 * self.den as u128 * 1_000_000).div_ceil(num);
        MediaTime::from_micros(micros.min(u64::MAX as u128) as u64)
    }

    /// Index of the frame covering timestamp `t`.
    pub fn time_to_frame(&self, t: MediaTime) -> u64 {
        let idx = t.as_micros() as u128 * self.num as u128 / (self.den as u128 * 1_000_000);
        idx.min(u64::MAX as u128) as u64
    }

    /// Duration of one frame in microseconds, rounded down.
    pub fn frame_duration(&self) -> MediaTime {
        MediaTime::from_micros((self.den as u64 * 1_000_000) / self.num as u64)
    }
}

impl fmt::Display for FrameRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{} fps", self.num)
        } else {
            write!(f, "{}/{} fps", self.num, self.den)
        }
    }
}

/// A media timestamp in microseconds since the start of the video.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MediaTime(u64);

impl MediaTime {
    /// Timestamp zero.
    pub const ZERO: MediaTime = MediaTime(0);

    /// Builds a timestamp from microseconds.
    pub const fn from_micros(us: u64) -> MediaTime {
        MediaTime(us)
    }

    /// Builds a timestamp from milliseconds.
    pub const fn from_millis(ms: u64) -> MediaTime {
        MediaTime(ms * 1000)
    }

    /// Builds a timestamp from whole seconds.
    pub const fn from_secs(s: u64) -> MediaTime {
        MediaTime(s * 1_000_000)
    }

    /// The timestamp in microseconds.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// The timestamp in (truncated) milliseconds.
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1000
    }

    /// The timestamp in seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: MediaTime) -> MediaTime {
        MediaTime(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction (floors at zero).
    pub fn saturating_sub(self, other: MediaTime) -> MediaTime {
        MediaTime(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for MediaTime {
    /// Formats as `mm:ss.mmm`, the notation the authoring timeline uses.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.as_millis();
        let minutes = total_ms / 60_000;
        let seconds = (total_ms % 60_000) / 1000;
        let millis = total_ms % 1000;
        write!(f, "{minutes:02}:{seconds:02}.{millis:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_rate_rejects_zero() {
        assert!(FrameRate::new(0, 1).is_none());
        assert!(FrameRate::new(1, 0).is_none());
        assert!(FrameRate::new(30, 1).is_some());
    }

    #[test]
    fn frame_time_roundtrip_exact_rates() {
        let fr = FrameRate::FPS30;
        for idx in [0u64, 1, 29, 30, 31, 12345] {
            let t = fr.frame_to_time(idx);
            assert_eq!(fr.time_to_frame(t), idx, "frame {idx}");
        }
    }

    #[test]
    fn frame_time_roundtrip_ntsc() {
        let fr = FrameRate::NTSC;
        for idx in [0u64, 1, 1000, 100_003] {
            let t = fr.frame_to_time(idx);
            assert_eq!(fr.time_to_frame(t), idx, "frame {idx}");
        }
    }

    #[test]
    fn time_to_frame_mid_frame() {
        let fr = FrameRate::FPS30;
        // 40 ms into a 30fps stream is still frame 1 (frame 1 spans
        // 33.3–66.6 ms).
        assert_eq!(fr.time_to_frame(MediaTime::from_millis(40)), 1);
        assert_eq!(fr.time_to_frame(MediaTime::from_millis(70)), 2);
    }

    #[test]
    fn frame_duration_matches_rate() {
        assert_eq!(FrameRate::FPS30.frame_duration().as_micros(), 33_333);
        assert_eq!(FrameRate::FPS24.frame_duration().as_micros(), 41_666);
    }

    #[test]
    fn media_time_constructors_agree() {
        assert_eq!(MediaTime::from_secs(2), MediaTime::from_millis(2000));
        assert_eq!(MediaTime::from_millis(3), MediaTime::from_micros(3000));
        assert_eq!(MediaTime::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn saturating_ops() {
        let a = MediaTime::from_secs(1);
        let b = MediaTime::from_secs(3);
        assert_eq!(a.saturating_sub(b), MediaTime::ZERO);
        assert_eq!(b.saturating_sub(a), MediaTime::from_secs(2));
        assert_eq!(
            MediaTime::from_micros(u64::MAX).saturating_add(a),
            MediaTime::from_micros(u64::MAX)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(MediaTime::from_millis(61_234).to_string(), "01:01.234");
        assert_eq!(FrameRate::FPS30.to_string(), "30 fps");
        assert_eq!(FrameRate::NTSC.to_string(), "30000/1001 fps");
    }
}
