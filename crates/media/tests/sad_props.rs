//! Bit-exactness properties for the optimized [`Plane::block_sad`].
//!
//! The word-compare fast path must be indistinguishable from the naive
//! per-sample reference (`block_sad_reference`) for every input the
//! motion search can produce: arbitrary block geometry, motion vectors
//! that stay inside the reference or clamp off any edge, and every
//! early-exit threshold — including thresholds that trip mid-block.

use proptest::prelude::*;

use vgbl_media::codec::plane::Plane;

/// A plane of the given shape filled from a non-empty byte vector
/// (cycled to fit), so planes carry arbitrary content without
/// generating `w*h` independent values per case.
fn plane_from(w: u32, h: u32, bytes: &[u8]) -> Plane {
    let n = (w * h) as usize;
    let data: Vec<u8> = bytes.iter().copied().cycle().take(n).collect();
    Plane::from_raw(w, h, data)
}

proptest! {
    // In-bounds and out-of-frame (clamped) probes, full blocks.
    #[test]
    fn optimized_sad_matches_reference(
        w in 1u32..48,
        h in 1u32..48,
        cur_bytes in proptest::collection::vec(any::<u8>(), 1..256),
        ref_bytes in proptest::collection::vec(any::<u8>(), 1..256),
        bx in 0u32..48,
        by in 0u32..48,
        bw in 1u32..20,
        bh in 1u32..20,
        dx in -24i64..24,
        dy in -24i64..24,
    ) {
        // Keep the block inside `cur` (the motion search always does);
        // the motion vector may still point anywhere, exercising both
        // the clamped fallback and the in-bounds fast path.
        let x = bx.min(w - 1);
        let y = by.min(h - 1);
        let bw = bw.min(w - x);
        let bh = bh.min(h - y);
        let cur = plane_from(w, h, &cur_bytes);
        let reference = plane_from(w, h, &ref_bytes);
        let fast = cur.block_sad(&reference, x, y, bw, bh, dx, dy, u64::MAX);
        let slow = cur.block_sad_reference(&reference, x, y, bw, bh, dx, dy, u64::MAX);
        prop_assert_eq!(fast, slow);
    }

    // Early-exit thresholds, including ones that trip on the first row
    // and ones that never trip — returned values must match exactly,
    // not merely both exceed `best`.
    #[test]
    fn early_exit_is_bit_identical(
        w in 1u32..40,
        h in 1u32..40,
        cur_bytes in proptest::collection::vec(any::<u8>(), 1..128),
        ref_bytes in proptest::collection::vec(any::<u8>(), 1..128),
        dx in -12i64..12,
        dy in -12i64..12,
        best in 0u64..100_000,
    ) {
        let bw = w.min(16);
        let bh = h.min(16);
        let cur = plane_from(w, h, &cur_bytes);
        let reference = plane_from(w, h, &ref_bytes);
        let fast = cur.block_sad(&reference, 0, 0, bw, bh, dx, dy, best);
        let slow = cur.block_sad_reference(&reference, 0, 0, bw, bh, dx, dy, best);
        prop_assert_eq!(fast, slow);
    }

    // The zero vector on identical planes — the motion search's seed
    // probe — is exactly zero, never early-exited into a partial sum.
    #[test]
    fn identical_planes_zero_sad(
        w in 1u32..40,
        h in 1u32..40,
        bytes in proptest::collection::vec(any::<u8>(), 1..128),
        best in 1u64..1000,
    ) {
        let p = plane_from(w, h, &bytes);
        prop_assert_eq!(p.block_sad(&p, 0, 0, w.min(16), h.min(16), 0, 0, best), 0);
    }
}
