//! Property tests for the media substrate's foundations: bit I/O,
//! Golomb codes, frame operations, timelines and segment tables.

use proptest::prelude::*;

use vgbl_media::codec::bitio::{BitReader, BitWriter};
use vgbl_media::color::Rgb;
use vgbl_media::frame::Frame;
use vgbl_media::histogram::ColorHistogram;
use vgbl_media::timeline::{FrameRate, MediaTime};
use vgbl_media::SegmentTable;

proptest! {
    #[test]
    fn ue_se_roundtrip(values in proptest::collection::vec((any::<u32>(), any::<i32>()), 0..64)) {
        let mut w = BitWriter::new();
        for (u, s) in &values {
            w.put_ue(*u as u64);
            w.put_se(*s as i64);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (u, s) in &values {
            prop_assert_eq!(r.get_ue().unwrap(), *u as u64);
            prop_assert_eq!(r.get_se().unwrap(), *s as i64);
        }
    }

    #[test]
    fn raw_bits_roundtrip(chunks in proptest::collection::vec((any::<u64>(), 1u8..=64), 0..32)) {
        let mut w = BitWriter::new();
        for (v, n) in &chunks {
            let masked = if *n == 64 { *v } else { v & ((1u64 << n) - 1) };
            w.put_bits(masked, *n);
        }
        let expected_bits: usize = chunks.iter().map(|(_, n)| *n as usize).sum();
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, n) in &chunks {
            let masked = if *n == 64 { *v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.get_bits(*n).unwrap(), masked);
        }
    }

    #[test]
    fn bit_reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut r = BitReader::new(&bytes);
        // Drain it with mixed reads until exhaustion; must only error.
        loop {
            if r.get_ue().is_err() {
                break;
            }
            if r.get_se().is_err() {
                break;
            }
        }
    }

    #[test]
    fn frame_fill_rect_stays_inside(
        x in -50i64..100, y in -50i64..100, w in 0u32..80, h in 0u32..80,
    ) {
        let mut f = Frame::new(40, 30).unwrap();
        f.fill_rect(x, y, w, h, Rgb::RED);
        // Pixels outside the rect are untouched; inside (clipped) are red.
        for py in 0..30u32 {
            for px in 0..40u32 {
                let inside = (px as i64) >= x
                    && (px as i64) < x + w as i64
                    && (py as i64) >= y
                    && (py as i64) < y + h as i64;
                let expected = if inside { Rgb::RED } else { Rgb::BLACK };
                prop_assert_eq!(f.get(px, py).unwrap(), expected, "at ({}, {})", px, py);
            }
        }
    }

    #[test]
    fn blit_matches_per_pixel_model(
        dx in -20i64..40, dy in -20i64..40, sw in 1u32..16, sh in 1u32..16,
    ) {
        let src = Frame::filled(sw, sh, Rgb::GREEN).unwrap();
        let mut dst = Frame::new(32, 24).unwrap();
        dst.blit(&src, dx, dy);
        for py in 0..24u32 {
            for px in 0..32u32 {
                let from_src = (px as i64) >= dx
                    && (px as i64) < dx + sw as i64
                    && (py as i64) >= dy
                    && (py as i64) < dy + sh as i64;
                let expected = if from_src { Rgb::GREEN } else { Rgb::BLACK };
                prop_assert_eq!(dst.get(px, py).unwrap(), expected);
            }
        }
    }

    #[test]
    fn downsample_preserves_mean_roughly(seed in any::<u64>()) {
        // A random-ish two-tone frame: the 2x2 box filter must keep the
        // global mean within quantisation error.
        let mut f = Frame::new(16, 16).unwrap();
        let mut s = seed;
        for y in 0..16 {
            for x in 0..16 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = (s >> 32) as u8;
                f.set(x, y, Rgb::new(v, v, v));
            }
        }
        let d = f.downsample_2x();
        let diff = (f.mean_luma() - d.mean_luma()).abs();
        prop_assert!(diff < 2.0, "means drifted: {} vs {}", f.mean_luma(), d.mean_luma());
    }

    #[test]
    fn histogram_mass_is_one(seed in any::<u64>(), w in 1u32..32, h in 1u32..32) {
        let f = Frame::filled(w, h, Rgb::from_seed(seed)).unwrap();
        let hist = ColorHistogram::of(&f);
        let total: f32 = hist.bins().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        prop_assert!(hist.bins().iter().all(|b| (0.0..=1.0).contains(b)));
    }

    #[test]
    fn histogram_distances_bounded(a in any::<u64>(), b in any::<u64>()) {
        let fa = Frame::filled(8, 8, Rgb::from_seed(a)).unwrap();
        let fb = Frame::filled(8, 8, Rgb::from_seed(b)).unwrap();
        let ha = ColorHistogram::of(&fa);
        let hb = ColorHistogram::of(&fb);
        let d1 = ha.intersection_distance(&hb);
        let d2 = ha.chi_square_distance(&hb);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&d1));
        prop_assert!((0.0..=1.0 + 1e-6).contains(&d2));
        // Symmetry.
        prop_assert!((d1 - hb.intersection_distance(&ha)).abs() < 1e-6);
        prop_assert!((d2 - hb.chi_square_distance(&ha)).abs() < 1e-6);
    }

    #[test]
    fn frame_time_roundtrip_any_rate(num in 1u32..240, den in 1u32..1001, idx in 0u64..100_000) {
        let rate = FrameRate::new(num, den).unwrap();
        let t = rate.frame_to_time(idx);
        prop_assert_eq!(rate.time_to_frame(t), idx);
    }

    #[test]
    fn media_time_saturating_ops(a in any::<u64>(), b in any::<u64>()) {
        let ta = MediaTime::from_micros(a);
        let tb = MediaTime::from_micros(b);
        prop_assert_eq!(ta.saturating_add(tb).as_micros(), a.saturating_add(b));
        prop_assert_eq!(ta.saturating_sub(tb).as_micros(), a.saturating_sub(b));
    }

    #[test]
    fn segment_split_then_merge_is_identity(
        frame_count in 2usize..300,
        cut in 1usize..299,
    ) {
        prop_assume!(cut < frame_count);
        let mut table = SegmentTable::whole(frame_count).unwrap();
        table.split_at(cut).unwrap();
        prop_assert_eq!(table.len(), 2);
        table.merge_after(cut - 1).unwrap();
        prop_assert_eq!(&table, &SegmentTable::whole(frame_count).unwrap());
    }

    #[test]
    fn segment_at_always_agrees_with_contains(
        frame_count in 1usize..200,
        cuts in proptest::collection::btree_set(1usize..199, 0..8),
        probe in 0usize..220,
    ) {
        let cuts: Vec<usize> = cuts.into_iter().filter(|&c| c < frame_count).collect();
        let table = SegmentTable::from_cuts(frame_count, &cuts).unwrap();
        match table.segment_at(probe) {
            Some(seg) => prop_assert!(seg.contains(probe)),
            None => prop_assert!(probe >= frame_count),
        }
    }
}

// Decode-heavy properties get fewer cases: each case encodes a small
// video before probing it.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Cached seeks are byte-identical to direct frame decoding for every
    // GOP size, seek order and cache capacity — including capacity 0
    // (disabled) and 1 (maximal thrash), where the cache degenerates to
    // pure re-decoding but must stay correct.
    #[test]
    fn cached_seek_is_always_bit_exact(
        seed in any::<u64>(),
        gop in 1usize..8,
        frames in 2usize..20,
        capacity in 0usize..5,
        order in proptest::collection::vec(0usize..1000, 1..12),
    ) {
        use vgbl_media::cache::{GopCache, VideoId};
        use vgbl_media::codec::{Decoder, EncodeConfig, Encoder};
        use vgbl_media::seek::seek_cached;
        use vgbl_media::synth::{FootageSpec, ShotSpec};

        let footage = FootageSpec {
            width: 16,
            height: 12,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(frames, Rgb::new(120, 90, 60))],
            noise_seed: seed,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let dec = Decoder::default();
        let id = VideoId::of(&video);
        let cache = GopCache::new(capacity);
        for &o in &order {
            let target = o % frames;
            let (cached, stats) = seek_cached(&dec, &video, id, &cache, target).unwrap();
            let (direct, walked) = dec.decode_frame(&video, target).unwrap();
            prop_assert_eq!(&cached, &direct, "target {}", target);
            prop_assert_eq!(stats.keyframe, video.keyframe_before(target).unwrap());
            // A miss decodes the whole GOP; a hit decodes nothing.
            prop_assert!(
                stats.frames_decoded == 0 || stats.frames_decoded >= walked,
                "gop decode ({}) at least the direct walk ({})",
                stats.frames_decoded,
                walked
            );
        }
    }

    // `average_seek_cost`'s closed-form accounting agrees with the
    // per-seek `SeekStats::frames_decoded` that `seek` actually reports.
    #[test]
    fn average_seek_cost_matches_reported_stats(
        seed in any::<u64>(),
        gop in 1usize..10,
        frames in 2usize..24,
        raw_targets in proptest::collection::vec(0usize..1000, 1..16),
    ) {
        use vgbl_media::codec::{Decoder, EncodeConfig, Encoder};
        use vgbl_media::seek::{average_seek_cost, seek};
        use vgbl_media::synth::{FootageSpec, ShotSpec};

        let targets: Vec<usize> = raw_targets.iter().map(|t| t % frames).collect();
        let footage = FootageSpec {
            width: 16,
            height: 12,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(frames, Rgb::new(60, 90, 120))],
            noise_seed: seed,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let dec = Decoder::default();
        let total: usize = targets
            .iter()
            .map(|&t| seek(&dec, &video, t).unwrap().1.frames_decoded)
            .sum();
        let avg = average_seek_cost(&video, &targets).unwrap();
        let measured = total as f64 / targets.len() as f64;
        prop_assert!(
            (avg - measured).abs() < 1e-9,
            "analytic {} vs measured {}",
            avg,
            measured
        );
    }
}
