//! Authoring error type.

use std::fmt;

/// Errors from the authoring tool.
#[derive(Debug, Clone, PartialEq)]
pub enum AuthorError {
    /// A scene-model operation failed.
    Scene(vgbl_scene::SceneError),
    /// A script (condition/action/event) failed to parse.
    Script(vgbl_script::ScriptError),
    /// A media operation failed.
    Media(vgbl_media::MediaError),
    /// Nothing to undo/redo.
    NothingToUndo,
    /// Nothing to redo.
    NothingToRedo,
    /// A command precondition failed (message explains).
    Command(String),
    /// The project file failed to parse.
    ProjectParse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The project violates an integrity invariant.
    Integrity(String),
    /// A filesystem operation failed (message carries the path and cause).
    Io(String),
}

impl fmt::Display for AuthorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthorError::Scene(e) => write!(f, "scene error: {e}"),
            AuthorError::Script(e) => write!(f, "script error: {e}"),
            AuthorError::Media(e) => write!(f, "media error: {e}"),
            AuthorError::NothingToUndo => write!(f, "nothing to undo"),
            AuthorError::NothingToRedo => write!(f, "nothing to redo"),
            AuthorError::Command(msg) => write!(f, "command failed: {msg}"),
            AuthorError::ProjectParse { line, message } => {
                write!(f, "project parse error at line {line}: {message}")
            }
            AuthorError::Integrity(msg) => write!(f, "project integrity violation: {msg}"),
            AuthorError::Io(msg) => write!(f, "file error: {msg}"),
        }
    }
}

impl std::error::Error for AuthorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuthorError::Scene(e) => Some(e),
            AuthorError::Script(e) => Some(e),
            AuthorError::Media(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vgbl_scene::SceneError> for AuthorError {
    fn from(e: vgbl_scene::SceneError) -> Self {
        AuthorError::Scene(e)
    }
}

impl From<vgbl_script::ScriptError> for AuthorError {
    fn from(e: vgbl_script::ScriptError) -> Self {
        AuthorError::Script(e)
    }
}

impl From<vgbl_media::MediaError> for AuthorError {
    fn from(e: vgbl_media::MediaError) -> Self {
        AuthorError::Media(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let e: AuthorError = vgbl_scene::SceneError::EmptyGraph.into();
        assert!(e.source().is_some());
        let e: AuthorError = vgbl_script::ScriptError::DivisionByZero.into();
        assert!(e.to_string().contains("script"));
        let e = AuthorError::ProjectParse { line: 12, message: "bad".into() };
        assert!(e.to_string().contains("12"));
        assert!(AuthorError::NothingToUndo.source().is_none());
    }
}
