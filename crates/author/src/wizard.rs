//! Game templates.
//!
//! The paper's pitch is that "general users can produce their own video
//! games with educational elements" — templates are how real authoring
//! tools make that true on day one. Each template builds a complete,
//! playable [`Project`] through the same command/editor machinery a human
//! designer would use (so templates double as integration exercises of
//! the editing API).

use vgbl_media::{FrameRate, SegmentId, SegmentTable};
use vgbl_scene::Rect;

use crate::command::{Command, CommandStack};
use crate::object_editor::ObjectEditor;
use crate::project::Project;
use crate::scenario_editor::ScenarioEditor;

/// Frame size templates are authored for.
pub const TEMPLATE_FRAME: (u32, u32) = (64, 48);

/// Frames allotted to each template segment.
const SEG_FRAMES: usize = 30;

fn base_project(name: &str, segments: usize) -> (Project, CommandStack) {
    let mut project = Project::new(name, TEMPLATE_FRAME, FrameRate::FPS30);
    let cuts: Vec<usize> = (1..segments).map(|i| i * SEG_FRAMES).collect();
    project.segments = SegmentTable::from_cuts(segments * SEG_FRAMES, &cuts)
        .expect("template cuts are valid");
    (project, CommandStack::new())
}

/// A multiple-choice quiz: intro → question 1 … question N → results.
/// Correct answers score 10, wrong answers cost 2 and explain; finishing
/// with a high score earns the `quiz_master` reward.
///
/// Panics only on internal template bugs (the template is fixed content).
pub fn quiz_template(name: &str, questions: usize) -> Project {
    let questions = questions.max(1);
    let (mut project, mut stack) = base_project(name, questions + 2);

    {
        let mut ed = ScenarioEditor::new(&mut project, &mut stack);
        ed.create_scenario("intro", SegmentId(0)).expect("template");
        for q in 1..=questions {
            ed.create_scenario(&format!("q{q}"), SegmentId(q as u32)).expect("template");
        }
        ed.create_scenario("results", SegmentId((questions + 1) as u32))
            .expect("template");
        ed.set_start("intro").expect("template");
        ed.describe("intro", "Title card and instructions.").expect("template");
        ed.on_enter(
            "intro",
            None,
            &["text \"Welcome to the quiz! Click Start when ready.\""],
        )
        .expect("template");
    }

    {
        let mut ed = ObjectEditor::new(&mut project, &mut stack, "intro");
        ed.add_button("start", "Start", Rect::new(24, 30, 16, 8)).expect("template");
        ed.wire("start", "click", None, &["goto q1"]).expect("template");
    }

    for q in 1..=questions {
        let scenario = format!("q{q}");
        let next = if q == questions { "results".to_owned() } else { format!("q{}", q + 1) };
        let mut ed = ObjectEditor::new(&mut project, &mut stack, &scenario);
        ed.add_button("answer_a", "Answer A", Rect::new(6, 30, 20, 8)).expect("template");
        ed.add_button("answer_b", "Answer B", Rect::new(38, 30, 20, 8)).expect("template");
        // Alternate which answer is correct so bots cannot cheese it.
        let (right, wrong) = if q % 2 == 1 { ("answer_a", "answer_b") } else { ("answer_b", "answer_a") };
        ed.wire(
            right,
            "click",
            None,
            &["text \"Correct!\"", "score 10", &format!("goto {next}")],
        )
        .expect("template");
        ed.wire(
            wrong,
            "click",
            None,
            &["text \"Not quite - think again.\"", "score -2"],
        )
        .expect("template");
    }

    {
        let threshold = (questions as i64) * 10 - 4;
        let mut ed = ScenarioEditor::new(&mut project, &mut stack);
        ed.describe("results", "Score summary.").expect("template");
        ed.on_enter("results", None, &["text \"That's the quiz!\""]).expect("template");
        ed.on_enter(
            "results",
            Some(&format!("score >= {threshold}")),
            &["award quiz_master", "text \"Outstanding!\""],
        )
        .expect("template");
    }
    {
        let mut ed = ObjectEditor::new(&mut project, &mut stack, "results");
        ed.add_button("finish", "Finish", Rect::new(24, 30, 16, 8)).expect("template");
        ed.wire("finish", "click", None, &["end \"quiz_complete\""]).expect("template");
    }

    project
}

/// A guided tour: a hub with doors to `rooms` rooms, each delivering one
/// piece of content (text + web link) and a door back; visiting the last
/// room opens the exit.
pub fn tour_template(name: &str, rooms: usize) -> Project {
    let rooms = rooms.max(1);
    let (mut project, mut stack) = base_project(name, rooms + 1);

    {
        let mut ed = ScenarioEditor::new(&mut project, &mut stack);
        ed.create_scenario("hub", SegmentId(0)).expect("template");
        for r in 1..=rooms {
            ed.create_scenario(&format!("room{r}"), SegmentId(r as u32)).expect("template");
        }
        ed.set_start("hub").expect("template");
        ed.describe("hub", "The tour lobby.").expect("template");
        ed.on_enter(
            "hub",
            Some("!flag(\"toured\")"),
            &["text \"Visit every room, then take the exit.\"", "flag toured on"],
        )
        .expect("template");
    }

    for r in 1..=rooms {
        let scenario = format!("room{r}");
        {
            let mut ed = ObjectEditor::new(&mut project, &mut stack, "hub");
            ed.add_button(
                &format!("door{r}"),
                &format!("Room {r}"),
                Rect::new(2 + ((r - 1) as i32 % 4) * 15, 6 + ((r - 1) as i32 / 4) * 12, 12, 8),
            )
            .expect("template");
            ed.wire(&format!("door{r}"), "click", None, &[&format!("goto room{r}")])
                .expect("template");
        }
        {
            let mut ed = ScenarioEditor::new(&mut project, &mut stack);
            ed.on_enter(
                &scenario,
                Some(&format!("!flag(\"seen{r}\")")),
                &[
                    &format!("text \"Exhibit {r}: study the display.\""),
                    &format!("flag seen{r} on"),
                    "score 5",
                ],
            )
            .expect("template");
        }
        let mut ed = ObjectEditor::new(&mut project, &mut stack, &scenario);
        ed.add_image(
            "exhibit",
            &format!("exhibit{r}"),
            Rect::new(20, 10, 16, 14),
        )
        .expect("template");
        ed.wire(
            "exhibit",
            "click",
            None,
            &[&format!("url \"https://example.edu/tour/{r}\"")],
        )
        .expect("template");
        ed.add_button("back", "Back", Rect::new(50, 2, 12, 6)).expect("template");
        ed.wire("back", "click", None, &["goto hub"]).expect("template");
    }

    {
        // Exit opens once every room was seen.
        let all_seen = (1..=rooms)
            .map(|r| format!("flag(\"seen{r}\")"))
            .collect::<Vec<_>>()
            .join(" && ");
        let mut ed = ObjectEditor::new(&mut project, &mut stack, "hub");
        ed.add_button("exit", "Exit", Rect::new(50, 38, 12, 8)).expect("template");
        ed.set_visible_when("exit", Some(&all_seen)).expect("template");
        ed.wire(
            "exit",
            "click",
            None,
            &["award tour_complete", "end \"tour_done\""],
        )
        .expect("template");
    }

    // Templates must always produce a clean project.
    debug_assert!(project.check_integrity().is_ok());
    let _ = stack.apply(
        &mut project,
        Command::SetDescription {
            scenario: "hub".into(),
            text: "The tour lobby. Exit unlocks after every room.".into(),
        },
    );
    project
}

/// An escape chain: `rooms` locked rooms in sequence. Each room holds the
/// key to the *next* door (a takeable item); using the right key on the
/// door opens it. The last door leads out. Exercises chained
/// item-condition-transition logic — the paper's §3.2 "solve a problem"
/// loop, iterated.
pub fn escape_template(name: &str, rooms: usize) -> Project {
    let rooms = rooms.max(1);
    let (mut project, mut stack) = base_project(name, rooms);

    {
        let mut ed = ScenarioEditor::new(&mut project, &mut stack);
        for r in 0..rooms {
            ed.create_scenario(&format!("room{r}"), SegmentId(r as u32)).expect("template");
        }
        ed.set_start("room0").expect("template");
        ed.on_enter(
            "room0",
            Some("!flag(\"briefed\")"),
            &[
                "text \"You are locked in! Find each key to escape.\"",
                "flag briefed on",
            ],
        )
        .expect("template");
    }

    for r in 0..rooms {
        let scenario = format!("room{r}");
        let mut ed = ObjectEditor::new(&mut project, &mut stack, &scenario);
        // The key for this room's door lies somewhere in the room.
        ed.add_item(
            &format!("key{r}"),
            &format!("key{r}_img"),
            &format!("A key stamped '{r}'."),
            true,
            Rect::new(6 + (r as i32 % 3) * 14, 30, 8, 6),
        )
        .expect("template");
        // The locked door: only the matching key opens it.
        ed.add_image(&format!("door{r}"), "door_img", Rect::new(48, 14, 12, 20))
            .expect("template");
        ed.wire(
            &format!("door{r}"),
            "click",
            None,
            &["text \"Locked. There must be a key nearby.\""],
        )
        .expect("template");
        let open_actions: Vec<String> = if r + 1 < rooms {
            vec![
                format!("take key{r}"),
                "score 10".to_owned(),
                format!("text \"The key fits! Into room {}.\"", r + 1),
                format!("goto room{}", r + 1),
            ]
        } else {
            vec![
                format!("take key{r}"),
                "score 10".to_owned(),
                "award escape_artist".to_owned(),
                "end \"escaped\"".to_owned(),
            ]
        };
        let refs: Vec<&str> = open_actions.iter().map(String::as_str).collect();
        ed.wire(&format!("door{r}"), &format!("use key{r}"), None, &refs)
            .expect("template");
        // Wrong keys bounce off.
        for other in 0..rooms {
            if other != r {
                ed.wire(
                    &format!("door{r}"),
                    &format!("use key{other}"),
                    None,
                    &["text \"That key does not fit this lock.\""],
                )
                .expect("template");
            }
        }
    }

    project
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vgbl_runtime_check::check_playable;

    /// Minimal playability harness: validation only (full bot playthrough
    /// lives in the integration tests to avoid a dependency cycle).
    mod vgbl_runtime_check {
        use crate::project::Project;
        use vgbl_scene::validate::validate;

        pub fn check_playable(project: &Project) {
            let report = validate(&project.graph, Some(project.frame_size));
            assert!(
                report.is_playable(),
                "template not playable: {:?}",
                report.issues
            );
        }
    }

    #[test]
    fn quiz_template_is_well_formed() {
        for n in [1usize, 3, 5] {
            let p = quiz_template("quiz", n);
            assert_eq!(p.graph.len(), n + 2);
            assert!(p.check_integrity().is_ok());
            check_playable(&p);
            let (_, objects, triggers, segments) = p.stats();
            assert_eq!(segments, n + 2);
            assert!(objects >= n * 2 + 2);
            assert!(triggers >= n * 2 + 3);
        }
        let _ = Arc::new(());
    }

    #[test]
    fn tour_template_is_well_formed() {
        for n in [1usize, 4, 9] {
            let p = tour_template("tour", n);
            assert_eq!(p.graph.len(), n + 1);
            assert!(p.check_integrity().is_ok());
            check_playable(&p);
        }
    }

    #[test]
    fn quiz_alternates_correct_answers() {
        let p = quiz_template("quiz", 2);
        let q1 = p.graph.scenario_by_name("q1").unwrap();
        let a = q1.object_by_name("answer_a").unwrap();
        assert!(a
            .triggers
            .triggers()
            .iter()
            .any(|t| t.actions.iter().any(|x| matches!(x, vgbl_script::Action::GoTo(_)))));
        let q2 = p.graph.scenario_by_name("q2").unwrap();
        let b = q2.object_by_name("answer_b").unwrap();
        assert!(b
            .triggers
            .triggers()
            .iter()
            .any(|t| t.actions.iter().any(|x| matches!(x, vgbl_script::Action::GoTo(_)))));
    }

    #[test]
    fn escape_template_is_well_formed() {
        for n in [1usize, 3, 5] {
            let p = escape_template("escape", n);
            assert_eq!(p.graph.len(), n);
            assert!(p.check_integrity().is_ok());
            check_playable(&p);
            // Exactly one door per room ends or advances with its key.
            for r in 0..n {
                let room = p.graph.scenario_by_name(&format!("room{r}")).unwrap();
                assert!(room.object_by_name(&format!("key{r}")).unwrap().is_takeable());
                assert!(room.object_by_name(&format!("door{r}")).is_some());
            }
            let last = p.graph.scenario_by_name(&format!("room{}", n - 1)).unwrap();
            assert!(last.has_end());
        }
    }

    #[test]
    fn tour_exit_gated_on_all_rooms() {
        let p = tour_template("tour", 3);
        let hub = p.graph.scenario_by_name("hub").unwrap();
        let exit = hub.object_by_name("exit").unwrap();
        let cond = exit.visible_when.as_ref().unwrap().to_string();
        for r in 1..=3 {
            assert!(cond.contains(&format!("seen{r}")), "missing seen{r} in {cond}");
        }
    }
}
