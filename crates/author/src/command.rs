//! Commands and the undo/redo stack.
//!
//! Every mutation the editors perform goes through a [`Command`] applied
//! by a [`CommandStack`]. The stack snapshots the project's editable
//! state (scene graph + segment table) before each command, giving exact,
//! unbounded undo/redo — table stakes for the "friendly interface"
//! the paper promises non-programmer course designers.

use vgbl_media::{SegmentId, SegmentTable};
use vgbl_scene::{DialogueTree, ImageAsset, Npc, ObjectKind, Rect, SceneGraph};
use vgbl_script::{Action, EventKind, Trigger};

use crate::error::AuthorError;
use crate::project::Project;
use crate::Result;

/// Where a trigger lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerTarget {
    /// The scenario's entry trigger set.
    Entry,
    /// A named object's trigger set.
    Object(String),
}

/// One editor mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Create a scenario over a segment.
    AddScenario {
        /// New scenario name.
        name: String,
        /// Segment it presents.
        segment: SegmentId,
    },
    /// Delete a scenario.
    RemoveScenario {
        /// Scenario to delete.
        name: String,
    },
    /// Rename a scenario (rewrites `goto`s).
    RenameScenario {
        /// Existing name.
        old: String,
        /// New name.
        new: String,
    },
    /// Change the start scenario.
    SetStart {
        /// Scenario name.
        name: String,
    },
    /// Set a scenario's designer description.
    SetDescription {
        /// Scenario name.
        scenario: String,
        /// New description.
        text: String,
    },
    /// Re-point a scenario at a different segment.
    SetScenarioSegment {
        /// Scenario name.
        scenario: String,
        /// New segment.
        segment: SegmentId,
    },
    /// Mount an object on a scenario.
    AddObject {
        /// Scenario name.
        scenario: String,
        /// New object name.
        name: String,
        /// Object kind.
        kind: ObjectKind,
        /// Bounds on the frame.
        bounds: Rect,
    },
    /// Remove an object.
    RemoveObject {
        /// Scenario name.
        scenario: String,
        /// Object name.
        object: String,
    },
    /// Move/resize an object.
    MoveObject {
        /// Scenario name.
        scenario: String,
        /// Object name.
        object: String,
        /// New bounds.
        bounds: Rect,
    },
    /// Change an object's stacking order.
    SetObjectZ {
        /// Scenario name.
        scenario: String,
        /// Object name.
        object: String,
        /// New z.
        z: i32,
    },
    /// Set (or clear) an object's visibility condition, given as source.
    SetVisibleWhen {
        /// Scenario name.
        scenario: String,
        /// Object name.
        object: String,
        /// Condition source, `None` to clear.
        condition: Option<String>,
    },
    /// Append a trigger, all parts in their textual forms.
    AddTrigger {
        /// Scenario name.
        scenario: String,
        /// Entry set or object set.
        target: TriggerTarget,
        /// Event source, e.g. `"click"`, `"use fan"`, `"timer 1500"`.
        event: String,
        /// Optional guard condition source.
        condition: Option<String>,
        /// Action sources, e.g. `"goto market"`.
        actions: Vec<String>,
    },
    /// Remove a trigger by index within its set.
    RemoveTrigger {
        /// Scenario name.
        scenario: String,
        /// Entry set or object set.
        target: TriggerTarget,
        /// Index in authoring order.
        index: usize,
    },
    /// Register an NPC with a single fixed line (trees are edited via
    /// [`Command::AddNpcDialogue`]).
    AddNpc {
        /// NPC name.
        name: String,
        /// The fixed line.
        line: String,
    },
    /// Replace an NPC's dialogue tree wholesale.
    AddNpcDialogue {
        /// NPC name.
        name: String,
        /// The tree.
        dialogue: DialogueTree,
    },
    /// Register a placeholder image asset.
    AddAsset {
        /// Asset name.
        name: String,
        /// Width in pixels.
        width: u32,
        /// Height in pixels.
        height: u32,
    },
    /// Split the segment containing `frame` at `frame` (manual cut).
    SplitSegment {
        /// The frame to cut at.
        frame: usize,
    },
    /// Merge the segment containing `frame` with its successor.
    MergeSegmentAfter {
        /// A frame inside the first of the two segments.
        frame: usize,
    },
}

/// Snapshot of the editable state (footage itself is immutable).
#[derive(Debug, Clone, PartialEq)]
struct Snapshot {
    graph: SceneGraph,
    segments: SegmentTable,
}

impl Snapshot {
    fn take(project: &Project) -> Snapshot {
        Snapshot { graph: project.graph.clone(), segments: project.segments.clone() }
    }

    fn restore(self, project: &mut Project) {
        project.graph = self.graph;
        project.segments = self.segments;
    }
}

/// The undo/redo stack.
#[derive(Debug, Default)]
pub struct CommandStack {
    undo: Vec<Snapshot>,
    redo: Vec<Snapshot>,
}

impl CommandStack {
    /// An empty stack.
    pub fn new() -> CommandStack {
        CommandStack::default()
    }

    /// Number of undoable steps.
    pub fn undo_depth(&self) -> usize {
        self.undo.len()
    }

    /// Number of redoable steps.
    pub fn redo_depth(&self) -> usize {
        self.redo.len()
    }

    /// Applies a command. On success the pre-state becomes undoable and
    /// the redo history clears; on failure the project is untouched.
    pub fn apply(&mut self, project: &mut Project, command: Command) -> Result<()> {
        let snapshot = Snapshot::take(project);
        match execute(project, command) {
            Ok(()) => {
                self.undo.push(snapshot);
                self.redo.clear();
                Ok(())
            }
            Err(e) => {
                snapshot.restore(project);
                Err(e)
            }
        }
    }

    /// Undoes the most recent command.
    pub fn undo(&mut self, project: &mut Project) -> Result<()> {
        let snapshot = self.undo.pop().ok_or(AuthorError::NothingToUndo)?;
        self.redo.push(Snapshot::take(project));
        snapshot.restore(project);
        Ok(())
    }

    /// Redoes the most recently undone command.
    pub fn redo(&mut self, project: &mut Project) -> Result<()> {
        let snapshot = self.redo.pop().ok_or(AuthorError::NothingToRedo)?;
        self.undo.push(Snapshot::take(project));
        snapshot.restore(project);
        Ok(())
    }
}

fn object_mut<'a>(
    project: &'a mut Project,
    scenario: &str,
    object: &str,
) -> Result<&'a mut vgbl_scene::InteractiveObject> {
    project
        .graph
        .scenario_by_name_mut(scenario)
        .ok_or_else(|| vgbl_scene::SceneError::UnknownScenario(scenario.to_owned()))?
        .object_by_name_mut(object)
        .ok_or_else(|| AuthorError::from(vgbl_scene::SceneError::UnknownObject(object.to_owned())))
}

fn execute(project: &mut Project, command: Command) -> Result<()> {
    match command {
        Command::AddScenario { name, segment } => {
            if project.segments.get(segment).is_none() {
                return Err(AuthorError::Command(format!(
                    "segment {segment} does not exist"
                )));
            }
            project.graph.add_scenario(name, segment)?;
        }
        Command::RemoveScenario { name } => {
            project.graph.remove_scenario(&name)?;
        }
        Command::RenameScenario { old, new } => {
            project.graph.rename_scenario(&old, &new)?;
        }
        Command::SetStart { name } => {
            project.graph.set_start(&name)?;
        }
        Command::SetDescription { scenario, text } => {
            project
                .graph
                .scenario_by_name_mut(&scenario)
                .ok_or(vgbl_scene::SceneError::UnknownScenario(scenario))?
                .description = text;
        }
        Command::SetScenarioSegment { scenario, segment } => {
            if project.segments.get(segment).is_none() {
                return Err(AuthorError::Command(format!(
                    "segment {segment} does not exist"
                )));
            }
            project
                .graph
                .scenario_by_name_mut(&scenario)
                .ok_or(vgbl_scene::SceneError::UnknownScenario(scenario))?
                .segment = segment;
        }
        Command::AddObject { scenario, name, kind, bounds } => {
            project
                .graph
                .scenario_by_name_mut(&scenario)
                .ok_or(vgbl_scene::SceneError::UnknownScenario(scenario))?
                .add_object(name, kind, bounds)?;
        }
        Command::RemoveObject { scenario, object } => {
            let s = project
                .graph
                .scenario_by_name_mut(&scenario)
                .ok_or(vgbl_scene::SceneError::UnknownScenario(scenario))?;
            let id = s
                .object_by_name(&object)
                .ok_or(vgbl_scene::SceneError::UnknownObject(object))?
                .id;
            s.remove_object(id)?;
        }
        Command::MoveObject { scenario, object, bounds } => {
            object_mut(project, &scenario, &object)?.bounds = bounds;
        }
        Command::SetObjectZ { scenario, object, z } => {
            object_mut(project, &scenario, &object)?.z = z;
        }
        Command::SetVisibleWhen { scenario, object, condition } => {
            let parsed = match condition {
                Some(src) => Some(vgbl_script::parse_expr(&src)?),
                None => None,
            };
            object_mut(project, &scenario, &object)?.visible_when = parsed;
        }
        Command::AddTrigger { scenario, target, event, condition, actions } => {
            let event = EventKind::parse(&event)?;
            let parsed_actions: Vec<Action> = actions
                .iter()
                .map(|a| Action::parse(a))
                .collect::<vgbl_script::Result<_>>()?;
            let trigger = match condition {
                Some(cond) => Trigger::guarded(event, &cond, parsed_actions)?,
                None => Trigger::unconditional(event, parsed_actions),
            };
            match target {
                TriggerTarget::Entry => {
                    project
                        .graph
                        .scenario_by_name_mut(&scenario)
                        .ok_or(vgbl_scene::SceneError::UnknownScenario(scenario))?
                        .entry_triggers
                        .push(trigger);
                }
                TriggerTarget::Object(name) => {
                    object_mut(project, &scenario, &name)?.triggers.push(trigger);
                }
            }
        }
        Command::RemoveTrigger { scenario, target, index } => {
            let set = match target {
                TriggerTarget::Entry => {
                    &mut project
                        .graph
                        .scenario_by_name_mut(&scenario)
                        .ok_or(vgbl_scene::SceneError::UnknownScenario(scenario))?
                        .entry_triggers
                }
                TriggerTarget::Object(name) => {
                    &mut object_mut(project, &scenario, &name)?.triggers
                }
            };
            if index >= set.len() {
                return Err(AuthorError::Command(format!(
                    "trigger index {index} out of range ({} triggers)",
                    set.len()
                )));
            }
            set.triggers_mut().remove(index);
        }
        Command::AddNpc { name, line } => {
            project.graph.add_npc(Npc::new(name, DialogueTree::single_line(line)));
        }
        Command::AddNpcDialogue { name, dialogue } => {
            dialogue.validate(&name)?;
            project.graph.add_npc(Npc::new(name, dialogue));
        }
        Command::AddAsset { name, width, height } => {
            project
                .graph
                .assets_mut()
                .insert(ImageAsset::placeholder(name, width, height));
        }
        Command::SplitSegment { frame } => {
            let split = *project
                .segments
                .segment_at(frame)
                .ok_or(AuthorError::Command(format!("frame {frame} out of range")))?;
            project.segments.split_at(frame)?;
            // Segments after the split point shift up by one; scenarios
            // pointing at the split segment keep its first half.
            for name in project.graph.scenarios().iter().map(|s| s.name.clone()).collect::<Vec<_>>() {
                let sc = project.graph.scenario_by_name_mut(&name).expect("name stable");
                if sc.segment.0 > split.id.0 {
                    sc.segment = SegmentId(sc.segment.0 + 1);
                }
            }
        }
        Command::MergeSegmentAfter { frame } => {
            // Re-pointing scenarios after a merge: segments renumber, so
            // remap every scenario id at or past the removed boundary.
            let merged = *project
                .segments
                .segment_at(frame)
                .ok_or(AuthorError::Command(format!("frame {frame} out of range")))?;
            project.segments.merge_after(frame)?;
            for s in project.graph.scenarios().iter().map(|s| s.name.clone()).collect::<Vec<_>>() {
                let sc = project.graph.scenario_by_name_mut(&s).expect("name stable");
                if sc.segment.0 > merged.id.0 {
                    sc.segment = SegmentId(sc.segment.0 - 1);
                }
            }
        }
    }
    project.check_integrity()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::FrameRate;

    fn project() -> Project {
        let mut p = Project::new("demo", (64, 48), FrameRate::FPS30);
        // Give it a 4-segment table (no real video needed for commands).
        p.segments = SegmentTable::from_cuts(40, &[10, 20, 30]).unwrap();
        p
    }

    #[test]
    fn apply_undo_redo_roundtrip() {
        let mut p = project();
        let mut stack = CommandStack::new();
        stack
            .apply(&mut p, Command::AddScenario { name: "intro".into(), segment: SegmentId(0) })
            .unwrap();
        stack
            .apply(&mut p, Command::AddScenario { name: "lab".into(), segment: SegmentId(1) })
            .unwrap();
        assert_eq!(p.graph.len(), 2);
        assert_eq!(stack.undo_depth(), 2);

        stack.undo(&mut p).unwrap();
        assert_eq!(p.graph.len(), 1);
        stack.undo(&mut p).unwrap();
        assert_eq!(p.graph.len(), 0);
        assert!(stack.undo(&mut p).is_err());

        stack.redo(&mut p).unwrap();
        stack.redo(&mut p).unwrap();
        assert_eq!(p.graph.len(), 2);
        assert!(stack.redo(&mut p).is_err());
    }

    #[test]
    fn failed_command_leaves_project_untouched_and_unrecorded() {
        let mut p = project();
        let mut stack = CommandStack::new();
        let before = p.clone();
        let err = stack.apply(
            &mut p,
            Command::AddScenario { name: "x".into(), segment: SegmentId(99) },
        );
        assert!(err.is_err());
        assert_eq!(p, before);
        assert_eq!(stack.undo_depth(), 0);
    }

    #[test]
    fn new_command_clears_redo() {
        let mut p = project();
        let mut stack = CommandStack::new();
        stack
            .apply(&mut p, Command::AddScenario { name: "a".into(), segment: SegmentId(0) })
            .unwrap();
        stack.undo(&mut p).unwrap();
        assert_eq!(stack.redo_depth(), 1);
        stack
            .apply(&mut p, Command::AddScenario { name: "b".into(), segment: SegmentId(0) })
            .unwrap();
        assert_eq!(stack.redo_depth(), 0);
    }

    #[test]
    fn object_commands() {
        let mut p = project();
        let mut stack = CommandStack::new();
        stack
            .apply(&mut p, Command::AddScenario { name: "a".into(), segment: SegmentId(0) })
            .unwrap();
        stack
            .apply(
                &mut p,
                Command::AddObject {
                    scenario: "a".into(),
                    name: "btn".into(),
                    kind: ObjectKind::Button { label: "Go".into() },
                    bounds: Rect::new(1, 1, 8, 8),
                },
            )
            .unwrap();
        stack
            .apply(
                &mut p,
                Command::MoveObject {
                    scenario: "a".into(),
                    object: "btn".into(),
                    bounds: Rect::new(5, 5, 10, 10),
                },
            )
            .unwrap();
        stack
            .apply(&mut p, Command::SetObjectZ { scenario: "a".into(), object: "btn".into(), z: 3 })
            .unwrap();
        stack
            .apply(
                &mut p,
                Command::SetVisibleWhen {
                    scenario: "a".into(),
                    object: "btn".into(),
                    condition: Some("score > 2".into()),
                },
            )
            .unwrap();
        let o = p.graph.scenario_by_name("a").unwrap().object_by_name("btn").unwrap();
        assert_eq!(o.bounds, Rect::new(5, 5, 10, 10));
        assert_eq!(o.z, 3);
        assert!(o.visible_when.is_some());

        // Bad condition source fails cleanly.
        assert!(stack
            .apply(
                &mut p,
                Command::SetVisibleWhen {
                    scenario: "a".into(),
                    object: "btn".into(),
                    condition: Some("((".into()),
                },
            )
            .is_err());

        stack
            .apply(&mut p, Command::RemoveObject { scenario: "a".into(), object: "btn".into() })
            .unwrap();
        assert!(p.graph.scenario_by_name("a").unwrap().objects().is_empty());
        // Undo brings it back with all its properties.
        stack.undo(&mut p).unwrap();
        let o = p.graph.scenario_by_name("a").unwrap().object_by_name("btn").unwrap();
        assert_eq!(o.z, 3);
    }

    #[test]
    fn trigger_commands_parse_textual_forms() {
        let mut p = project();
        let mut stack = CommandStack::new();
        stack
            .apply(&mut p, Command::AddScenario { name: "a".into(), segment: SegmentId(0) })
            .unwrap();
        stack
            .apply(&mut p, Command::AddScenario { name: "b".into(), segment: SegmentId(1) })
            .unwrap();
        stack
            .apply(
                &mut p,
                Command::AddObject {
                    scenario: "a".into(),
                    name: "btn".into(),
                    kind: ObjectKind::Button { label: "Go".into() },
                    bounds: Rect::new(1, 1, 8, 8),
                },
            )
            .unwrap();
        stack
            .apply(
                &mut p,
                Command::AddTrigger {
                    scenario: "a".into(),
                    target: TriggerTarget::Object("btn".into()),
                    event: "click".into(),
                    condition: Some("score >= 0".into()),
                    actions: vec!["goto b".into(), "score 5".into()],
                },
            )
            .unwrap();
        let o = p.graph.scenario_by_name("a").unwrap().object_by_name("btn").unwrap();
        assert_eq!(o.triggers.len(), 1);
        assert_eq!(o.triggers.triggers()[0].actions.len(), 2);

        // Entry trigger too.
        stack
            .apply(
                &mut p,
                Command::AddTrigger {
                    scenario: "a".into(),
                    target: TriggerTarget::Entry,
                    event: "enter".into(),
                    condition: None,
                    actions: vec!["text \"welcome\"".into()],
                },
            )
            .unwrap();
        assert_eq!(p.graph.scenario_by_name("a").unwrap().entry_triggers.len(), 1);

        // Malformed pieces fail without mutating.
        for bad in [
            Command::AddTrigger {
                scenario: "a".into(),
                target: TriggerTarget::Entry,
                event: "hover".into(),
                condition: None,
                actions: vec![],
            },
            Command::AddTrigger {
                scenario: "a".into(),
                target: TriggerTarget::Entry,
                event: "click".into(),
                condition: None,
                actions: vec!["warp x".into()],
            },
        ] {
            let before = p.clone();
            assert!(stack.apply(&mut p, bad).is_err());
            assert_eq!(p, before);
        }

        stack
            .apply(
                &mut p,
                Command::RemoveTrigger {
                    scenario: "a".into(),
                    target: TriggerTarget::Object("btn".into()),
                    index: 0,
                },
            )
            .unwrap();
        let o = p.graph.scenario_by_name("a").unwrap().object_by_name("btn").unwrap();
        assert!(o.triggers.is_empty());
        assert!(stack
            .apply(
                &mut p,
                Command::RemoveTrigger {
                    scenario: "a".into(),
                    target: TriggerTarget::Entry,
                    index: 7,
                },
            )
            .is_err());
    }

    #[test]
    fn segment_commands_remap_scenarios() {
        let mut p = project();
        let mut stack = CommandStack::new();
        stack
            .apply(&mut p, Command::AddScenario { name: "s3".into(), segment: SegmentId(3) })
            .unwrap();
        // Merge segments 1 and 2 (frame 10 is in segment 1).
        stack.apply(&mut p, Command::MergeSegmentAfter { frame: 10 }).unwrap();
        assert_eq!(p.segments.len(), 3);
        // Scenario that pointed at segment 3 now points at 2.
        assert_eq!(p.graph.scenario_by_name("s3").unwrap().segment, SegmentId(2));
        // Split it again: segment [10,30) splits at 15, and s3's pointer
        // (now at table position 2, the [30,40) segment) shifts to 3.
        stack.apply(&mut p, Command::SplitSegment { frame: 15 }).unwrap();
        assert_eq!(p.segments.len(), 4);
        assert_eq!(p.graph.scenario_by_name("s3").unwrap().segment, SegmentId(3));
        assert_eq!(p.segments.get(SegmentId(3)).unwrap().start, 30);
        // Undo restores both table and mapping.
        stack.undo(&mut p).unwrap();
        stack.undo(&mut p).unwrap();
        assert_eq!(p.segments.len(), 4);
        assert_eq!(p.graph.scenario_by_name("s3").unwrap().segment, SegmentId(3));
    }

    #[test]
    fn npc_and_asset_commands() {
        let mut p = project();
        let mut stack = CommandStack::new();
        stack
            .apply(&mut p, Command::AddNpc { name: "guide".into(), line: "Hello.".into() })
            .unwrap();
        assert!(p.graph.npc("guide").is_some());
        stack
            .apply(&mut p, Command::AddAsset { name: "pc".into(), width: 8, height: 8 })
            .unwrap();
        assert!(p.graph.assets().contains("pc"));
        // Broken dialogue rejected.
        let mut tree = DialogueTree::new();
        tree.insert(
            5,
            vgbl_scene::DialogueNode { line: "orphan".into(), choices: vec![] },
        );
        assert!(stack
            .apply(&mut p, Command::AddNpcDialogue { name: "guide".into(), dialogue: tree })
            .is_err());
    }
}
