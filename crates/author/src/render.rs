//! Rendering — the reproduction of the paper's Figure 1.
//!
//! Figure 1 shows "the interface of the interactive VGBL authoring tool":
//! a scenario timeline over the imported footage, the project tree of
//! scenarios with their mounted objects, an object palette, and a
//! property pane for the selected object. [`ascii_ui`] reproduces that
//! layout as a deterministic text window that tests assert on.


use crate::command::CommandStack;
use crate::lint::lint_project;
use crate::project::Project;

/// Width of the text UI in characters.
const UI_COLS: usize = 72;

fn pad_line(out: &mut String, content: &str) {
    let line: String = content.chars().take(UI_COLS - 2).collect();
    let pad = UI_COLS - 2 - line.chars().count();
    out.push('|');
    out.push_str(&line);
    out.push_str(&" ".repeat(pad));
    out.push_str("|\n");
}

/// Renders the authoring-tool window (Figure 1): title bar, segment
/// timeline, project tree / palette / property pane, and a status line
/// with lint counts and undo/redo depths.
///
/// `selected` names the `(scenario, object)` whose properties show in the
/// right-hand pane. Deterministic for identical inputs.
pub fn ascii_ui(
    project: &Project,
    selected: Option<(&str, &str)>,
    stack: Option<&CommandStack>,
) -> String {
    let mut out = String::with_capacity(4096);
    let title = format!(" VGBL Authoring Tool - {} ", project.name);
    out.push('+');
    out.push_str(&format!("{title:=^width$}", width = UI_COLS - 2));
    out.push_str("+\n");

    // Timeline.
    let frames = project.segments.frame_count();
    pad_line(
        &mut out,
        &format!(
            " Timeline: {frames} frames in {} segment(s){}",
            project.segments.len(),
            if project.has_video() { "" } else { "  [no footage imported]" }
        ),
    );
    let mut timeline = String::from(" ");
    for seg in project.segments.segments() {
        timeline.push_str(&format!("[{}:{}-{}]", seg.id.0, seg.start, seg.end - 1));
    }
    pad_line(&mut out, &timeline);

    out.push('+');
    out.push_str(&"-".repeat(UI_COLS - 2));
    out.push_str("+\n");

    // Three panes rendered as rows: project tree | palette | properties.
    let mut tree: Vec<String> = vec!["SCENARIOS".into()];
    let start = project.graph.start().ok();
    for s in project.graph.scenarios() {
        let marker = if start == Some(s.id) { "*" } else { " " };
        tree.push(format!("{marker}{} (seg{})", s.name, s.segment.0));
        for o in s.objects() {
            tree.push(format!("  - {} [{}]", o.name, o.kind.tag()));
        }
    }

    let palette: Vec<String> = vec![
        "PALETTE".into(),
        "[Button]".into(),
        "[Image]".into(),
        "[Item]".into(),
        "[NPC]".into(),
        String::new(),
        "drag onto".into(),
        "the frame".into(),
    ];

    let mut props: Vec<String> = vec!["PROPERTIES".into()];
    match selected.and_then(|(sc, ob)| {
        project
            .graph
            .scenario_by_name(sc)
            .and_then(|s| s.object_by_name(ob).map(|o| (s, o)))
    }) {
        Some((s, o)) => {
            props.push(format!("object: {}", o.name));
            props.push(format!("in: {}", s.name));
            props.push(format!("kind: {}", o.kind.tag()));
            props.push(format!(
                "bounds: {},{} {}x{}",
                o.bounds.x, o.bounds.y, o.bounds.w, o.bounds.h
            ));
            props.push(format!("z: {}", o.z));
            props.push(format!("triggers: {}", o.triggers.len()));
            match &o.visible_when {
                Some(c) => props.push(format!("visible: {c}")),
                None => props.push("visible: always".into()),
            }
            for t in o.triggers.triggers() {
                props.push(format!("  on {}", t.event));
            }
        }
        None => props.push("(nothing selected)".into()),
    }

    let rows = tree.len().max(palette.len()).max(props.len());
    let (w1, w2) = (34usize, 12usize);
    let w3 = UI_COLS - 2 - w1 - w2 - 2; // two inner separators
    for i in 0..rows {
        let c1: String = tree.get(i).cloned().unwrap_or_default().chars().take(w1).collect();
        let c2: String = palette.get(i).cloned().unwrap_or_default().chars().take(w2).collect();
        let c3: String = props.get(i).cloned().unwrap_or_default().chars().take(w3).collect();
        out.push('|');
        out.push_str(&format!("{c1:<w1$}"));
        out.push('|');
        out.push_str(&format!("{c2:<w2$}"));
        out.push('|');
        out.push_str(&format!("{c3:<w3$}"));
        out.push_str("|\n");
    }

    out.push('+');
    out.push_str(&"-".repeat(UI_COLS - 2));
    out.push_str("+\n");

    let lint = lint_project(project);
    let errors = lint.scene.errors().count();
    let warnings = lint.scene.warnings().count() + lint.author.len();
    let (undo, redo) = stack.map(|s| (s.undo_depth(), s.redo_depth())).unwrap_or((0, 0));
    pad_line(
        &mut out,
        &format!(" lint: {errors} error(s), {warnings} warning(s)   undo: {undo}  redo: {redo}"),
    );

    out.push('+');
    out.push_str(&"=".repeat(UI_COLS - 2));
    out.push_str("+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandStack;
    use crate::wizard::tour_template;

    #[test]
    fn figure1_elements_present() {
        let p = tour_template("museum", 3);
        let ui = ascii_ui(&p, Some(("room1", "exhibit")), None);
        assert!(ui.contains("VGBL Authoring Tool - museum"));
        assert!(ui.contains("Timeline: 120 frames in 4 segment(s)"));
        assert!(ui.contains("SCENARIOS"));
        assert!(ui.contains("*hub (seg0)"));
        assert!(ui.contains("- door1 [button]"));
        assert!(ui.contains("PALETTE"));
        assert!(ui.contains("[Item]"));
        assert!(ui.contains("PROPERTIES"));
        assert!(ui.contains("object: exhibit"));
        assert!(ui.contains("kind: image"));
        assert!(ui.contains("on click"));
        assert!(ui.contains("lint: 0 error(s)"));
    }

    #[test]
    fn rectangular_and_deterministic() {
        let p = tour_template("museum", 2);
        let a = ascii_ui(&p, None, None);
        let b = ascii_ui(&p, None, None);
        assert_eq!(a, b);
        for line in a.lines() {
            assert_eq!(line.chars().count(), UI_COLS, "line: {line:?}");
        }
    }

    #[test]
    fn no_selection_and_stack_depths() {
        let p = tour_template("museum", 2);
        let mut stack = CommandStack::new();
        let mut p2 = p.clone();
        stack
            .apply(
                &mut p2,
                crate::command::Command::AddNpc { name: "guide".into(), line: "hi".into() },
            )
            .unwrap();
        let ui = ascii_ui(&p2, None, Some(&stack));
        assert!(ui.contains("(nothing selected)"));
        assert!(ui.contains("undo: 1  redo: 0"));
    }

    #[test]
    fn unknown_selection_falls_back() {
        let p = tour_template("museum", 2);
        let ui = ascii_ui(&p, Some(("nowhere", "ghost")), None);
        assert!(ui.contains("(nothing selected)"));
    }
}
