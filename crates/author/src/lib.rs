//! # vgbl-author — the interactive VGBL authoring tool
//!
//! The paper's headline contribution (§1, §4): "The interactive game
//! authoring tool proposed in this paper provides a friendly interface to
//! help the users to create their educational games easily" — without
//! "understanding details of computer graphics, video and even flash
//! technologies."
//!
//! * [`project`] — the authoring document: footage + segment table +
//!   scene graph, with integrity invariants.
//! * [`import`] — §4.1's video import: "users just need to select video
//!   files … such that video can be divided into scenario components by
//!   the authoring tool" (shot detection → segments → encoded `VGV`).
//! * [`command`] — every edit is a command on an undo/redo stack, as a
//!   real editor must offer.
//! * [`scenario_editor`] — §4.1's scenario editor operations.
//! * [`object_editor`] — §4.2's object editor: mount objects, set
//!   properties, wire events from their textual forms.
//! * [`serialize`] — the `.vgp` project format (text, versioned,
//!   round-tripping).
//! * [`lint`] — authoring diagnostics on top of `vgbl_scene::validate`.
//! * [`render`] — the Figure 1 reproduction: a deterministic text
//!   rendering of the authoring interface.
//! * [`cost`] — the EXP-6 cost model quantifying §5's claim that video
//!   scenarios are "a cheaper way to produce game scenarios" than 3D.
//! * [`wizard`] — game templates content providers start from.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod command;
pub mod cost;
pub mod error;
pub mod fileio;
pub mod import;
pub mod lint;
pub mod object_editor;
pub mod project;
pub mod render;
pub mod scenario_editor;
pub mod serialize;
pub mod wizard;

pub use command::{Command, CommandStack};
pub use error::AuthorError;
pub use import::{ImportConfig, ImportReport, import_footage};
pub use project::Project;

/// Result alias for authoring operations.
pub type Result<T> = std::result::Result<T, AuthorError>;
