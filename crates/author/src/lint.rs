//! Authoring lints.
//!
//! Wraps the scene graph's structural validation and adds tool-level
//! checks that need authoring context: condition expressions must only
//! use the runtime's environment (variables/functions the player session
//! actually binds), footage should be attached before publishing, and
//! every segment ought to be used by some scenario.

use std::collections::BTreeSet;

use vgbl_scene::validate::{validate, ValidationReport};
use vgbl_script::Expr;

use crate::project::Project;

/// Variables the runtime environment defines (see `vgbl-runtime`).
pub const KNOWN_VARS: &[&str] = &["score"];
/// Functions the runtime environment defines.
pub const KNOWN_FUNCS: &[&str] =
    &["has", "count", "flag", "visited", "examined", "rewarded"];

/// A tool-level finding (all are warnings — the project still loads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthorLint {
    /// A condition references a variable the runtime will not define.
    UnknownVariable {
        /// Scenario containing the condition.
        scenario: String,
        /// The variable.
        variable: String,
    },
    /// A condition calls a function the runtime will not define.
    UnknownFunction {
        /// Scenario containing the condition.
        scenario: String,
        /// The function.
        function: String,
    },
    /// The project has no footage attached yet.
    NoFootage,
    /// A segment no scenario presents.
    UnusedSegment {
        /// The segment's index.
        segment: u32,
    },
}

impl std::fmt::Display for AuthorLint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthorLint::UnknownVariable { scenario, variable } => {
                write!(f, "[{scenario}] condition uses unknown variable `{variable}`")
            }
            AuthorLint::UnknownFunction { scenario, function } => {
                write!(f, "[{scenario}] condition calls unknown function `{function}`")
            }
            AuthorLint::NoFootage => write!(f, "no footage imported yet"),
            AuthorLint::UnusedSegment { segment } => {
                write!(f, "segment {segment} is not used by any scenario")
            }
        }
    }
}

/// Combined structural + tool-level report.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// Structural validation of the scene graph.
    pub scene: ValidationReport,
    /// Tool-level findings.
    pub author: Vec<AuthorLint>,
}

impl LintReport {
    /// True when the project can be published (no structural errors; tool
    /// lints are advisory).
    pub fn is_publishable(&self) -> bool {
        self.scene.is_playable()
    }

    /// Total findings across both layers.
    pub fn total(&self) -> usize {
        self.scene.issues.len() + self.author.len()
    }
}

/// Lints a project.
pub fn lint_project(project: &Project) -> LintReport {
    let scene = validate(&project.graph, Some(project.frame_size));
    let mut author = Vec::new();

    if !project.has_video() {
        author.push(AuthorLint::NoFootage);
    }

    let used: BTreeSet<u32> = project.graph.scenarios().iter().map(|s| s.segment.0).collect();
    for seg in project.segments.segments() {
        if !used.contains(&seg.id.0) {
            author.push(AuthorLint::UnusedSegment { segment: seg.id.0 });
        }
    }

    for s in project.graph.scenarios() {
        let mut conditions: Vec<&Expr> = Vec::new();
        for t in s.entry_triggers.triggers() {
            if let Some(c) = &t.condition {
                conditions.push(c);
            }
        }
        for o in s.objects() {
            if let Some(c) = &o.visible_when {
                conditions.push(c);
            }
            for t in o.triggers.triggers() {
                if let Some(c) = &t.condition {
                    conditions.push(c);
                }
            }
        }
        for cond in conditions {
            for v in cond.variables() {
                if !KNOWN_VARS.contains(&v.as_str()) {
                    author.push(AuthorLint::UnknownVariable {
                        scenario: s.name.clone(),
                        variable: v,
                    });
                }
            }
            for func in cond.functions() {
                if !KNOWN_FUNCS.contains(&func.as_str()) {
                    author.push(AuthorLint::UnknownFunction {
                        scenario: s.name.clone(),
                        function: func,
                    });
                }
            }
        }
    }

    LintReport { scene, author }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Command, CommandStack, TriggerTarget};
    use crate::wizard::{quiz_template, tour_template};

    #[test]
    fn templates_lint_clean_except_footage() {
        for p in [quiz_template("q", 3), tour_template("t", 3)] {
            let report = lint_project(&p);
            assert!(report.is_publishable(), "{:?}", report.scene.issues);
            // Only the missing-footage advisory.
            assert_eq!(report.author, vec![AuthorLint::NoFootage], "{:?}", report.author);
        }
    }

    #[test]
    fn unknown_identifiers_flagged() {
        let mut p = tour_template("t", 2);
        let mut stack = CommandStack::new();
        stack
            .apply(
                &mut p,
                Command::AddTrigger {
                    scenario: "hub".into(),
                    target: TriggerTarget::Entry,
                    event: "enter".into(),
                    condition: Some("lives > 0 && teleported(\"hub\")".into()),
                    actions: vec!["score 1".into()],
                },
            )
            .unwrap();
        let report = lint_project(&p);
        assert!(report
            .author
            .iter()
            .any(|l| matches!(l, AuthorLint::UnknownVariable { variable, .. } if variable == "lives")));
        assert!(report
            .author
            .iter()
            .any(|l| matches!(l, AuthorLint::UnknownFunction { function, .. } if function == "teleported")));
        // Still publishable — these are advisories.
        assert!(report.is_publishable());
    }

    #[test]
    fn unused_segment_flagged() {
        let mut p = tour_template("t", 2);
        // Add a cut creating a segment nothing points at.
        let mut stack = CommandStack::new();
        stack.apply(&mut p, Command::SplitSegment { frame: 75 }).unwrap();
        let report = lint_project(&p);
        assert!(report
            .author
            .iter()
            .any(|l| matches!(l, AuthorLint::UnusedSegment { .. })));
    }

    #[test]
    fn structural_errors_block_publishing() {
        let mut p = tour_template("t", 2);
        let mut stack = CommandStack::new();
        stack
            .apply(
                &mut p,
                Command::AddTrigger {
                    scenario: "hub".into(),
                    target: TriggerTarget::Entry,
                    event: "enter".into(),
                    condition: None,
                    actions: vec!["goto nowhere".into()],
                },
            )
            .unwrap();
        let report = lint_project(&p);
        assert!(!report.is_publishable());
        assert!(report.total() > 0);
    }
}
