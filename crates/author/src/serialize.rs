//! The `.vgp` project format.
//!
//! A line-oriented, versioned text format persisting everything the
//! authoring tool edits: project header, segment table, assets (full
//! pixels, hex-encoded), NPCs with dialogue trees, scenarios, objects and
//! triggers (in their textual script forms). The *encoded footage* is not
//! embedded — it lives in a sidecar `.vgv` container (see
//! [`vgbl_media::container`]) and is re-attached after load; everything
//! else round-trips exactly.
//!
//! Names (scenario, object, asset, NPC) must be single words — enforced
//! on save so the format stays unambiguous.

use vgbl_media::color::Rgb;
use vgbl_media::{Frame, FrameRate, SegmentTable};
use vgbl_scene::npc::DialogueChoice;
use vgbl_scene::{DialogueNode, DialogueTree, ImageAsset, Npc, ObjectKind, Rect, SceneGraph};
use vgbl_script::action::{split_args, Arg};
use vgbl_script::{Action, EventKind, Trigger};

use crate::error::AuthorError;
use crate::project::Project;
use crate::Result;

/// Format version written by this build.
pub const VGP_VERSION: u32 = 1;

fn check_name(kind: &str, name: &str) -> Result<()> {
    if name.is_empty()
        || name
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '\\')
    {
        return Err(AuthorError::Command(format!(
            "{kind} name {name:?} must be a single word without quotes"
        )));
    }
    Ok(())
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// Serialises a project to `.vgp` text.
///
/// # Errors
/// Fails when any name is not a single word.
pub fn to_vgp(project: &Project) -> Result<String> {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!("vgp {VGP_VERSION}\n"));
    out.push_str(&format!("name {}\n", quote(&project.name)));
    out.push_str(&format!("frame {} {}\n", project.frame_size.0, project.frame_size.1));
    out.push_str(&format!("rate {} {}\n", project.rate.num(), project.rate.den()));

    out.push_str(&format!("segments {}", project.segments.frame_count()));
    for seg in project.segments.segments().iter().skip(1) {
        out.push_str(&format!(" {}", seg.start));
    }
    out.push('\n');

    for asset in project.graph.assets().iter() {
        check_name("asset", &asset.name)?;
        let key = match asset.color_key {
            Some(k) => format!("{:02x}{:02x}{:02x}", k.r, k.g, k.b),
            None => "-".to_owned(),
        };
        let mut hex = String::with_capacity(asset.image.raw().len() * 2);
        for b in asset.image.raw() {
            hex.push_str(&format!("{b:02x}"));
        }
        out.push_str(&format!(
            "asset {} {} {} {} {}\n",
            asset.name,
            asset.image.width(),
            asset.image.height(),
            key,
            hex
        ));
    }

    for npc in project.graph.npcs() {
        check_name("npc", &npc.name)?;
        out.push_str(&format!("npc {}\n", npc.name));
        for (id, node) in npc.dialogue.iter() {
            out.push_str(&format!("dlgnode {} {} {}\n", npc.name, id, quote(&node.line)));
            for choice in &node.choices {
                let next = choice
                    .next
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "end".to_owned());
                out.push_str(&format!(
                    "dlgchoice {} {} {} {}\n",
                    npc.name,
                    id,
                    quote(&choice.text),
                    next
                ));
            }
        }
    }

    for s in project.graph.scenarios() {
        check_name("scenario", &s.name)?;
        out.push_str(&format!("scenario {} {}\n", s.name, s.segment.0));
        if !s.description.is_empty() {
            out.push_str(&format!("desc {} {}\n", s.name, quote(&s.description)));
        }
        for t in s.entry_triggers.triggers() {
            write_trigger(&mut out, &s.name, "entry", t);
        }
        for o in s.objects() {
            check_name("object", &o.name)?;
            let (kind, extra) = match &o.kind {
                ObjectKind::Button { label } => ("button", quote(label)),
                ObjectKind::Image { asset } => ("image", asset.clone()),
                ObjectKind::Item { asset, description, takeable } => (
                    "item",
                    format!(
                        "{} {} {}",
                        asset,
                        if *takeable { "yes" } else { "no" },
                        quote(description)
                    ),
                ),
                ObjectKind::NpcAnchor { npc } => ("npcref", npc.clone()),
            };
            out.push_str(&format!(
                "object {} {} {} {} {} {} {} {} {}\n",
                s.name, o.name, kind, o.bounds.x, o.bounds.y, o.bounds.w, o.bounds.h, o.z, extra
            ));
            if let Some(cond) = &o.visible_when {
                out.push_str(&format!(
                    "visible {} {} {}\n",
                    s.name,
                    o.name,
                    quote(&cond.to_string())
                ));
            }
            for t in o.triggers.triggers() {
                write_trigger(&mut out, &s.name, &o.name, t);
            }
        }
    }

    if let Ok(start) = project.graph.start() {
        let name = &project
            .graph
            .scenario(start)
            .expect("start id valid")
            .name;
        out.push_str(&format!("start {name}\n"));
    }
    Ok(out)
}

fn write_trigger(out: &mut String, scenario: &str, target: &str, t: &Trigger) {
    let cond = match &t.condition {
        Some(c) => quote(&c.to_string()),
        None => "-".to_owned(),
    };
    out.push_str(&format!(
        "trigger {} {} {} {}",
        scenario,
        target,
        quote(&t.event.to_string()),
        cond
    ));
    for a in &t.actions {
        out.push_str(&format!(" {}", quote(&a.to_string())));
    }
    out.push('\n');
}

fn parse_err(line: usize, message: impl Into<String>) -> AuthorError {
    AuthorError::ProjectParse { line, message: message.into() }
}

fn word(args: &[Arg], i: usize, line: usize) -> Result<&str> {
    match args.get(i) {
        Some(Arg::Word(w)) => Ok(w),
        Some(Arg::Quoted(_)) => Err(parse_err(line, format!("field {i} must be a bare word"))),
        None => Err(parse_err(line, format!("missing field {i}"))),
    }
}

fn quoted(args: &[Arg], i: usize, line: usize) -> Result<&str> {
    match args.get(i) {
        Some(Arg::Quoted(s)) => Ok(s),
        Some(Arg::Word(_)) => Err(parse_err(line, format!("field {i} must be quoted"))),
        None => Err(parse_err(line, format!("missing field {i}"))),
    }
}

fn num<T: std::str::FromStr>(args: &[Arg], i: usize, line: usize) -> Result<T> {
    word(args, i, line)?
        .parse::<T>()
        .map_err(|_| parse_err(line, format!("field {i} is not a valid number")))
}

/// Parses `.vgp` text back into a [`Project`] (with `video: None`; attach
/// the sidecar footage afterwards).
pub fn from_vgp(text: &str) -> Result<Project> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty project"))?;
    let version: u32 = header
        .strip_prefix("vgp ")
        .ok_or_else(|| parse_err(1, "missing `vgp` header"))?
        .trim()
        .parse()
        .map_err(|_| parse_err(1, "bad version"))?;
    if version != VGP_VERSION {
        return Err(parse_err(1, format!("unsupported version {version}")));
    }

    let mut project = Project::new("", (1, 1), FrameRate::FPS30);
    let mut graph = SceneGraph::new();
    let mut start: Option<String> = None;
    let mut saw_segments = false;

    for (idx, raw) in lines {
        let ln = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let args = split_args(line).map_err(|e| parse_err(ln, e.to_string()))?;
        let verb = word(&args, 0, ln)?;
        match verb {
            "name" => project.name = quoted(&args, 1, ln)?.to_owned(),
            "frame" => {
                project.frame_size = (num(&args, 1, ln)?, num(&args, 2, ln)?);
            }
            "rate" => {
                let n: u32 = num(&args, 1, ln)?;
                let d: u32 = num(&args, 2, ln)?;
                project.rate =
                    FrameRate::new(n, d).ok_or_else(|| parse_err(ln, "zero frame rate"))?;
            }
            "segments" => {
                let frame_count: usize = num(&args, 1, ln)?;
                let mut cuts = Vec::with_capacity(args.len().saturating_sub(2));
                for i in 2..args.len() {
                    cuts.push(num(&args, i, ln)?);
                }
                project.segments = SegmentTable::from_cuts(frame_count, &cuts)
                    .map_err(|e| parse_err(ln, e.to_string()))?;
                saw_segments = true;
            }
            "asset" => {
                let name = word(&args, 1, ln)?.to_owned();
                let w: u32 = num(&args, 2, ln)?;
                let h: u32 = num(&args, 3, ln)?;
                let key_str = word(&args, 4, ln)?;
                let key = if key_str == "-" {
                    None
                } else {
                    if key_str.len() != 6 {
                        return Err(parse_err(ln, "colour key must be 6 hex digits"));
                    }
                    let v = u32::from_str_radix(key_str, 16)
                        .map_err(|_| parse_err(ln, "bad colour key"))?;
                    Some(Rgb::new((v >> 16) as u8, (v >> 8) as u8, v as u8))
                };
                let hex = word(&args, 5, ln)?;
                if hex.len() != (w * h * 3) as usize * 2 {
                    return Err(parse_err(ln, "asset pixel data length mismatch"));
                }
                let mut data = Vec::with_capacity(hex.len() / 2);
                let hb = hex.as_bytes();
                for pair in hb.chunks_exact(2) {
                    let s = std::str::from_utf8(pair).expect("hex is ascii");
                    data.push(
                        u8::from_str_radix(s, 16)
                            .map_err(|_| parse_err(ln, "bad hex in asset data"))?,
                    );
                }
                let image =
                    Frame::from_raw(w, h, data).map_err(|e| parse_err(ln, e.to_string()))?;
                graph.assets_mut().insert(ImageAsset { name, image, color_key: key });
            }
            "npc" => {
                let name = word(&args, 1, ln)?.to_owned();
                graph.add_npc(Npc::new(name, DialogueTree::new()));
            }
            "dlgnode" => {
                let name = word(&args, 1, ln)?.to_owned();
                let id: u32 = num(&args, 2, ln)?;
                let line_text = quoted(&args, 3, ln)?.to_owned();
                let npc = graph
                    .npc(&name)
                    .cloned()
                    .ok_or_else(|| parse_err(ln, format!("dlgnode before npc `{name}`")))?;
                let mut dialogue = npc.dialogue;
                dialogue.insert(id, DialogueNode { line: line_text, choices: Vec::new() });
                graph.add_npc(Npc::new(name, dialogue));
            }
            "dlgchoice" => {
                let name = word(&args, 1, ln)?.to_owned();
                let id: u32 = num(&args, 2, ln)?;
                let text = quoted(&args, 3, ln)?.to_owned();
                let next_str = word(&args, 4, ln)?;
                let next = if next_str == "end" {
                    None
                } else {
                    Some(
                        next_str
                            .parse::<u32>()
                            .map_err(|_| parse_err(ln, "bad choice target"))?,
                    )
                };
                let npc = graph
                    .npc(&name)
                    .cloned()
                    .ok_or_else(|| parse_err(ln, format!("dlgchoice before npc `{name}`")))?;
                let mut dialogue = npc.dialogue;
                let mut node = dialogue
                    .get(id)
                    .cloned()
                    .ok_or_else(|| parse_err(ln, format!("dlgchoice before dlgnode {id}")))?;
                node.choices.push(DialogueChoice { text, next });
                dialogue.insert(id, node);
                graph.add_npc(Npc::new(name, dialogue));
            }
            "scenario" => {
                let name = word(&args, 1, ln)?.to_owned();
                let seg: u32 = num(&args, 2, ln)?;
                graph
                    .add_scenario(name, vgbl_media::SegmentId(seg))
                    .map_err(|e| parse_err(ln, e.to_string()))?;
            }
            "desc" => {
                let name = word(&args, 1, ln)?;
                let text = quoted(&args, 2, ln)?.to_owned();
                graph
                    .scenario_by_name_mut(name)
                    .ok_or_else(|| parse_err(ln, format!("desc before scenario `{name}`")))?
                    .description = text;
            }
            "object" => {
                let scenario = word(&args, 1, ln)?.to_owned();
                let obj_name = word(&args, 2, ln)?.to_owned();
                let kind_tag = word(&args, 3, ln)?.to_owned();
                let x: i32 = num(&args, 4, ln)?;
                let y: i32 = num(&args, 5, ln)?;
                let w: u32 = num(&args, 6, ln)?;
                let h: u32 = num(&args, 7, ln)?;
                let z: i32 = num(&args, 8, ln)?;
                let kind = match kind_tag.as_str() {
                    "button" => ObjectKind::Button { label: quoted(&args, 9, ln)?.to_owned() },
                    "image" => ObjectKind::Image { asset: word(&args, 9, ln)?.to_owned() },
                    "item" => ObjectKind::Item {
                        asset: word(&args, 9, ln)?.to_owned(),
                        takeable: match word(&args, 10, ln)? {
                            "yes" => true,
                            "no" => false,
                            other => {
                                return Err(parse_err(
                                    ln,
                                    format!("takeable must be yes/no, got {other}"),
                                ))
                            }
                        },
                        description: quoted(&args, 11, ln)?.to_owned(),
                    },
                    "npcref" => ObjectKind::NpcAnchor { npc: word(&args, 9, ln)?.to_owned() },
                    other => return Err(parse_err(ln, format!("unknown object kind `{other}`"))),
                };
                let s = graph
                    .scenario_by_name_mut(&scenario)
                    .ok_or_else(|| parse_err(ln, format!("object before scenario `{scenario}`")))?;
                let id = s
                    .add_object(obj_name, kind, Rect::new(x, y, w, h))
                    .map_err(|e| parse_err(ln, e.to_string()))?;
                s.object_mut(id).expect("just added").z = z;
            }
            "visible" => {
                let scenario = word(&args, 1, ln)?;
                let object = word(&args, 2, ln)?;
                let cond = quoted(&args, 3, ln)?;
                let expr =
                    vgbl_script::parse_expr(cond).map_err(|e| parse_err(ln, e.to_string()))?;
                graph
                    .scenario_by_name_mut(scenario)
                    .and_then(|s| s.object_by_name_mut(object))
                    .ok_or_else(|| parse_err(ln, "visible on unknown object"))?
                    .visible_when = Some(expr);
            }
            "trigger" => {
                let scenario = word(&args, 1, ln)?;
                let target = word(&args, 2, ln)?.to_owned();
                let event = EventKind::parse(quoted(&args, 3, ln)?)
                    .map_err(|e| parse_err(ln, e.to_string()))?;
                let cond = match args.get(4) {
                    Some(Arg::Word(w)) if w == "-" => None,
                    Some(Arg::Quoted(src)) => Some(
                        vgbl_script::parse_expr(src).map_err(|e| parse_err(ln, e.to_string()))?,
                    ),
                    _ => return Err(parse_err(ln, "condition must be quoted or `-`")),
                };
                let mut actions = Vec::with_capacity(args.len() - 5);
                for i in 5..args.len() {
                    let src = quoted(&args, i, ln)?;
                    actions
                        .push(Action::parse(src).map_err(|e| parse_err(ln, e.to_string()))?);
                }
                let trigger = Trigger { event, condition: cond, actions };
                let s = graph
                    .scenario_by_name_mut(scenario)
                    .ok_or_else(|| parse_err(ln, format!("trigger before scenario `{scenario}`")))?;
                if target == "entry" {
                    s.entry_triggers.push(trigger);
                } else {
                    s.object_by_name_mut(&target)
                        .ok_or_else(|| parse_err(ln, format!("trigger on unknown object `{target}`")))?
                        .triggers
                        .push(trigger);
                }
            }
            "start" => start = Some(word(&args, 1, ln)?.to_owned()),
            other => return Err(parse_err(ln, format!("unknown directive `{other}`"))),
        }
    }

    if !saw_segments {
        return Err(parse_err(1, "missing `segments` directive"));
    }
    if let Some(name) = start {
        graph
            .set_start(&name)
            .map_err(|e| AuthorError::ProjectParse { line: 0, message: e.to_string() })?;
    }
    project.graph = graph;
    project
        .check_integrity()
        .map_err(|e| AuthorError::ProjectParse { line: 0, message: e.to_string() })?;
    Ok(project)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wizard;

    #[test]
    fn roundtrip_wizard_quiz() {
        let project = wizard::quiz_template("physics_quiz", 3);
        let text = to_vgp(&project).unwrap();
        let back = from_vgp(&text).unwrap();
        assert_eq!(back.name, project.name);
        assert_eq!(back.frame_size, project.frame_size);
        assert_eq!(back.rate, project.rate);
        assert_eq!(back.segments, project.segments);
        assert_eq!(back.graph, project.graph);
    }

    #[test]
    fn roundtrip_wizard_tour() {
        let project = wizard::tour_template("museum", 4);
        let text = to_vgp(&project).unwrap();
        let back = from_vgp(&text).unwrap();
        assert_eq!(back.graph, project.graph);
        assert_eq!(back.segments, project.segments);
    }

    #[test]
    fn start_scenario_survives() {
        let mut project = wizard::tour_template("museum", 3);
        project.graph.set_start("room2").unwrap();
        let back = from_vgp(&to_vgp(&project).unwrap()).unwrap();
        let start = back.graph.start().unwrap();
        assert_eq!(back.graph.scenario(start).unwrap().name, "room2");
    }

    #[test]
    fn rejects_malformed_projects() {
        for (bad, why) in [
            ("", "empty"),
            ("vgp 99\n", "version"),
            ("vgp 1\nwarp 5\n", "unknown directive"),
            ("vgp 1\nname \"x\"\n", "missing segments"),
            ("vgp 1\nsegments 10\nscenario a 0\nscenario a 0\n", "dup scenario"),
            ("vgp 1\nsegments 10\nobject a b button 0 0 1 1 0 \"L\"\n", "object before scenario"),
            ("vgp 1\nsegments 10\nscenario a 9\n", "segment out of range"),
            (
                "vgp 1\nsegments 10\nscenario a 0\ntrigger a entry \"hover\" -\n",
                "bad event",
            ),
            (
                "vgp 1\nsegments 10\nscenario a 0\ntrigger a entry \"click\" \"((\"\n",
                "bad condition",
            ),
            ("vgp 1\nsegments 10\nasset a 2 2 - abcd\n", "short pixel data"),
            ("vgp 1\nsegments 10\nasset a 2 2 ggg abc\n", "bad key"),
            ("vgp 1\nsegments 10\ndlgnode ghost 0 \"hi\"\n", "dlgnode before npc"),
            ("vgp 1\nsegments 10\nstart nowhere\n", "unknown start"),
        ] {
            assert!(from_vgp(bad).is_err(), "accepted ({why}): {bad:?}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "vgp 1\n\n# a comment\nname \"x\"\nsegments 5\n";
        let p = from_vgp(text).unwrap();
        assert_eq!(p.name, "x");
        assert_eq!(p.segments.frame_count(), 5);
    }

    #[test]
    fn quoting_escapes_roundtrip() {
        let mut project = wizard::tour_template("t", 2);
        project.name = "He said \"go\"\nthen\tleft \\ done".into();
        project.graph.scenario_by_name_mut("room1").unwrap().description =
            "Multi\nline \"desc\"".into();
        let back = from_vgp(&to_vgp(&project).unwrap()).unwrap();
        assert_eq!(back.name, project.name);
        assert_eq!(
            back.graph.scenario_by_name("room1").unwrap().description,
            project.graph.scenario_by_name("room1").unwrap().description
        );
    }

    #[test]
    fn names_with_spaces_rejected_on_save() {
        let mut project = crate::project::Project::new(
            "t",
            (64, 48),
            vgbl_media::FrameRate::FPS30,
        );
        project
            .graph
            .add_scenario("room one", vgbl_media::SegmentId(0))
            .unwrap();
        assert!(to_vgp(&project).is_err());
    }
}
