//! Video import — §4.1's one-button pipeline.
//!
//! "The users just need to select video files from network or video
//! cameras such that video can be divided into scenario components by the
//! authoring tool." [`import_footage`] does exactly that: raw frames in,
//! shot detection, encoding, and a segment table out, with a report the
//! UI shows the designer (how many segments, how confident, how big).

use vgbl_media::codec::{EncodeConfig, Encoder};
use vgbl_media::shot::{score_detection, DetectionScore, ShotDetector, ShotDetectorConfig};
use vgbl_media::timeline::FrameRate;
use vgbl_media::Frame;
use vgbl_media::SegmentTable;

use crate::project::Project;
use crate::Result;

/// Configuration of the import pipeline.
#[derive(Debug, Clone)]
pub struct ImportConfig {
    /// Shot-detection settings.
    pub detector: ShotDetectorConfig,
    /// Encoder settings.
    pub encoder: EncodeConfig,
    /// Force a keyframe at every detected cut so scenario switches land
    /// on keyframes (seek cost 1) and delivery chunks never straddle two
    /// segments. Costs a little compression; see EXP-3.
    pub align_keyframes: bool,
}

impl Default for ImportConfig {
    fn default() -> Self {
        ImportConfig {
            detector: ShotDetectorConfig::default(),
            encoder: EncodeConfig::default(),
            align_keyframes: true,
        }
    }
}

/// What the designer sees after an import.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportReport {
    /// Frames imported.
    pub frames: usize,
    /// Detected cut positions.
    pub cuts: Vec<usize>,
    /// Segments produced (cuts + 1).
    pub segments: usize,
    /// Encoded payload size in bytes.
    pub encoded_bytes: usize,
    /// Compression ratio achieved.
    pub compression_ratio: f64,
    /// Detection accuracy against ground truth, when the caller has one
    /// (synthetic footage does; camera footage would not).
    pub accuracy: Option<DetectionScore>,
}

/// Imports raw frames into `project`: detects shots, encodes, attaches.
///
/// `ground_truth_cuts` is optional — synthetic footage provides it so the
/// report can carry precision/recall (EXP-1).
pub fn import_footage(
    project: &mut Project,
    frames: &[Frame],
    rate: FrameRate,
    config: &ImportConfig,
    ground_truth_cuts: Option<&[usize]>,
) -> Result<ImportReport> {
    let detector = ShotDetector::new(config.detector.clone());
    let cuts: Vec<usize> = detector.detect(frames).iter().map(|c| c.frame).collect();
    let table = SegmentTable::from_cuts(frames.len(), &cuts)?;
    let encoder = Encoder::new(config.encoder);
    let video = if config.align_keyframes {
        encoder.encode_aligned(frames, rate, &cuts)?
    } else {
        encoder.encode(frames, rate)?
    };

    let report = ImportReport {
        frames: frames.len(),
        segments: table.len(),
        encoded_bytes: video.payload_bytes(),
        compression_ratio: video.compression_ratio(),
        accuracy: ground_truth_cuts.map(|truth| score_detection(&cuts, truth, 1)),
        cuts,
    };
    project.rate = rate;
    project.attach_video(video, table)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec};

    fn footage() -> vgbl_media::synth::Footage {
        FootageSpec {
            width: 48,
            height: 32,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(12, Rgb::new(200, 60, 60)),
                ShotSpec::plain(10, Rgb::new(60, 200, 60)),
                ShotSpec::plain(14, Rgb::new(60, 60, 200)),
            ],
            noise_seed: 4,
        }
        .render()
        .unwrap()
    }

    #[test]
    fn import_detects_segments_and_attaches() {
        let f = footage();
        let mut project = Project::new("demo", (48, 32), FrameRate::FPS30);
        let report = import_footage(
            &mut project,
            &f.frames,
            f.rate,
            &ImportConfig::default(),
            Some(&f.cuts),
        )
        .unwrap();
        assert_eq!(report.frames, 36);
        assert_eq!(report.cuts, vec![12, 22]);
        assert_eq!(report.segments, 3);
        assert!(report.encoded_bytes > 0);
        assert!(report.compression_ratio > 1.0);
        let acc = report.accuracy.unwrap();
        assert_eq!(acc.f1(), 1.0);
        assert!(project.has_video());
        assert_eq!(project.segments.len(), 3);
        assert!(project.check_integrity().is_ok());
    }

    #[test]
    fn import_without_ground_truth_skips_accuracy() {
        let f = footage();
        let mut project = Project::new("demo", (48, 32), FrameRate::FPS30);
        let report =
            import_footage(&mut project, &f.frames, f.rate, &ImportConfig::default(), None)
                .unwrap();
        assert!(report.accuracy.is_none());
    }

    #[test]
    fn import_rejects_mismatched_project_size() {
        let f = footage();
        let mut project = Project::new("demo", (99, 99), FrameRate::FPS30);
        assert!(import_footage(
            &mut project,
            &f.frames,
            f.rate,
            &ImportConfig::default(),
            None
        )
        .is_err());
    }

    #[test]
    fn import_empty_footage_fails() {
        let mut project = Project::new("demo", (48, 32), FrameRate::FPS30);
        assert!(
            import_footage(&mut project, &[], FrameRate::FPS30, &ImportConfig::default(), None)
                .is_err()
        );
    }
}

#[cfg(test)]
mod aligned_import_tests {
    use super::*;
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec};

    #[test]
    fn aligned_import_puts_keyframes_on_cuts() {
        let f = FootageSpec {
            width: 48,
            height: 32,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(22, Rgb::new(200, 60, 60)),
                ShotSpec::plain(17, Rgb::new(60, 200, 60)),
            ],
            noise_seed: 4,
        }
        .render()
        .unwrap();
        let mut project = Project::new("demo", (48, 32), FrameRate::FPS30);
        import_footage(&mut project, &f.frames, f.rate, &ImportConfig::default(), Some(&f.cuts))
            .unwrap();
        let video = project.video.as_ref().unwrap();
        // The cut at frame 22 must be a keyframe.
        assert!(video.keyframes().contains(&22), "keyframes: {:?}", video.keyframes());
        // And a seek to the segment start decodes exactly one frame.
        let (_, n) = vgbl_media::codec::Decoder::default()
            .decode_frame(video, 22)
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn unaligned_import_keeps_regular_cadence() {
        let f = FootageSpec {
            width: 48,
            height: 32,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(22, Rgb::new(200, 60, 60)),
                ShotSpec::plain(17, Rgb::new(60, 200, 60)),
            ],
            noise_seed: 4,
        }
        .render()
        .unwrap();
        let mut project = Project::new("demo", (48, 32), FrameRate::FPS30);
        let config = ImportConfig { align_keyframes: false, ..Default::default() };
        import_footage(&mut project, &f.frames, f.rate, &config, None).unwrap();
        let video = project.video.as_ref().unwrap();
        assert_eq!(video.keyframes(), vec![0, 15, 30]);
    }
}
