//! Saving and loading projects on disk.
//!
//! A project persists as a pair of files next to each other:
//!
//! * `<name>.vgp` — the textual project (scene graph, segments, assets,
//!   triggers; see [`crate::serialize`]);
//! * `<name>.vgv` — the encoded footage in the binary `VGV` container
//!   (absent when no footage has been imported yet).
//!
//! [`load_project`] re-attaches the sidecar automatically and verifies
//! the pair still matches (frame counts, dimensions).

use std::fs;
use std::path::{Path, PathBuf};

use vgbl_media::{ContainerReader, ContainerWriter};

use crate::error::AuthorError;
use crate::project::Project;
use crate::serialize::{from_vgp, to_vgp};
use crate::Result;

fn io_err(what: &str, path: &Path, e: std::io::Error) -> AuthorError {
    AuthorError::Io(format!("{what} {}: {e}", path.display()))
}

/// Saves `project` into `dir` as `<basename>.vgp` (+ `.vgv` when footage
/// is attached). Returns the paths written.
pub fn save_project(
    project: &Project,
    dir: &Path,
    basename: &str,
) -> Result<(PathBuf, Option<PathBuf>)> {
    fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
    let vgp_path = dir.join(format!("{basename}.vgp"));
    let text = to_vgp(project)?;
    fs::write(&vgp_path, text).map_err(|e| io_err("writing", &vgp_path, e))?;

    let vgv_path = match &project.video {
        Some(video) => {
            let path = dir.join(format!("{basename}.vgv"));
            let bytes = ContainerWriter::write(video);
            fs::write(&path, bytes).map_err(|e| io_err("writing", &path, e))?;
            Some(path)
        }
        None => None,
    };
    Ok((vgp_path, vgv_path))
}

/// Loads a project from a `.vgp` path, attaching the `.vgv` sidecar when
/// one sits next to it.
pub fn load_project(vgp_path: &Path) -> Result<Project> {
    let text = fs::read_to_string(vgp_path).map_err(|e| io_err("reading", vgp_path, e))?;
    let mut project = from_vgp(&text)?;

    let vgv_path = vgp_path.with_extension("vgv");
    if vgv_path.exists() {
        let bytes = fs::read(&vgv_path).map_err(|e| io_err("reading", &vgv_path, e))?;
        let video = ContainerReader::read(&bytes)?;
        let segments = project.segments.clone();
        project.attach_video(video, segments)?;
    }
    Ok(project)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wizard::tour_template;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique scratch directory per test, cleaned up on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Scratch {
            let dir = std::env::temp_dir().join(format!(
                "vgbl-fileio-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn save_load_without_footage() {
        let scratch = Scratch::new();
        let project = tour_template("museum", 3);
        let (vgp, vgv) = save_project(&project, &scratch.0, "museum").unwrap();
        assert!(vgp.exists());
        assert!(vgv.is_none());
        let back = load_project(&vgp).unwrap();
        assert_eq!(back.graph, project.graph);
        assert!(!back.has_video());
    }

    #[test]
    fn save_load_with_footage_sidecar() {
        use crate::import::{import_footage, ImportConfig};
        use vgbl_media::color::Rgb;
        use vgbl_media::synth::{FootageSpec, ShotSpec};
        use vgbl_media::FrameRate;

        let scratch = Scratch::new();
        let mut project = Project::new("demo", (48, 32), FrameRate::FPS30);
        let footage = FootageSpec {
            width: 48,
            height: 32,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(12, Rgb::new(180, 60, 60)),
                ShotSpec::plain(12, Rgb::new(60, 60, 180)),
            ],
            noise_seed: 3,
        }
        .render()
        .unwrap();
        import_footage(&mut project, &footage.frames, footage.rate, &ImportConfig::default(), None)
            .unwrap();
        project
            .graph
            .add_scenario("a", vgbl_media::SegmentId(0))
            .unwrap();

        let (vgp, vgv) = save_project(&project, &scratch.0, "demo").unwrap();
        assert!(vgv.as_ref().map(|p| p.exists()).unwrap_or(false));
        let back = load_project(&vgp).unwrap();
        assert!(back.has_video());
        assert_eq!(back.video, project.video);
        assert_eq!(back.segments, project.segments);
        assert_eq!(back.graph, project.graph);
        assert!(back.check_integrity().is_ok());
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            load_project(Path::new("/nonexistent/deeply/missing.vgp")),
            Err(AuthorError::Io(_))
        ));
    }

    #[test]
    fn corrupt_sidecar_is_reported() {
        let scratch = Scratch::new();
        let project = tour_template("t", 2);
        let (vgp, _) = save_project(&project, &scratch.0, "t").unwrap();
        // Plant a garbage sidecar.
        std::fs::write(vgp.with_extension("vgv"), b"not a container").unwrap();
        assert!(matches!(
            load_project(&vgp),
            Err(AuthorError::Media(_))
        ));
    }
}
