//! The authoring document.
//!
//! A [`Project`] bundles what a course designer works on: the imported
//! footage (encoded video + its segment table) and the game content (the
//! scene graph). Integrity invariants tie the two together: the segment
//! table must cover the video exactly, and every scenario must reference
//! an existing segment.

use vgbl_media::codec::EncodedVideo;
use vgbl_media::{FrameRate, SegmentTable};
use vgbl_scene::SceneGraph;

use crate::error::AuthorError;
use crate::Result;

/// A complete authoring document.
#[derive(Debug, Clone, PartialEq)]
pub struct Project {
    /// Project title (shown in the authoring tool's title bar).
    pub name: String,
    /// Video frame size `(width, height)` all scenarios share.
    pub frame_size: (u32, u32),
    /// Frame rate of the footage.
    pub rate: FrameRate,
    /// The imported, encoded footage (absent before import).
    pub video: Option<EncodedVideo>,
    /// The segment table partitioning the footage into scenario units.
    pub segments: SegmentTable,
    /// The game content.
    pub graph: SceneGraph,
}

impl Project {
    /// A fresh project with no footage and an empty graph. The segment
    /// table starts as a single placeholder segment so scenarios can be
    /// sketched before footage arrives.
    pub fn new(name: impl Into<String>, frame_size: (u32, u32), rate: FrameRate) -> Project {
        Project {
            name: name.into(),
            frame_size,
            rate,
            video: None,
            segments: SegmentTable::whole(1).expect("one frame is a valid table"),
            graph: SceneGraph::new(),
        }
    }

    /// Attaches imported footage, replacing the placeholder table.
    ///
    /// # Errors
    /// [`AuthorError::Integrity`] when the table does not cover the video
    /// or dimensions disagree with the project.
    pub fn attach_video(&mut self, video: EncodedVideo, segments: SegmentTable) -> Result<()> {
        if segments.frame_count() != video.len() {
            return Err(AuthorError::Integrity(format!(
                "segment table covers {} frames, video has {}",
                segments.frame_count(),
                video.len()
            )));
        }
        if (video.width, video.height) != self.frame_size {
            return Err(AuthorError::Integrity(format!(
                "video is {}x{}, project expects {}x{}",
                video.width, video.height, self.frame_size.0, self.frame_size.1
            )));
        }
        self.video = Some(video);
        self.segments = segments;
        Ok(())
    }

    /// Whether footage has been imported.
    pub fn has_video(&self) -> bool {
        self.video.is_some()
    }

    /// Checks all integrity invariants, returning the first violation.
    pub fn check_integrity(&self) -> Result<()> {
        if let Some(video) = &self.video {
            if self.segments.frame_count() != video.len() {
                return Err(AuthorError::Integrity(
                    "segment table no longer matches video length".into(),
                ));
            }
            if (video.width, video.height) != self.frame_size {
                return Err(AuthorError::Integrity("video dimensions drifted".into()));
            }
        }
        for s in self.graph.scenarios() {
            if self.segments.get(s.segment).is_none() {
                return Err(AuthorError::Integrity(format!(
                    "scenario `{}` references missing segment {}",
                    s.name, s.segment
                )));
            }
        }
        Ok(())
    }

    /// Summary counters for the UI status bar:
    /// `(scenarios, objects, triggers, segments)`.
    pub fn stats(&self) -> (usize, usize, usize, usize) {
        let scenarios = self.graph.len();
        let mut objects = 0;
        let mut triggers = 0;
        for s in self.graph.scenarios() {
            objects += s.objects().len();
            triggers += s.entry_triggers.len();
            for o in s.objects() {
                triggers += o.triggers.len();
            }
        }
        (scenarios, objects, triggers, self.segments.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::codec::{EncodeConfig, Encoder};
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec};
    use vgbl_media::SegmentId;

    fn encoded(frames: usize, w: u32, h: u32) -> EncodedVideo {
        let footage = FootageSpec {
            width: w,
            height: h,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(frames, Rgb::new(120, 80, 40))],
            noise_seed: 2,
        }
        .render()
        .unwrap();
        Encoder::new(EncodeConfig { gop: 5, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap()
    }

    #[test]
    fn fresh_project_has_placeholder_table() {
        let p = Project::new("demo", (64, 48), FrameRate::FPS30);
        assert!(!p.has_video());
        assert_eq!(p.segments.len(), 1);
        assert!(p.check_integrity().is_ok());
    }

    #[test]
    fn attach_video_validates() {
        let mut p = Project::new("demo", (32, 24), FrameRate::FPS30);
        let video = encoded(10, 32, 24);
        let table = SegmentTable::from_cuts(10, &[5]).unwrap();
        p.attach_video(video.clone(), table).unwrap();
        assert!(p.has_video());
        assert_eq!(p.segments.len(), 2);

        // Wrong table length.
        let mut p2 = Project::new("demo", (32, 24), FrameRate::FPS30);
        let bad = SegmentTable::from_cuts(9, &[5]).unwrap();
        assert!(p2.attach_video(video.clone(), bad).is_err());

        // Wrong dimensions.
        let mut p3 = Project::new("demo", (64, 48), FrameRate::FPS30);
        let table = SegmentTable::from_cuts(10, &[5]).unwrap();
        assert!(p3.attach_video(video, table).is_err());
    }

    #[test]
    fn integrity_catches_dangling_segment_refs() {
        let mut p = Project::new("demo", (32, 24), FrameRate::FPS30);
        p.graph.add_scenario("s", SegmentId(5)).unwrap();
        assert!(matches!(p.check_integrity(), Err(AuthorError::Integrity(_))));
        let mut ok = Project::new("demo", (32, 24), FrameRate::FPS30);
        ok.graph.add_scenario("s", SegmentId(0)).unwrap();
        assert!(ok.check_integrity().is_ok());
    }

    #[test]
    fn stats_count_everything() {
        let mut p = Project::new("demo", (64, 48), FrameRate::FPS30);
        use vgbl_scene::{ObjectKind, Rect};
        use vgbl_script::{Action, EventKind, Trigger};
        let id = p.graph.add_scenario("a", SegmentId(0)).unwrap();
        let s = p.graph.scenario_mut(id).unwrap();
        s.entry_triggers
            .push(Trigger::unconditional(EventKind::Enter, vec![Action::AddScore(1)]));
        let o = s
            .add_object("b", ObjectKind::Button { label: "x".into() }, Rect::new(0, 0, 4, 4))
            .unwrap();
        s.object_mut(o).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::End("done".into())],
        ));
        assert_eq!(p.stats(), (1, 1, 2, 1));
    }
}
