//! The object editor (§4.2).
//!
//! "An object editor is implemented for such requirements. Users can set
//! the properties and events of objects in video and produce adequate
//! feedback when users trigger them." [`ObjectEditor`] mounts buttons,
//! images, items and NPC anchors on a scenario and wires their events
//! from the textual trigger forms. Every operation is undoable.

use vgbl_scene::{ObjectKind, Rect};

use crate::command::{Command, CommandStack, TriggerTarget};
use crate::project::Project;
use crate::Result;

/// Object-level editing session over one scenario of a project.
///
/// # Examples
///
/// ```
/// use vgbl_author::{CommandStack, Project};
/// use vgbl_author::object_editor::ObjectEditor;
/// use vgbl_author::scenario_editor::ScenarioEditor;
/// use vgbl_media::{FrameRate, SegmentId};
/// use vgbl_scene::Rect;
///
/// let mut project = Project::new("demo", (64, 48), FrameRate::FPS30);
/// let mut stack = CommandStack::new();
/// ScenarioEditor::new(&mut project, &mut stack)
///     .create_scenario("room", SegmentId(0))
///     .unwrap();
///
/// let mut ed = ObjectEditor::new(&mut project, &mut stack, "room");
/// ed.add_item("key", "key_img", "A brass key.", true, Rect::new(10, 30, 6, 4)).unwrap();
/// ed.wire("key", "drag", None, &["score 5", "text \"Got it!\""]).unwrap();
/// drop(ed);
///
/// // Everything is undoable.
/// assert_eq!(stack.undo_depth(), 4); // scenario + asset + item + trigger
/// stack.undo(&mut project).unwrap();
/// ```
#[derive(Debug)]
pub struct ObjectEditor<'a> {
    project: &'a mut Project,
    stack: &'a mut CommandStack,
    scenario: String,
}

impl<'a> ObjectEditor<'a> {
    /// Opens the editor on `scenario`.
    pub fn new(
        project: &'a mut Project,
        stack: &'a mut CommandStack,
        scenario: &str,
    ) -> ObjectEditor<'a> {
        ObjectEditor { project, stack, scenario: scenario.to_owned() }
    }

    /// Mounts a navigation/action button.
    pub fn add_button(&mut self, name: &str, label: &str, bounds: Rect) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::AddObject {
                scenario: self.scenario.clone(),
                name: name.to_owned(),
                kind: ObjectKind::Button { label: label.to_owned() },
                bounds,
            },
        )
    }

    /// Mounts an image object backed by `asset` (registering a
    /// placeholder asset if the name is new — designers drop images in
    /// before final art exists).
    pub fn add_image(&mut self, name: &str, asset: &str, bounds: Rect) -> Result<()> {
        self.ensure_asset(asset, bounds)?;
        self.stack.apply(
            self.project,
            Command::AddObject {
                scenario: self.scenario.clone(),
                name: name.to_owned(),
                kind: ObjectKind::Image { asset: asset.to_owned() },
                bounds,
            },
        )
    }

    /// Mounts a collectable/examinable item.
    pub fn add_item(
        &mut self,
        name: &str,
        asset: &str,
        description: &str,
        takeable: bool,
        bounds: Rect,
    ) -> Result<()> {
        self.ensure_asset(asset, bounds)?;
        self.stack.apply(
            self.project,
            Command::AddObject {
                scenario: self.scenario.clone(),
                name: name.to_owned(),
                kind: ObjectKind::Item {
                    asset: asset.to_owned(),
                    description: description.to_owned(),
                    takeable,
                },
                bounds,
            },
        )
    }

    /// Mounts an NPC anchor (the NPC itself is registered via
    /// [`crate::command::Command::AddNpc`]).
    pub fn add_npc_anchor(&mut self, name: &str, npc: &str, bounds: Rect) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::AddObject {
                scenario: self.scenario.clone(),
                name: name.to_owned(),
                kind: ObjectKind::NpcAnchor { npc: npc.to_owned() },
                bounds,
            },
        )
    }

    /// Moves/resizes an object.
    pub fn set_bounds(&mut self, object: &str, bounds: Rect) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::MoveObject {
                scenario: self.scenario.clone(),
                object: object.to_owned(),
                bounds,
            },
        )
    }

    /// Changes an object's stacking order.
    pub fn set_z(&mut self, object: &str, z: i32) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::SetObjectZ {
                scenario: self.scenario.clone(),
                object: object.to_owned(),
                z,
            },
        )
    }

    /// Sets (or clears, with `None`) the visibility condition.
    pub fn set_visible_when(&mut self, object: &str, condition: Option<&str>) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::SetVisibleWhen {
                scenario: self.scenario.clone(),
                object: object.to_owned(),
                condition: condition.map(str::to_owned),
            },
        )
    }

    /// Wires an event: `event`, optional `condition` and `actions` are
    /// the textual forms, e.g.
    /// `wire("computer", "use fan", Some("flag(\"diagnosed\")"),
    /// &["flag fixed on", "score 20"])`.
    pub fn wire(
        &mut self,
        object: &str,
        event: &str,
        condition: Option<&str>,
        actions: &[&str],
    ) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::AddTrigger {
                scenario: self.scenario.clone(),
                target: TriggerTarget::Object(object.to_owned()),
                event: event.to_owned(),
                condition: condition.map(str::to_owned),
                actions: actions.iter().map(|s| (*s).to_owned()).collect(),
            },
        )
    }

    /// Removes an object.
    pub fn remove(&mut self, object: &str) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::RemoveObject {
                scenario: self.scenario.clone(),
                object: object.to_owned(),
            },
        )
    }

    fn ensure_asset(&mut self, asset: &str, bounds: Rect) -> Result<()> {
        if !self.project.graph.assets().contains(asset) {
            self.stack.apply(
                self.project,
                Command::AddAsset {
                    name: asset.to_owned(),
                    width: bounds.w.max(3),
                    height: bounds.h.max(3),
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario_editor::ScenarioEditor;
    use vgbl_media::{FrameRate, SegmentId, SegmentTable};

    fn setup() -> (Project, CommandStack) {
        let mut p = Project::new("demo", (64, 48), FrameRate::FPS30);
        p.segments = SegmentTable::from_cuts(20, &[10]).unwrap();
        let mut stack = CommandStack::new();
        {
            let mut ed = ScenarioEditor::new(&mut p, &mut stack);
            ed.create_scenario("room", SegmentId(0)).unwrap();
        }
        (p, stack)
    }

    #[test]
    fn mounting_every_kind() {
        let (mut p, mut stack) = setup();
        {
            let mut ed = ObjectEditor::new(&mut p, &mut stack, "room");
            ed.add_button("next", "Next room", Rect::new(50, 2, 10, 6)).unwrap();
            ed.add_image("decor", "plant", Rect::new(2, 30, 8, 12)).unwrap();
            ed.add_item("key", "key_img", "A small brass key.", true, Rect::new(20, 35, 6, 4))
                .unwrap();
            ed.add_npc_anchor("janitor", "janitor", Rect::new(30, 10, 10, 20)).unwrap();
        }
        let s = p.graph.scenario_by_name("room").unwrap();
        assert_eq!(s.objects().len(), 4);
        // Assets auto-registered for image/item.
        assert!(p.graph.assets().contains("plant"));
        assert!(p.graph.assets().contains("key_img"));
    }

    #[test]
    fn property_edits_and_wiring() {
        let (mut p, mut stack) = setup();
        {
            let mut ed = ObjectEditor::new(&mut p, &mut stack, "room");
            ed.add_button("next", "Next", Rect::new(0, 0, 8, 8)).unwrap();
            ed.set_bounds("next", Rect::new(4, 4, 10, 10)).unwrap();
            ed.set_z("next", 2).unwrap();
            ed.set_visible_when("next", Some("flag(\"ready\")")).unwrap();
            ed.wire("next", "click", None, &["score 1", "text \"onwards\""]).unwrap();
            ed.wire("next", "key n", Some("score > 0"), &["score 1"]).unwrap();
        }
        let o = p
            .graph
            .scenario_by_name("room")
            .unwrap()
            .object_by_name("next")
            .unwrap();
        assert_eq!(o.bounds, Rect::new(4, 4, 10, 10));
        assert_eq!(o.z, 2);
        assert!(o.visible_when.is_some());
        assert_eq!(o.triggers.len(), 2);
        // Clear visibility.
        {
            let mut ed = ObjectEditor::new(&mut p, &mut stack, "room");
            ed.set_visible_when("next", None).unwrap();
        }
        let o = p
            .graph
            .scenario_by_name("room")
            .unwrap()
            .object_by_name("next")
            .unwrap();
        assert!(o.visible_when.is_none());
    }

    #[test]
    fn errors_surface_and_do_not_mutate() {
        let (mut p, mut stack) = setup();
        let before_depth = stack.undo_depth();
        let mut ed = ObjectEditor::new(&mut p, &mut stack, "room");
        assert!(ed.wire("ghost", "click", None, &["score 1"]).is_err());
        assert!(ed.set_bounds("ghost", Rect::default()).is_err());
        assert!(ed.remove("ghost").is_err());
        drop(ed);
        assert_eq!(stack.undo_depth(), before_depth);
        // Unknown scenario too.
        let mut ed = ObjectEditor::new(&mut p, &mut stack, "nowhere");
        assert!(ed.add_button("b", "B", Rect::default()).is_err());
    }

    #[test]
    fn remove_is_undoable() {
        let (mut p, mut stack) = setup();
        {
            let mut ed = ObjectEditor::new(&mut p, &mut stack, "room");
            ed.add_button("next", "Next", Rect::new(0, 0, 8, 8)).unwrap();
            ed.remove("next").unwrap();
        }
        assert!(p.graph.scenario_by_name("room").unwrap().objects().is_empty());
        stack.undo(&mut p).unwrap();
        assert_eq!(p.graph.scenario_by_name("room").unwrap().objects().len(), 1);
    }
}
