//! The scenario editor (§4.1).
//!
//! "Course designers can produce scenarios by shooting videos and
//! defining relationship between objects in it." [`ScenarioEditor`] is
//! the ergonomic face over the command stack for scenario-level work:
//! creating scenarios over segments, wiring transitions, entry scripts
//! and manual re-cutting of the timeline. Every operation is undoable.

use vgbl_media::SegmentId;

use crate::command::{Command, CommandStack, TriggerTarget};
use crate::project::Project;
use crate::Result;

/// Scenario-level editing session over a project.
#[derive(Debug)]
pub struct ScenarioEditor<'a> {
    project: &'a mut Project,
    stack: &'a mut CommandStack,
}

impl<'a> ScenarioEditor<'a> {
    /// Opens the editor over a project and its command stack.
    pub fn new(project: &'a mut Project, stack: &'a mut CommandStack) -> ScenarioEditor<'a> {
        ScenarioEditor { project, stack }
    }

    /// Creates a scenario presenting `segment`.
    pub fn create_scenario(&mut self, name: &str, segment: SegmentId) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::AddScenario { name: name.to_owned(), segment },
        )
    }

    /// Deletes a scenario.
    pub fn delete_scenario(&mut self, name: &str) -> Result<()> {
        self.stack
            .apply(self.project, Command::RemoveScenario { name: name.to_owned() })
    }

    /// Renames a scenario, rewriting transitions.
    pub fn rename_scenario(&mut self, old: &str, new: &str) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::RenameScenario { old: old.to_owned(), new: new.to_owned() },
        )
    }

    /// Marks the scenario players start in.
    pub fn set_start(&mut self, name: &str) -> Result<()> {
        self.stack
            .apply(self.project, Command::SetStart { name: name.to_owned() })
    }

    /// Sets the designer-facing description.
    pub fn describe(&mut self, scenario: &str, text: &str) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::SetDescription { scenario: scenario.to_owned(), text: text.to_owned() },
        )
    }

    /// Re-points a scenario at another segment.
    pub fn set_segment(&mut self, scenario: &str, segment: SegmentId) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::SetScenarioSegment { scenario: scenario.to_owned(), segment },
        )
    }

    /// Adds an entry script: actions (textual form) run on scenario
    /// entry, optionally guarded.
    pub fn on_enter(
        &mut self,
        scenario: &str,
        condition: Option<&str>,
        actions: &[&str],
    ) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::AddTrigger {
                scenario: scenario.to_owned(),
                target: TriggerTarget::Entry,
                event: "enter".to_owned(),
                condition: condition.map(str::to_owned),
                actions: actions.iter().map(|s| (*s).to_owned()).collect(),
            },
        )
    }

    /// Adds a timed script firing `ms` after scenario entry.
    pub fn after_ms(
        &mut self,
        scenario: &str,
        ms: u64,
        condition: Option<&str>,
        actions: &[&str],
    ) -> Result<()> {
        self.stack.apply(
            self.project,
            Command::AddTrigger {
                scenario: scenario.to_owned(),
                target: TriggerTarget::Entry,
                event: format!("timer {ms}"),
                condition: condition.map(str::to_owned),
                actions: actions.iter().map(|s| (*s).to_owned()).collect(),
            },
        )
    }

    /// Manually cuts the timeline at `frame` (the designer disagreeing
    /// with the shot detector).
    pub fn cut_at(&mut self, frame: usize) -> Result<()> {
        self.stack.apply(self.project, Command::SplitSegment { frame })
    }

    /// Merges the segment containing `frame` with its successor.
    pub fn merge_after(&mut self, frame: usize) -> Result<()> {
        self.stack.apply(self.project, Command::MergeSegmentAfter { frame })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::{FrameRate, SegmentTable};

    fn setup() -> (Project, CommandStack) {
        let mut p = Project::new("demo", (64, 48), FrameRate::FPS30);
        p.segments = SegmentTable::from_cuts(30, &[10, 20]).unwrap();
        (p, CommandStack::new())
    }

    #[test]
    fn scenario_lifecycle() {
        let (mut p, mut stack) = setup();
        {
            let mut ed = ScenarioEditor::new(&mut p, &mut stack);
            ed.create_scenario("intro", SegmentId(0)).unwrap();
            ed.create_scenario("lab", SegmentId(1)).unwrap();
            ed.describe("lab", "The chemistry lab.").unwrap();
            ed.set_start("lab").unwrap();
            ed.rename_scenario("intro", "hallway").unwrap();
            ed.delete_scenario("hallway").unwrap();
        }
        assert_eq!(p.graph.len(), 1);
        assert_eq!(p.graph.scenarios()[0].description, "The chemistry lab.");
        // All six operations undoable.
        assert_eq!(stack.undo_depth(), 6);
        stack.undo(&mut p).unwrap();
        assert_eq!(p.graph.len(), 2);
    }

    #[test]
    fn entry_and_timer_scripts() {
        let (mut p, mut stack) = setup();
        let mut ed = ScenarioEditor::new(&mut p, &mut stack);
        ed.create_scenario("intro", SegmentId(0)).unwrap();
        ed.on_enter("intro", None, &["text \"Welcome!\"", "score 1"]).unwrap();
        ed.after_ms("intro", 2000, Some("score < 5"), &["text \"Need a hint?\""])
            .unwrap();
        let s = p.graph.scenario_by_name("intro").unwrap();
        assert_eq!(s.entry_triggers.len(), 2);
        assert!(matches!(
            s.entry_triggers.triggers()[1].event,
            vgbl_script::EventKind::Timer(2000)
        ));
    }

    #[test]
    fn manual_recut() {
        let (mut p, mut stack) = setup();
        let mut ed = ScenarioEditor::new(&mut p, &mut stack);
        ed.cut_at(5).unwrap();
        assert_eq!(p.segments.len(), 4);
        let mut ed = ScenarioEditor::new(&mut p, &mut stack);
        ed.merge_after(0).unwrap();
        assert_eq!(p.segments.len(), 3);
        // Bad cut reports an error and leaves everything intact.
        let mut ed = ScenarioEditor::new(&mut p, &mut stack);
        assert!(ed.cut_at(10).is_err()); // existing boundary
        assert_eq!(p.segments.len(), 3);
    }
}
