//! Property tests for the ring-buffer window math and the burn-rate
//! alert state machine.
//!
//! The ring is checked against a naive executable model (a flat list of
//! kept samples filtered by bin range), so a rotation bug — double
//! counting a reused slot, forgetting a drop, off-by-one window edges —
//! shows up as a divergence from first principles rather than needing a
//! hand-picked fixture. The alert machine is checked for the hysteresis
//! contract: at most one transition per evaluation tick, and the
//! pending → firing → resolved grammar is never violated.

use proptest::prelude::*;

use vgbl_obs::slo::{BurnRule, Objective, SloEvaluator};
use vgbl_obs::timeseries::{Series, SeriesSpec};
use vgbl_obs::AlertPhase;

/// Replays `samples` through the documented ring semantics: a sample
/// older than the retention horizon at ingest time is dropped, every
/// other sample is kept with its absolute bin index.
fn naive_replay(samples: &[(u64, u64)], width: u64, bins: u64) -> (Vec<(u64, u64)>, u64, Option<u64>) {
    let mut head: Option<u64> = None;
    let mut kept = Vec::new();
    let mut dropped = 0u64;
    for &(t, v) in samples {
        let idx = t / width;
        if let Some(h) = head {
            if h >= bins && idx <= h - bins {
                dropped += 1;
                continue;
            }
        }
        head = Some(head.map_or(idx, |h| h.max(idx)));
        kept.push((idx, v));
    }
    (kept, dropped, head)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_windowed_sum_and_avg_equal_naive_recompute(
        samples in proptest::collection::vec((0u64..50_000, 0u64..1_000), 0..120),
        width in 1u64..2_500,
        bins in 1usize..24,
        end_us in 0u64..60_000,
        window_us in 1u64..60_000,
    ) {
        let series = Series::standalone(SeriesSpec::gauge("p.win", width, bins));
        for &(t, v) in &samples {
            series.record(t, v);
        }
        let (kept, dropped, head) = naive_replay(&samples, width, bins as u64);

        // Totals see every sample, windows only the kept ones.
        let totals = series.totals();
        prop_assert_eq!(totals.count, samples.len() as u64);
        prop_assert_eq!(totals.sum, samples.iter().map(|s| s.1).sum::<u64>());
        prop_assert_eq!(totals.dropped, dropped);

        let got = series.window(end_us, window_us);
        let Some(head) = head else {
            prop_assert_eq!(got.count, 0);
            return Ok(());
        };
        let hi = end_us / width;
        let want = window_us.div_ceil(width).max(1);
        let lo = hi
            .saturating_sub(want - 1)
            .max((head + 1).saturating_sub(bins as u64));
        let in_win: Vec<u64> =
            kept.iter().filter(|(b, _)| *b >= lo && *b <= hi).map(|&(_, v)| v).collect();
        prop_assert_eq!(got.count, in_win.len() as u64, "windowed count");
        prop_assert_eq!(got.sum, in_win.iter().sum::<u64>(), "windowed sum");
        prop_assert_eq!(got.min, in_win.iter().min().copied(), "windowed min");
        prop_assert_eq!(got.max, in_win.iter().max().copied(), "windowed max");
        match got.avg() {
            None => prop_assert!(in_win.is_empty()),
            Some(avg) => {
                let expect = in_win.iter().sum::<u64>() as f64 / in_win.len() as f64;
                prop_assert!((avg - expect).abs() < 1e-9, "windowed avg {avg} != {expect}");
            }
        }
    }

    // Rotation across window boundaries never double-counts: the
    // full-horizon window equals the naive model's horizon slice even
    // when the stream wraps the ring many times over.
    #[test]
    fn ring_rotation_never_double_counts(
        step in 1u64..3_000,
        width in 1u64..500,
        bins in 1usize..8,
        n in 1usize..200,
    ) {
        let series = Series::standalone(SeriesSpec::counter("p.rot", width, bins));
        let samples: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * step, 1)).collect();
        for &(t, v) in &samples {
            series.record(t, v);
        }
        let (kept, dropped, head) = naive_replay(&samples, width, bins as u64);
        let head = head.unwrap();
        let horizon_us = width.saturating_mul(bins as u64);
        let got = series.window((n as u64 - 1) * step, horizon_us);
        let lo = (head + 1).saturating_sub(bins as u64);
        let expect = kept.iter().filter(|(b, _)| *b >= lo).count() as u64;
        prop_assert_eq!(got.count, expect, "horizon window equals model");
        prop_assert_eq!(got.count + dropped + kept.len() as u64 - expect, n as u64,
            "every sample is counted exactly once across window/rotated/dropped");
    }

    // Hysteresis: a rule makes at most one state transition per
    // evaluation tick (no flapping within a tick), and the lifecycle
    // grammar pending → (firing | resolved), firing → resolved always
    // holds, for arbitrary traffic and rule shapes.
    #[test]
    fn alerts_never_flap_within_a_single_tick(
        steps in proptest::collection::vec((1u64..2_000, 0u64..4, 0u64..4), 1..80),
        long_bins in 1u64..32,
        short_bins in 1u64..8,
        burn in 0.5f64..20.0,
        pending_us in 0u64..5_000,
        budget in 0.01f64..0.5,
    ) {
        let bad = Series::standalone(SeriesSpec::counter("p.bad", 1_000, 64));
        let total = Series::standalone(SeriesSpec::counter("p.total", 1_000, 64));
        let mut ev = SloEvaluator::new();
        ev.add(Objective::event_ratio(
            "obj",
            budget,
            bad.clone(),
            total.clone(),
            vec![BurnRule {
                label: "r",
                long_us: long_bins * 1_000,
                short_us: short_bins * 1_000,
                burn,
                pending_us,
            }],
        ));
        let mut t = 0u64;
        let mut seen = 0usize;
        for (dt, bad_n, good_n) in steps {
            t += dt;
            for _ in 0..bad_n {
                bad.record(t, 1);
                total.record(t, 1);
            }
            for _ in 0..good_n {
                total.record(t, 1);
            }
            ev.tick(t);
            let now = ev.timeline().events.len();
            prop_assert!(now - seen <= 1, "one tick produced {} transitions", now - seen);
            seen = now;
        }
        // Lifecycle grammar over the whole run.
        let mut phase: Option<AlertPhase> = None;
        for e in &ev.timeline().events {
            let ok = matches!(
                (phase, e.phase),
                (None, AlertPhase::Pending)
                    | (Some(AlertPhase::Pending), AlertPhase::Firing | AlertPhase::Resolved)
                    | (Some(AlertPhase::Firing), AlertPhase::Resolved)
                    | (Some(AlertPhase::Resolved), AlertPhase::Pending)
            );
            prop_assert!(ok, "illegal transition {:?} -> {:?}", phase, e.phase);
            phase = Some(e.phase);
        }
        // Timestamps never rewind.
        prop_assert!(ev.timeline().events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }
}
