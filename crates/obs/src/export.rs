//! Serialisations of a [`Snapshot`]: aligned text table, RFC-4180 CSV,
//! and JSON-lines.
//!
//! All three are pure functions of the snapshot, which is itself sorted
//! deterministically, so identical runs export byte-identical artifacts
//! — the property EXP-13's rerun check pins.

use crate::metrics::{MetricValue, Snapshot};

/// RFC-4180 field quoting. Unlike the pre-fix `csv_field` in the
/// analytics crate, this quotes `\r` too: a bare carriage return inside
/// an unquoted field splits the row for any compliant reader.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn label_str(labels: &[(&'static str, &'static str)]) -> String {
    labels.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(",")
}

impl Snapshot {
    /// Renders the snapshot as an aligned, human-readable text table:
    /// one metrics section, then one indented span tree per trace.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("metric                                    labels                value\n");
        out.push_str("----------------------------------------  --------------------  -----\n");
        for row in &self.metrics {
            let value = match &row.value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => format!("max={v}"),
                MetricValue::Histogram(h) => format!(
                    "n={} sum={} min={} max={} p50={} p90={} p99={}",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                ),
            };
            out.push_str(&format!(
                "{:<40}  {:<20}  {}\n",
                row.name,
                label_str(&row.labels),
                value
            ));
        }
        for trace in &self.traces {
            out.push_str(&format!("\ntrace {}\n", trace.label));
            for span in &trace.spans {
                let indent = "  ".repeat(span.depth as usize + 1);
                out.push_str(&format!(
                    "{indent}{} arg={} [{}..{}] {}us\n",
                    span.name,
                    span.arg,
                    span.start_us,
                    span.end_us,
                    span.duration_us()
                ));
            }
        }
        out
    }

    /// Exports the metrics section as RFC-4180 CSV with header
    /// `name,labels,kind,count,sum,min,max,p50,p90,p99` (counters fill
    /// only `count`).
    pub fn metrics_csv(&self) -> String {
        let mut out = String::from("name,labels,kind,count,sum,min,max,p50,p90,p99\r\n");
        for row in &self.metrics {
            let cells = match &row.value {
                MetricValue::Counter(v) => format!("counter,{v},,,,,,"),
                MetricValue::Gauge(v) => format!("gauge,{v},,,,,,"),
                MetricValue::Histogram(h) => format!(
                    "histogram,{},{},{},{},{},{},{}",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                ),
            };
            out.push_str(&format!(
                "{},{},{cells}\r\n",
                csv_field(row.name),
                csv_field(&label_str(&row.labels))
            ));
        }
        out
    }

    /// Exports every span of every trace as RFC-4180 CSV with header
    /// `trace,depth,name,arg,start_us,end_us,duration_us`.
    pub fn spans_csv(&self) -> String {
        let mut out = String::from("trace,depth,name,arg,start_us,end_us,duration_us\r\n");
        for trace in &self.traces {
            for span in &trace.spans {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{}\r\n",
                    csv_field(&trace.label),
                    span.depth,
                    csv_field(span.name),
                    span.arg,
                    span.start_us,
                    span.end_us,
                    span.duration_us()
                ));
            }
        }
        out
    }

    /// Exports the snapshot as JSON-lines: one `{"metric":...}` object
    /// per metric row, then one `{"span":...}` object per span.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.metrics {
            let value = match &row.value {
                MetricValue::Counter(v) => format!("\"kind\":\"counter\",\"value\":{v}"),
                MetricValue::Gauge(v) => format!("\"kind\":\"gauge\",\"value\":{v}"),
                MetricValue::Histogram(h) => format!(
                    "\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                ),
            };
            out.push_str(&format!(
                "{{\"metric\":{},\"labels\":{},{value}}}\n",
                json_str(row.name),
                json_str(&label_str(&row.labels))
            ));
        }
        for trace in &self.traces {
            for span in &trace.spans {
                out.push_str(&format!(
                    "{{\"span\":{},\"trace\":{},\"depth\":{},\"arg\":{},\"start_us\":{},\"end_us\":{}}}\n",
                    json_str(span.name),
                    json_str(&trace.label),
                    span.depth,
                    span.arg,
                    span.start_us,
                    span.end_us
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Obs;

    fn sample() -> Obs {
        let obs = Obs::recording();
        obs.counter("cache.hits", &[("pillar", "media")]).add(7);
        let h = obs.histogram("fetch.latency_us", &[("pillar", "stream")]);
        h.record(900);
        h.record(12_000);
        let mut rec = obs.recorder("playback-0000".into());
        rec.enter("session", 0);
        rec.enter_with("dwell", 3, 0);
        rec.exit(33_333);
        rec.exit(33_333);
        obs.attach(rec);
        obs
    }

    #[test]
    fn obs_table_lists_metrics_then_traces() {
        let table = sample().snapshot().to_table();
        assert!(table.contains("cache.hits"));
        assert!(table.contains("pillar=media"));
        assert!(table.contains("n=2"));
        assert!(table.contains("trace playback-0000"));
        assert!(table.contains("dwell arg=3 [0..33333] 33333us"));
        let metrics_line = table.lines().find(|l| l.starts_with("cache.hits")).unwrap();
        assert!(metrics_line.contains("7"));
    }

    #[test]
    fn obs_csv_exports_are_rfc4180() {
        let snap = sample().snapshot();
        let metrics = snap.metrics_csv();
        assert!(metrics.starts_with("name,labels,kind,"));
        assert!(metrics.contains("cache.hits,pillar=media,counter,7,,,,,,\r\n"));
        let spans = snap.spans_csv();
        assert!(spans.contains("playback-0000,1,dwell,3,0,33333,33333\r\n"));
        for line in metrics.split("\r\n").chain(spans.split("\r\n")) {
            assert!(!line.contains('\r'), "no stray CR inside rows");
        }
    }

    #[test]
    fn obs_csv_field_quotes_all_awkward_bytes() {
        use super::csv_field;
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_field("a\nb"), "\"a\nb\"");
        assert_eq!(csv_field("a\rb"), "\"a\rb\"", "carriage return must be quoted");
    }

    #[test]
    fn obs_jsonl_escapes_and_is_line_per_record() {
        let snap = sample().snapshot();
        let jsonl = snap.to_jsonl();
        // 2 metric rows + 2 spans.
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.contains("\"metric\":\"cache.hits\""));
        assert!(jsonl.contains("\"span\":\"dwell\""));
        assert_eq!(super::json_str("a\"b\\c\nd\re\u{1}"), "\"a\\\"b\\\\c\\nd\\re\\u0001\"");
    }

    #[test]
    fn obs_exports_are_byte_identical_across_runs() {
        let a = sample().snapshot();
        let b = sample().snapshot();
        assert_eq!(a.to_table(), b.to_table());
        assert_eq!(a.metrics_csv(), b.metrics_csv());
        assert_eq!(a.spans_csv(), b.spans_csv());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }
}
