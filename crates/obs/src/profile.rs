//! Flamegraph folding, hotspot tables, and run-to-run profile diffs
//! over recorded [`Trace`]s.
//!
//! Spans are stored pre-order with explicit depths (a span's parent is
//! the nearest earlier span with a smaller depth), so one linear walk
//! per trace reconstructs the call tree and splits every span's
//! duration into **self time** (duration minus the time spent in child
//! spans) and **total time**. Self time is what flamegraphs weigh:
//! summed over a cohort it answers "where did the simulated time go?",
//! and [`folded_stacks`] emits it in the inferno/FlameGraph
//! semicolon-folded text format (`root;child;leaf 1234`, one line per
//! distinct stack, value in simulated µs) ready for
//! `inferno-flamegraph` or `flamegraph.pl`.
//!
//! All outputs are deterministic: stacks aggregate across traces into
//! sorted maps, ties break on names, and the inputs themselves are
//! simulated-clock snapshots — so EXP-15 can assert byte-identical
//! folded text across reruns, and [`profile_diff`] can compare two runs
//! without wall-clock noise drowning the signal.

use std::collections::BTreeMap;

use crate::metrics::Snapshot;
use crate::span::Trace;

/// Walks one trace pre-order, invoking `sink(stack, self_us, total_us)`
/// for every span with its full name path (root first).
fn walk(trace: &Trace, sink: &mut impl FnMut(&[&'static str], u64, u64)) {
    // (name, duration, child time) per open ancestor.
    let mut open: Vec<(&'static str, u64, u64)> = Vec::new();
    let flush = |open: &mut Vec<(&'static str, u64, u64)>,
                     sink: &mut dyn FnMut(&[&'static str], u64, u64)| {
        let (name, dur, child) = open.pop().expect("flush on empty stack");
        let path: Vec<&'static str> =
            open.iter().map(|f| f.0).chain(std::iter::once(name)).collect();
        sink(&path, dur.saturating_sub(child), dur);
        if let Some(parent) = open.last_mut() {
            parent.2 = parent.2.saturating_add(dur);
        }
    };
    for span in &trace.spans {
        while open.len() > span.depth as usize {
            flush(&mut open, sink);
        }
        open.push((span.name, span.duration_us(), 0));
    }
    while !open.is_empty() {
        flush(&mut open, sink);
    }
}

/// Folds a snapshot's traces into inferno-compatible folded-stack text:
/// one `a;b;c value` line per distinct stack, value = summed self time
/// in simulated µs, aggregated across every trace and sorted by stack,
/// so identical seeded runs emit byte-identical text. Stacks whose
/// aggregate self time is 0 (pure pass-through frames, instantaneous
/// events) are omitted — they would render as invisible slivers.
pub fn folded_stacks(snap: &Snapshot) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for trace in &snap.traces {
        walk(trace, &mut |path, self_us, _total| {
            if self_us > 0 {
                *folded.entry(path.join(";")).or_insert(0) += self_us;
            }
        });
    }
    let mut out = String::new();
    for (stack, value) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

/// Aggregate cost of one span name across a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hotspot {
    /// Span name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub calls: u64,
    /// Summed span durations in simulated µs (a parent's total includes
    /// its children's).
    pub total_us: u64,
    /// Summed self time (duration minus child time) in simulated µs.
    pub self_us: u64,
}

/// The top-`k` span names by self time (ties broken by name), the
/// flamegraph's "widest frames" as a table-friendly list.
pub fn hotspots(snap: &Snapshot, k: usize) -> Vec<Hotspot> {
    let mut by_name: BTreeMap<&'static str, Hotspot> = BTreeMap::new();
    for trace in &snap.traces {
        walk(trace, &mut |path, self_us, total_us| {
            let name = *path.last().expect("walk paths are never empty");
            let h = by_name.entry(name).or_insert(Hotspot { name, calls: 0, total_us: 0, self_us: 0 });
            h.calls += 1;
            h.total_us = h.total_us.saturating_add(total_us);
            h.self_us = h.self_us.saturating_add(self_us);
        });
    }
    let mut out: Vec<Hotspot> = by_name.into_values().collect();
    out.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(b.name)));
    out.truncate(k);
    out
}

/// The top-`k` hotspots as an aligned text table (self µs, total µs,
/// calls, name), deterministic like every exporter in this crate.
pub fn hotspot_table(snap: &Snapshot, k: usize) -> String {
    let rows = hotspots(snap, k);
    let mut out = String::from("self_us     total_us    calls       name\n");
    for h in rows {
        out.push_str(&format!("{:<11} {:<11} {:<11} {}\n", h.self_us, h.total_us, h.calls, h.name));
    }
    out
}

/// One span name whose self time changed between two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotspotDelta {
    /// Span name.
    pub name: &'static str,
    /// Self time in the *before* snapshot (µs; 0 if absent).
    pub before_us: u64,
    /// Self time in the *after* snapshot (µs; 0 if absent).
    pub after_us: u64,
}

impl HotspotDelta {
    /// `after / before`; `INFINITY` for a span new in the after run.
    pub fn ratio(&self) -> f64 {
        if self.before_us == 0 {
            if self.after_us == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.after_us as f64 / self.before_us as f64
        }
    }

    /// Absolute change in µs (positive = regression).
    pub fn delta_us(&self) -> i64 {
        self.after_us as i64 - self.before_us as i64
    }
}

/// Result of [`profile_diff`]: per-name self-time movements beyond the
/// threshold, each list sorted by absolute change (then name).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Relative threshold the diff was taken at (0.2 = ±20%).
    pub threshold: f64,
    /// Names whose self time grew by more than the threshold.
    pub regressions: Vec<HotspotDelta>,
    /// Names whose self time shrank by more than the threshold.
    pub improvements: Vec<HotspotDelta>,
}

impl ProfileDiff {
    /// True when nothing moved beyond the threshold.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty() && self.improvements.is_empty()
    }

    /// Aligned text report (regressions first), deterministic.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for (title, rows) in
            [("regressions", &self.regressions), ("improvements", &self.improvements)]
        {
            out.push_str(&format!("{title} (>{:.0}%):\n", self.threshold * 100.0));
            if rows.is_empty() {
                out.push_str("  none\n");
            }
            for d in rows {
                let ratio = if d.ratio().is_finite() {
                    format!("{:.2}x", d.ratio())
                } else {
                    "new".to_owned()
                };
                out.push_str(&format!(
                    "  {:<24} {:>10} -> {:<10} {}\n",
                    d.name, d.before_us, d.after_us, ratio
                ));
            }
        }
        out
    }
}

/// Compares per-name self time between two runs, reporting every span
/// name whose self time moved by more than `threshold` relative to the
/// *before* run (a name absent before and present after is a
/// regression; the reverse is an improvement). Non-finite or negative
/// thresholds clamp to 0.
pub fn profile_diff(before: &Snapshot, after: &Snapshot, threshold: f64) -> ProfileDiff {
    let threshold = if threshold.is_finite() { threshold.max(0.0) } else { 0.0 };
    let collect = |snap: &Snapshot| -> BTreeMap<&'static str, u64> {
        let mut m = BTreeMap::new();
        for h in hotspots(snap, usize::MAX) {
            m.insert(h.name, h.self_us);
        }
        m
    };
    let b = collect(before);
    let a = collect(after);
    let mut names: Vec<&'static str> = b.keys().chain(a.keys()).copied().collect();
    names.sort_unstable();
    names.dedup();
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    for name in names {
        let before_us = b.get(name).copied().unwrap_or(0);
        let after_us = a.get(name).copied().unwrap_or(0);
        let d = HotspotDelta { name, before_us, after_us };
        if after_us as f64 > before_us as f64 * (1.0 + threshold) {
            regressions.push(d);
        } else if (after_us as f64) < before_us as f64 * (1.0 - threshold) {
            improvements.push(d);
        }
    }
    regressions.sort_by(|x, y| y.delta_us().cmp(&x.delta_us()).then(x.name.cmp(y.name)));
    improvements.sort_by(|x, y| x.delta_us().cmp(&y.delta_us()).then(x.name.cmp(y.name)));
    ProfileDiff { threshold, regressions, improvements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Obs;

    /// session(0..100) { fetch(0..30) { decode(10..25) }, fetch(40..90) }
    fn sample_obs() -> Obs {
        let obs = Obs::recording();
        let mut rec = obs.recorder("s-00".into());
        rec.enter("session", 0);
        rec.enter("fetch", 0);
        rec.enter("decode", 10);
        rec.exit(25);
        rec.exit(30);
        rec.enter("fetch", 40);
        rec.exit(90);
        rec.exit(100);
        obs.attach(rec);
        obs
    }

    #[test]
    fn profile_folded_stacks_split_self_time() {
        let folded = folded_stacks(&sample_obs().snapshot());
        // session self = 100 − (30 + 50); fetch self = (30 − 15) + 50.
        assert_eq!(
            folded,
            "session 20\nsession;fetch 65\nsession;fetch;decode 15\n",
            "folded text is exact and sorted"
        );
    }

    #[test]
    fn profile_hotspots_rank_by_self_time() {
        let snap = sample_obs().snapshot();
        let top = hotspots(&snap, 2);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].name, top[0].calls, top[0].total_us, top[0].self_us), ("fetch", 2, 80, 65));
        assert_eq!((top[1].name, top[1].self_us), ("session", 20));
        let table = hotspot_table(&snap, 10);
        assert!(table.starts_with("self_us"));
        assert!(table.contains("fetch"));
        assert!(table.contains("decode"));
    }

    #[test]
    fn profile_zero_self_frames_are_omitted_from_folds() {
        let obs = Obs::recording();
        let mut rec = obs.recorder("s".into());
        rec.enter("wrapper", 0); // all time in the child ⇒ self 0
        rec.enter("work", 0);
        rec.exit(50);
        rec.exit(50);
        rec.event("blip", 9, 50); // zero-duration event
        obs.attach(rec);
        let folded = folded_stacks(&obs.snapshot());
        assert_eq!(folded, "wrapper;work 50\n");
        // … but hotspots still count their calls.
        let spots = hotspots(&obs.snapshot(), 10);
        assert!(spots.iter().any(|h| h.name == "wrapper" && h.self_us == 0 && h.total_us == 50));
        assert!(spots.iter().any(|h| h.name == "blip" && h.calls == 1));
    }

    #[test]
    fn profile_aggregates_across_traces_deterministically() {
        let run = || {
            let obs = Obs::recording();
            for i in 0..3u64 {
                let mut rec = obs.recorder(format!("s-{i:02}"));
                rec.enter("session", 0);
                rec.enter("fetch", 0);
                rec.exit(10 + i);
                rec.exit(20);
                obs.attach(rec);
            }
            folded_stacks(&obs.snapshot())
        };
        assert_eq!(run(), run(), "byte-identical folds across reruns");
        assert_eq!(run(), "session 27\nsession;fetch 33\n");
    }

    #[test]
    fn profile_diff_reports_only_movements_beyond_threshold() {
        let before = sample_obs().snapshot();
        let after_obs = Obs::recording();
        let mut rec = after_obs.recorder("s-00".into());
        rec.enter("session", 0);
        rec.enter("fetch", 0);
        rec.enter("decode", 10);
        rec.exit(85); // decode blew up: 15 → 75
        rec.exit(90);
        rec.enter("conceal", 90); // new span
        rec.exit(95);
        rec.exit(100);
        after_obs.attach(rec);
        let after = after_obs.snapshot();
        let diff = profile_diff(&before, &after, 0.2);
        assert!(!diff.is_clean());
        let reg: Vec<&str> = diff.regressions.iter().map(|d| d.name).collect();
        assert_eq!(reg, vec!["decode", "conceal"], "sorted by absolute growth");
        assert_eq!(diff.regressions[1].ratio(), f64::INFINITY, "new span is a regression");
        let imp: Vec<&str> = diff.improvements.iter().map(|d| d.name).collect();
        assert_eq!(imp, vec!["fetch", "session"]);
        // Identical runs diff clean at any threshold.
        assert!(profile_diff(&before, &before, 0.0).is_clean());
        let table = diff.to_table();
        assert!(table.contains("regressions"));
        assert!(table.contains("new"));
    }

    #[test]
    fn profile_forced_close_children_do_not_skew_parent_self_time() {
        // A span left open by a panic is force-closed by `into_trace` at
        // the trace's latest recorded moment (25 here, from "done"), so
        // it becomes a zero-duration child. Zero-duration children must
        // contribute zero child time: the parent's self time stays
        // `duration − real child time`, never negative, never inflated.
        let obs = Obs::recording();
        let mut rec = obs.recorder("s".into());
        rec.enter("parent", 0);
        rec.enter("done", 0);
        rec.exit(25);
        rec.enter("forced", 25); // worker dies here; never exited
        obs.attach(rec);
        let snap = obs.snapshot();
        assert_eq!(folded_stacks(&snap), "parent;done 25\n", "forced frame folds away");
        let spots = hotspots(&snap, 10);
        let parent = spots.iter().find(|h| h.name == "parent").unwrap();
        assert_eq!((parent.self_us, parent.total_us), (0, 25), "self = 25 − (25 + 0)");
        let forced = spots.iter().find(|h| h.name == "forced").unwrap();
        assert_eq!((forced.self_us, forced.total_us, forced.calls), (0, 0, 1));
    }

    #[test]
    fn profile_close_all_mid_trace_keeps_self_time_exact() {
        // `close_all` stamps every open span with the same end: the
        // child can never outlast the parent on this path, so the
        // parent's self time is exactly the pre-child prefix.
        let obs = Obs::recording();
        let mut rec = obs.recorder("s".into());
        rec.enter("session", 0);
        rec.enter("dwell", 5);
        rec.close_all(42); // panic-safe flush mid-trace
        obs.attach(rec);
        let snap = obs.snapshot();
        assert_eq!(folded_stacks(&snap), "session 5\nsession;dwell 37\n");
        let session = hotspots(&snap, 10).into_iter().find(|h| h.name == "session").unwrap();
        assert_eq!((session.self_us, session.total_us), (5, 42));
    }

    #[test]
    fn profile_out_of_order_exit_clamps_parent_self_to_zero() {
        // Pathological caller clock: the child's exit timestamp (100)
        // lies beyond the parent's (50), so the child's duration exceeds
        // the parent's. The walk must clamp the parent's self time to 0
        // (saturating_sub), not wrap to ~u64::MAX and dominate every
        // flamegraph.
        let obs = Obs::recording();
        let mut rec = obs.recorder("s".into());
        rec.enter("parent", 0);
        rec.enter("child", 0);
        rec.exit(100);
        rec.exit(50); // clock ran backwards between the two exits
        obs.attach(rec);
        let snap = obs.snapshot();
        assert_eq!(folded_stacks(&snap), "parent;child 100\n", "no wrapped parent frame");
        let parent = hotspots(&snap, 10).into_iter().find(|h| h.name == "parent").unwrap();
        assert_eq!((parent.self_us, parent.total_us), (0, 50), "clamped, not wrapped");
    }

    #[test]
    fn profile_empty_snapshot_folds_to_nothing() {
        let snap = Obs::noop().snapshot();
        assert_eq!(folded_stacks(&snap), "");
        assert!(hotspots(&snap, 5).is_empty());
        assert!(profile_diff(&snap, &snap, 0.5).is_clean());
    }
}
