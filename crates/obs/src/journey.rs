//! Causal session journeys: deterministic trace contexts, per-shard
//! journey logs, and cross-shard stitching into per-session timelines.
//!
//! The fleet can crash shards, migrate sessions, lose power and cold
//! restart; counters and spans see each component locally but nothing
//! answers *"what happened to session 4711, end to end?"*. This module
//! is that layer:
//!
//! * [`TraceCtx`] — a trace/span identity minted as a **pure hash** of
//!   `(seed, session, generation)`. Because it is a pure function, any
//!   component on any shard (or a cold restart that lost all state) can
//!   re-derive the same identity and the chain stays intact across
//!   every boundary a session crosses.
//! * [`JourneyRecorder`] — collects typed [`JourneyEvent`]s into
//!   per-shard [`JourneyLog`]s. Like
//!   [`SpanRecorder`](crate::span::SpanRecorder) it has a disabled mode
//!   whose operations are a single branch, so un-traced runs pay ~0.
//! * [`stitch`] — merges shard-local logs into per-session
//!   [`SessionJourney`] timelines ordered by exact simulated time,
//!   byte-identical across reruns.
//! * Query layer — [`journeys_where`], [`aggregate`], [`aggregate_by`],
//!   [`SessionJourney::critical_path`] (time-in-queue vs time-streaming
//!   vs time-migrating vs blackout), and deterministic top-K
//!   [`tail_exemplars`] linking histogram tail buckets to the trace ids
//!   that landed there.
//!
//! Timestamps are simulated milliseconds (the fleet clock); nothing in
//! here reads wall time, so the whole layer inherits the platform's
//! byte-identical-rerun guarantee.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Domain-separation salt for trace ids (one per session).
const SALT_TRACE: u64 = 0x10AD_0001;
/// Domain-separation salt for span ids (one per session generation).
const SALT_SPAN: u64 = 0x10AD_0002;

/// splitmix64 finalizer: the same bit mixer the runtime's seeded
/// schedules use, duplicated here because `vgbl-obs` is intentionally
/// dependency-free. Changing it breaks every persisted trace id.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The causal identity a session carries across every boundary.
///
/// Minted by [`TraceCtx::mint`] as a pure hash of
/// `(seed, session, generation)`: the `trace_id` is generation-agnostic
/// (one per session lifetime), the `span_id` names this generation, and
/// `parent` is the previous generation's span id — so a journey forms a
/// parent-linked chain of generations even when the links were minted
/// on different shards, after a migration, or after a cold restart that
/// recovered nothing but `(session, generation)` from the durable WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// One id for the session's whole lifetime.
    pub trace_id: u64,
    /// This generation's span id.
    pub span_id: u64,
    /// The previous generation's span id (`None` for generation 0).
    pub parent: Option<u64>,
}

impl TraceCtx {
    /// Mints the context for `session`'s `generation` under `seed`.
    ///
    /// Pure and stateless: every component that knows the triple mints
    /// the *same* context, which is what lets a cold-restarted shard
    /// verify the identity recovered from a persisted checkpoint
    /// against a fresh mint.
    pub fn mint(seed: u64, session: u64, generation: u32) -> TraceCtx {
        let trace_id = mix(seed ^ SALT_TRACE ^ mix(session));
        let span = |g: u32| mix(trace_id ^ SALT_SPAN ^ mix(u64::from(g).wrapping_add(1)));
        TraceCtx {
            trace_id,
            span_id: span(generation),
            parent: generation.checked_sub(1).map(span),
        }
    }
}

/// What happened at one moment of a session's journey.
///
/// Terminal kinds ([`JourneyEventKind::is_terminal`]) end the journey;
/// everything else is an intermediate hop.
#[derive(Debug, Clone, PartialEq)]
pub enum JourneyEventKind {
    /// Entered a shard's admission queue.
    Enqueued,
    /// Admitted to a serving slot (`generation` starts streaming).
    Admitted {
        /// The generation that started serving.
        generation: u32,
    },
    /// Admitted in a degraded serve mode.
    DegradedTo {
        /// Debug rendering of the degraded mode.
        mode: String,
    },
    /// A checkpoint was persisted (durably when `durable_seq` is set).
    CheckpointPersisted {
        /// Session step the checkpoint covers.
        step: u64,
        /// Digest of the persisted save.
        digest: u64,
        /// WAL sequence number if acknowledged durable.
        durable_seq: Option<u64>,
    },
    /// Handed off to another shard.
    MigratedOut {
        /// Destination shard.
        to: u32,
        /// Step the destination will resume from.
        resumed_at_step: u64,
    },
    /// Arrived from another shard.
    MigratedIn {
        /// Source shard.
        from: u32,
    },
    /// The serving shard crashed under the session.
    Crashed,
    /// Resumed serving after a crash or panic restart.
    Recovered {
        /// Step serving resumed from.
        resumed_at_step: u64,
        /// Restarts so far.
        restarts: u32,
    },
    /// Whole-fleet power loss hit while the session was live.
    PowerLoss,
    /// Re-admitted from the durable store after a cold restart.
    ColdResume {
        /// Step recovered from the store.
        from_step: u64,
        /// Whether the recovered checkpoint was stale.
        stale: bool,
    },
    /// Terminal: finished cleanly.
    Completed {
        /// Steps served in total.
        steps: u64,
    },
    /// Terminal: finished after one or more restarts.
    RecoveredEnd {
        /// Step the final incarnation resumed from.
        resumed_at_step: u64,
        /// Total restarts.
        restarts: u32,
    },
    /// Terminal: failed.
    Failed {
        /// Failure reason.
        reason: String,
    },
    /// Terminal: shed.
    Shed {
        /// Shed reason (exact-match invariant material).
        reason: String,
    },
    /// Terminal: gave up after exhausting restarts.
    GaveUp {
        /// Restarts burned before giving up.
        restarts: u32,
        /// Final failure reason.
        reason: String,
    },
}

impl JourneyEventKind {
    /// Whether this kind ends a journey.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JourneyEventKind::Completed { .. }
                | JourneyEventKind::RecoveredEnd { .. }
                | JourneyEventKind::Failed { .. }
                | JourneyEventKind::Shed { .. }
                | JourneyEventKind::GaveUp { .. }
        )
    }
}

/// One timestamped, trace-attributed event in a shard's journey log.
#[derive(Debug, Clone, PartialEq)]
pub struct JourneyEvent {
    /// Simulated milliseconds on the fleet clock.
    pub at_ms: f64,
    /// Shard that emitted the event.
    pub shard: u32,
    /// Session the event belongs to.
    pub session: u64,
    /// The causal identity active when the event fired.
    pub ctx: TraceCtx,
    /// What happened.
    pub kind: JourneyEventKind,
}

/// One shard's local journey log, in emission order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JourneyLog {
    /// The emitting shard.
    pub shard: u32,
    /// Events in the order the shard emitted them.
    pub events: Vec<JourneyEvent>,
}

/// Collects [`JourneyEvent`]s into per-shard [`JourneyLog`]s.
///
/// Mirrors [`SpanRecorder`](crate::span::SpanRecorder): a disabled
/// recorder ([`JourneyRecorder::disabled`]) makes every call a single
/// branch, so journey-off runs (the default, and every bench baseline)
/// pay nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct JourneyRecorder {
    enabled: bool,
    logs: BTreeMap<u32, Vec<JourneyEvent>>,
}

impl Default for JourneyRecorder {
    fn default() -> JourneyRecorder {
        JourneyRecorder::new()
    }
}

impl JourneyRecorder {
    /// An enabled recorder with no events yet.
    pub fn new() -> JourneyRecorder {
        JourneyRecorder { enabled: true, logs: BTreeMap::new() }
    }

    /// A disabled recorder; every [`JourneyRecorder::record`] is a
    /// single branch and nothing is kept.
    pub fn disabled() -> JourneyRecorder {
        JourneyRecorder { enabled: false, logs: BTreeMap::new() }
    }

    /// Whether events are kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event on `shard`'s local log.
    pub fn record(
        &mut self,
        shard: u32,
        at_ms: f64,
        session: u64,
        ctx: TraceCtx,
        kind: JourneyEventKind,
    ) {
        if self.enabled {
            self.logs
                .entry(shard)
                .or_default()
                .push(JourneyEvent { at_ms, shard, session, ctx, kind });
        }
    }

    /// Total events recorded so far.
    pub fn len(&self) -> usize {
        self.logs.values().map(Vec::len).sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the recorder into per-shard logs, sorted by shard id.
    pub fn into_logs(self) -> Vec<JourneyLog> {
        self.logs
            .into_iter()
            .map(|(shard, events)| JourneyLog { shard, events })
            .collect()
    }
}

/// Where a stitched journey ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TerminalState {
    /// Finished cleanly.
    Completed,
    /// Finished after restarts.
    Recovered,
    /// Failed.
    Failed,
    /// Shed.
    Shed,
    /// Gave up after exhausting restarts.
    GaveUp,
    /// No terminal event in any log — an attribution hole (the EXP-20
    /// invariant requires zero of these).
    Unresolved,
}

impl TerminalState {
    /// Stable lower-case name used in exports and aggregates.
    pub fn name(self) -> &'static str {
        match self {
            TerminalState::Completed => "completed",
            TerminalState::Recovered => "recovered",
            TerminalState::Failed => "failed",
            TerminalState::Shed => "shed",
            TerminalState::GaveUp => "gave_up",
            TerminalState::Unresolved => "unresolved",
        }
    }
}

/// Per-phase wall-clock (simulated) decomposition of one journey.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CriticalPath {
    /// Waiting in admission queues.
    pub queued_ms: f64,
    /// Actively streaming on a shard slot.
    pub streaming_ms: f64,
    /// In flight between shards (migration handoffs).
    pub migrating_ms: f64,
    /// Dark time: between a crash/power loss and the next sign of life.
    pub blackout_ms: f64,
}

impl CriticalPath {
    /// Sum of every phase.
    pub fn total_ms(&self) -> f64 {
        self.queued_ms + self.streaming_ms + self.migrating_ms + self.blackout_ms
    }
}

/// One session's stitched, time-ordered journey across every shard it
/// touched.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionJourney {
    /// The session.
    pub session: u64,
    /// The session's trace id (shared by every event).
    pub trace_id: u64,
    /// Events merged across shards, ordered by simulated time.
    pub events: Vec<JourneyEvent>,
    /// Where the journey ended.
    pub terminal: TerminalState,
}

impl SessionJourney {
    /// Distinct shards visited, in first-touch order.
    pub fn shards(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for e in &self.events {
            if !out.contains(&e.shard) {
                out.push(e.shard);
            }
        }
        out
    }

    /// Highest generation observed.
    pub fn generations(&self) -> u32 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                JourneyEventKind::Admitted { generation } => Some(generation),
                _ => None,
            })
            .max()
            .map_or(0, |g| g + 1)
    }

    /// First event's timestamp (0 for an empty journey).
    pub fn started_ms(&self) -> f64 {
        self.events.first().map_or(0.0, |e| e.at_ms)
    }

    /// Last event's timestamp (0 for an empty journey).
    pub fn ended_ms(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.at_ms)
    }

    /// End-to-end simulated duration.
    pub fn duration_ms(&self) -> f64 {
        self.ended_ms() - self.started_ms()
    }

    /// Checks causal-chain integrity: every event carries this
    /// journey's trace id, and every `parent` span id links to a span
    /// id some event actually carried (generation N was preceded by
    /// generation N-1 somewhere in the stitched log).
    pub fn chain_ok(&self) -> bool {
        let mut seen_spans: Vec<u64> = Vec::new();
        for e in &self.events {
            if e.ctx.trace_id != self.trace_id {
                return false;
            }
            if let Some(parent) = e.ctx.parent {
                if !seen_spans.contains(&parent) && parent != e.ctx.span_id {
                    // A parent we never saw as a span: broken chain,
                    // unless the log simply starts mid-journey (first
                    // event of a resumed generation) — only tolerate
                    // that at the very beginning.
                    if !seen_spans.is_empty() && !seen_spans.contains(&e.ctx.span_id) {
                        return false;
                    }
                }
            }
            if !seen_spans.contains(&e.ctx.span_id) {
                seen_spans.push(e.ctx.span_id);
            }
        }
        true
    }

    /// Decomposes the journey into queue / streaming / migrating /
    /// blackout phases.
    ///
    /// The phase machine follows the event semantics: `Enqueued` opens
    /// queue time, `Admitted` opens streaming, `MigratedOut` opens
    /// migration, `MigratedIn` re-opens queue time on the destination,
    /// `Crashed` / `PowerLoss` open blackout, `ColdResume` re-opens
    /// queue time, and any terminal event closes the open phase.
    pub fn critical_path(&self) -> CriticalPath {
        #[derive(Clone, Copy, PartialEq)]
        enum Phase {
            Queued,
            Streaming,
            Migrating,
            Blackout,
            Done,
        }
        let mut cp = CriticalPath::default();
        let mut phase = Phase::Done;
        let mut since = self.started_ms();
        for e in &self.events {
            let dt = (e.at_ms - since).max(0.0);
            let close = |cp: &mut CriticalPath, phase: Phase, dt: f64| match phase {
                Phase::Queued => cp.queued_ms += dt,
                Phase::Streaming => cp.streaming_ms += dt,
                Phase::Migrating => cp.migrating_ms += dt,
                Phase::Blackout => cp.blackout_ms += dt,
                Phase::Done => {}
            };
            let next = match &e.kind {
                JourneyEventKind::Enqueued => Some(Phase::Queued),
                JourneyEventKind::Admitted { .. } | JourneyEventKind::Recovered { .. } => {
                    Some(Phase::Streaming)
                }
                JourneyEventKind::MigratedOut { .. } => Some(Phase::Migrating),
                JourneyEventKind::MigratedIn { .. } | JourneyEventKind::ColdResume { .. } => {
                    Some(Phase::Queued)
                }
                JourneyEventKind::Crashed | JourneyEventKind::PowerLoss => Some(Phase::Blackout),
                k if k.is_terminal() => Some(Phase::Done),
                _ => None, // DegradedTo / CheckpointPersisted: no phase change
            };
            if let Some(next) = next {
                close(&mut cp, phase, dt);
                phase = next;
                since = e.at_ms;
            }
        }
        cp
    }
}

/// Merges per-shard logs into per-session journeys.
///
/// Events are ordered by `(at_ms, shard, local index)` — simulated time
/// first, with the shard id and each log's local emission order as
/// deterministic tie-breakers — so two runs of the same seed stitch to
/// byte-identical journeys no matter how many shards contributed.
/// Sessions come out sorted by session id.
pub fn stitch(logs: &[JourneyLog]) -> Vec<SessionJourney> {
    let mut by_session: BTreeMap<u64, Vec<(f64, u32, usize, JourneyEvent)>> = BTreeMap::new();
    for log in logs {
        for (i, e) in log.events.iter().enumerate() {
            by_session
                .entry(e.session)
                .or_default()
                .push((e.at_ms, log.shard, i, e.clone()));
        }
    }
    by_session
        .into_iter()
        .map(|(session, mut keyed)| {
            keyed.sort_by(|a, b| {
                a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
            });
            let events: Vec<JourneyEvent> = keyed.into_iter().map(|(_, _, _, e)| e).collect();
            let trace_id = events.first().map_or(0, |e| e.ctx.trace_id);
            let terminal = events
                .iter()
                .rev()
                .find_map(|e| match &e.kind {
                    JourneyEventKind::Completed { .. } => Some(TerminalState::Completed),
                    JourneyEventKind::RecoveredEnd { .. } => Some(TerminalState::Recovered),
                    JourneyEventKind::Failed { .. } => Some(TerminalState::Failed),
                    JourneyEventKind::Shed { .. } => Some(TerminalState::Shed),
                    JourneyEventKind::GaveUp { .. } => Some(TerminalState::GaveUp),
                    _ => None,
                })
                .unwrap_or(TerminalState::Unresolved);
            SessionJourney { session, trace_id, events, terminal }
        })
        .collect()
}

/// Filters journeys by an arbitrary predicate, preserving order.
pub fn journeys_where<F>(journeys: &[SessionJourney], mut pred: F) -> Vec<&SessionJourney>
where
    F: FnMut(&SessionJourney) -> bool,
{
    journeys.iter().filter(|j| pred(j)).collect()
}

/// Whole-population aggregate over stitched journeys.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JourneyAggregate {
    /// Journeys aggregated.
    pub total: usize,
    /// Count per terminal state, keyed by [`TerminalState::name`].
    pub by_terminal: BTreeMap<&'static str, usize>,
    /// Total migration handoffs observed.
    pub migrations: usize,
    /// Total cold resumes observed.
    pub cold_resumes: usize,
    /// Sum of per-journey critical paths.
    pub critical: CriticalPath,
}

/// Aggregates terminal states, migrations, cold resumes and summed
/// critical paths over `journeys`.
pub fn aggregate(journeys: &[SessionJourney]) -> JourneyAggregate {
    let mut agg = JourneyAggregate { total: journeys.len(), ..JourneyAggregate::default() };
    for j in journeys {
        *agg.by_terminal.entry(j.terminal.name()).or_insert(0) += 1;
        for e in &j.events {
            match e.kind {
                JourneyEventKind::MigratedOut { .. } => agg.migrations += 1,
                JourneyEventKind::ColdResume { .. } => agg.cold_resumes += 1,
                _ => {}
            }
        }
        let cp = j.critical_path();
        agg.critical.queued_ms += cp.queued_ms;
        agg.critical.streaming_ms += cp.streaming_ms;
        agg.critical.migrating_ms += cp.migrating_ms;
        agg.critical.blackout_ms += cp.blackout_ms;
    }
    agg
}

/// Aggregates per key (an "archetype": shed reason, shard count, serve
/// mode — whatever `key` extracts), keys sorted.
pub fn aggregate_by<F>(journeys: &[SessionJourney], mut key: F) -> BTreeMap<String, JourneyAggregate>
where
    F: FnMut(&SessionJourney) -> String,
{
    let mut groups: BTreeMap<String, Vec<SessionJourney>> = BTreeMap::new();
    for j in journeys {
        groups.entry(key(j)).or_default().push(j.clone());
    }
    groups.into_iter().map(|(k, v)| (k, aggregate(&v))).collect()
}

/// The power-of-two bucket a value lands in — **the same bucketing as
/// [`Histogram`](crate::metrics::Histogram)** (bucket `i` counts values
/// of bit length `i`; bucket 0 holds the value 0), so an exemplar's
/// bucket index lines up with the metric registry's histogram export.
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// One tail exemplar: a concrete trace id behind a histogram tail
/// bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The trace to pull up.
    pub trace_id: u64,
    /// The session behind it.
    pub session: u64,
    /// The metric value that landed in the tail.
    pub value: u64,
    /// The histogram bucket (see [`bucket_of`]) the value landed in.
    pub bucket: usize,
}

/// Deterministic top-K exemplars of `metric` over `journeys`: the K
/// largest values, ties broken by session id ascending, each linked to
/// the histogram bucket it landed in. This is the artifact that turns
/// "p99 is 2ⁿ µs" into "…and here are the trace ids that put it there".
pub fn tail_exemplars<F>(journeys: &[SessionJourney], k: usize, mut metric: F) -> Vec<Exemplar>
where
    F: FnMut(&SessionJourney) -> u64,
{
    let mut all: Vec<Exemplar> = journeys
        .iter()
        .map(|j| {
            let value = metric(j);
            Exemplar { trace_id: j.trace_id, session: j.session, value, bucket: bucket_of(value) }
        })
        .collect();
    all.sort_by(|a, b| b.value.cmp(&a.value).then(a.session.cmp(&b.session)));
    all.truncate(k);
    all
}

/// Renders journeys as a deterministic line-oriented text export —
/// the byte-identity artifact EXP-20 compares across reruns.
pub fn export_journeys(journeys: &[SessionJourney]) -> String {
    let mut out = String::new();
    for j in journeys {
        let _ = writeln!(
            out,
            "journey session={} trace={:016x} terminal={} events={} span_ms={:.3}",
            j.session,
            j.trace_id,
            j.terminal.name(),
            j.events.len(),
            j.duration_ms()
        );
        for e in &j.events {
            let parent = e.ctx.parent.map_or_else(|| "-".to_string(), |p| format!("{p:016x}"));
            let _ = writeln!(
                out,
                "  {:>10.3} shard={} span={:016x} parent={} {:?}",
                e.at_ms, e.shard, e.ctx.span_id, parent, e.kind
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ms: f64, shard: u32, session: u64, generation: u32, kind: JourneyEventKind) -> JourneyEvent {
        JourneyEvent { at_ms, shard, session, ctx: TraceCtx::mint(7, session, generation), kind }
    }

    #[test]
    fn journey_mint_is_pure_and_chains_generations() {
        let a = TraceCtx::mint(42, 4711, 0);
        let b = TraceCtx::mint(42, 4711, 0);
        assert_eq!(a, b, "minting is a pure function");
        assert_eq!(a.parent, None, "generation 0 has no parent");

        let g1 = TraceCtx::mint(42, 4711, 1);
        assert_eq!(g1.trace_id, a.trace_id, "trace id spans generations");
        assert_eq!(g1.parent, Some(a.span_id), "parent links to the previous generation");
        assert_ne!(g1.span_id, a.span_id);

        let other = TraceCtx::mint(42, 4712, 0);
        assert_ne!(other.trace_id, a.trace_id, "sessions get distinct traces");
        let other_seed = TraceCtx::mint(43, 4711, 0);
        assert_ne!(other_seed.trace_id, a.trace_id, "seeds get distinct traces");
    }

    #[test]
    fn journey_recorder_disabled_keeps_nothing() {
        let mut rec = JourneyRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(0, 1.0, 1, TraceCtx::mint(0, 1, 0), JourneyEventKind::Enqueued);
        assert!(rec.is_empty());
        assert!(rec.into_logs().is_empty());

        let mut rec = JourneyRecorder::new();
        rec.record(1, 1.0, 1, TraceCtx::mint(0, 1, 0), JourneyEventKind::Enqueued);
        rec.record(0, 2.0, 1, TraceCtx::mint(0, 1, 0), JourneyEventKind::Admitted { generation: 0 });
        assert_eq!(rec.len(), 2);
        let logs = rec.into_logs();
        assert_eq!(logs.len(), 2);
        assert!(logs[0].shard < logs[1].shard, "logs come out sorted by shard");
    }

    #[test]
    fn journey_stitch_orders_cross_shard_events_by_time() {
        // Session 9 visits shard 0 then migrates to shard 1; logs are
        // handed to stitch() in reverse shard order on purpose.
        let log1 = JourneyLog {
            shard: 1,
            events: vec![
                ev(30.0, 1, 9, 1, JourneyEventKind::MigratedIn { from: 0 }),
                ev(35.0, 1, 9, 1, JourneyEventKind::Admitted { generation: 1 }),
                ev(50.0, 1, 9, 1, JourneyEventKind::Completed { steps: 8 }),
            ],
        };
        let log0 = JourneyLog {
            shard: 0,
            events: vec![
                ev(10.0, 0, 9, 0, JourneyEventKind::Enqueued),
                ev(12.0, 0, 9, 0, JourneyEventKind::Admitted { generation: 0 }),
                ev(30.0, 0, 9, 0, JourneyEventKind::MigratedOut { to: 1, resumed_at_step: 4 }),
            ],
        };
        let journeys = stitch(&[log1, log0]);
        assert_eq!(journeys.len(), 1);
        let j = &journeys[0];
        assert_eq!(j.session, 9);
        assert_eq!(j.terminal, TerminalState::Completed);
        assert_eq!(j.events.len(), 6);
        assert!(j.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms), "time-ordered");
        assert_eq!(j.shards(), vec![0, 1]);
        assert_eq!(j.generations(), 2);
        assert!(j.chain_ok(), "generation 1's parent span was seen on shard 0");

        // Same-timestamp cross-shard tie (the handoff at 30.0) breaks by
        // shard id: the MigratedOut on shard 0 precedes the MigratedIn.
        let at_30: Vec<u32> = j.events.iter().filter(|e| e.at_ms == 30.0).map(|e| e.shard).collect();
        assert_eq!(at_30, vec![0, 1]);
    }

    #[test]
    fn journey_critical_path_decomposes_phases() {
        let events = vec![
            ev(0.0, 0, 3, 0, JourneyEventKind::Enqueued),
            ev(5.0, 0, 3, 0, JourneyEventKind::Admitted { generation: 0 }),
            ev(20.0, 0, 3, 0, JourneyEventKind::MigratedOut { to: 1, resumed_at_step: 2 }),
            ev(24.0, 1, 3, 1, JourneyEventKind::MigratedIn { from: 0 }),
            ev(26.0, 1, 3, 1, JourneyEventKind::Admitted { generation: 1 }),
            ev(40.0, 1, 3, 1, JourneyEventKind::Completed { steps: 9 }),
        ];
        let j = &stitch(&[JourneyLog { shard: 0, events }])[0];
        let cp = j.critical_path();
        assert_eq!(cp.queued_ms, 5.0 + 2.0);
        assert_eq!(cp.streaming_ms, 15.0 + 14.0);
        assert_eq!(cp.migrating_ms, 4.0);
        assert_eq!(cp.blackout_ms, 0.0);
        assert_eq!(cp.total_ms(), j.duration_ms());
    }

    #[test]
    fn journey_unresolved_and_aggregates() {
        let done = JourneyLog {
            shard: 0,
            events: vec![
                ev(0.0, 0, 1, 0, JourneyEventKind::Enqueued),
                ev(1.0, 0, 1, 0, JourneyEventKind::Admitted { generation: 0 }),
                ev(9.0, 0, 1, 0, JourneyEventKind::Completed { steps: 4 }),
            ],
        };
        let hole = JourneyLog {
            shard: 0,
            events: vec![ev(2.0, 0, 2, 0, JourneyEventKind::Enqueued)],
        };
        let journeys = stitch(&[done, hole]);
        assert_eq!(journeys[0].terminal, TerminalState::Completed);
        assert_eq!(journeys[1].terminal, TerminalState::Unresolved);

        let agg = aggregate(&journeys);
        assert_eq!(agg.total, 2);
        assert_eq!(agg.by_terminal["completed"], 1);
        assert_eq!(agg.by_terminal["unresolved"], 1);

        let by = aggregate_by(&journeys, |j| j.terminal.name().to_string());
        assert_eq!(by.len(), 2);
        assert_eq!(by["completed"].total, 1);

        let unresolved = journeys_where(&journeys, |j| j.terminal == TerminalState::Unresolved);
        assert_eq!(unresolved.len(), 1);
        assert_eq!(unresolved[0].session, 2);
    }

    #[test]
    fn journey_exemplars_are_deterministic_and_bucket_aligned() {
        let mk = |session: u64, end: f64| JourneyLog {
            shard: 0,
            events: vec![
                ev(0.0, 0, session, 0, JourneyEventKind::Enqueued),
                ev(end, 0, session, 0, JourneyEventKind::Completed { steps: 1 }),
            ],
        };
        let journeys = stitch(&[mk(1, 100.0), mk(2, 900.0), mk(3, 900.0), mk(4, 50.0)]);
        let metric = |j: &SessionJourney| crate::us_from_ms(j.duration_ms());
        let top = tail_exemplars(&journeys, 2, metric);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].session, 2, "value ties break by session id");
        assert_eq!(top[1].session, 3);
        assert_eq!(top[0].bucket, bucket_of(900_000));
        assert_eq!(bucket_of(0), 0, "bucketing matches the metric registry");
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(tail_exemplars(&journeys, 2, metric), top, "repeat call is identical");
    }

    #[test]
    fn journey_export_is_byte_identical_across_reruns() {
        let build = || {
            let mut rec = JourneyRecorder::new();
            for s in 0..4u64 {
                let c0 = TraceCtx::mint(11, s, 0);
                rec.record(0, s as f64, s, c0, JourneyEventKind::Enqueued);
                rec.record(0, s as f64 + 1.0, s, c0, JourneyEventKind::Admitted { generation: 0 });
                rec.record(
                    0,
                    s as f64 + 2.0,
                    s,
                    c0,
                    JourneyEventKind::CheckpointPersisted { step: 5, digest: 0xD1, durable_seq: Some(s + 1) },
                );
                rec.record(0, s as f64 + 9.0, s, c0, JourneyEventKind::Completed { steps: 9 });
            }
            export_journeys(&stitch(&rec.into_logs()))
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("terminal=completed"));
        assert!(a.contains("parent=-"));
    }
}
