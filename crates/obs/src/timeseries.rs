//! Fixed-width ring-buffer time series on the simulated clock.
//!
//! A [`Series`] buckets observations into fixed-width **bins** of
//! simulated time (`t_us / bin_width_us`) held in a ring of `bins`
//! slots, so it answers *windowed* questions — "how many sheds in the
//! last 5 simulated seconds?", "p99 admission wait over the last
//! minute?" — in O(bins), while ingest stays O(1): one division, one
//! slot write, no allocation after construction.
//!
//! Three properties make the ring deterministic and exact:
//!
//! * **Lazy eviction.** Advancing time never clears slots; a slot is
//!   reset only when a newer bin index claims it. Window queries filter
//!   by each slot's *absolute* bin index, so a stale slot is simply
//!   outside the window. Because two distinct bin indices within one
//!   ring length can never share a slot, every bin inside the retention
//!   horizon `(head − bins, head]` is exact.
//! * **Commutative accumulation.** Bins hold count/sum/min/max (and
//!   power-of-two buckets for histogram series) — all commutative, so
//!   the exported rows are independent of ingest interleaving within a
//!   bin.
//! * **Total drops.** A sample older than the retention horizon is
//!   counted in [`SeriesTotals::dropped`] (and still in the running
//!   totals), never silently lost and never a panic.
//!
//! Like [`crate::metrics`], the disabled handle ([`Series::noop`], what
//! [`crate::Obs::noop`] hands out) costs one `Option` check per ingest.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets per bin (bucket `i` counts
/// values of bit length `i`; bucket 0 holds the value 0). Matches
/// [`crate::metrics`] so windowed quantiles agree with run-total ones.
const BUCKETS: usize = 65;

/// Sentinel for "no sample ingested yet" in [`Ring::head`] and for "slot
/// never used" in [`Bin::index`].
const EMPTY: u64 = u64::MAX;

/// How a series is interpreted at query and export time. All kinds
/// accumulate count/sum/min/max per bin; [`SeriesKind::Histogram`]
/// additionally keeps per-bin power-of-two buckets so
/// [`Series::quantile_over`] can answer windowed percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic event counts; [`Series::rate_over`] divides the
    /// windowed sum by the window length.
    Counter,
    /// Sampled levels (queue depth, occupancy); windowed avg/min/max are
    /// the natural queries.
    Gauge,
    /// Distributions (latencies, distances); windowed quantiles are the
    /// natural queries.
    Histogram,
}

impl SeriesKind {
    /// Lowercase name used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// Immutable shape of one series: static name, kind, bin width in
/// simulated microseconds, and ring length in bins. The retention
/// horizon is `bin_width_us * bins`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesSpec {
    /// Dotted metric-style name (`"supervisor.shed"`); static so the
    /// registry can never grow unbounded, mirroring metric keys.
    pub name: &'static str,
    /// Query/export interpretation.
    pub kind: SeriesKind,
    /// Width of one bin in simulated microseconds (> 0).
    pub bin_width_us: u64,
    /// Ring length in bins (> 0).
    pub bins: usize,
}

impl SeriesSpec {
    /// A counter series spec.
    pub fn counter(name: &'static str, bin_width_us: u64, bins: usize) -> SeriesSpec {
        SeriesSpec { name, kind: SeriesKind::Counter, bin_width_us, bins }
    }

    /// A gauge series spec.
    pub fn gauge(name: &'static str, bin_width_us: u64, bins: usize) -> SeriesSpec {
        SeriesSpec { name, kind: SeriesKind::Gauge, bin_width_us, bins }
    }

    /// A histogram series spec.
    pub fn histogram(name: &'static str, bin_width_us: u64, bins: usize) -> SeriesSpec {
        SeriesSpec { name, kind: SeriesKind::Histogram, bin_width_us, bins }
    }

    fn normalised(mut self) -> SeriesSpec {
        // A zero width or length can't ring-buffer; clamp rather than
        // panic so a bad tap can never take a cohort down (the same
        // never-panic policy as the metric registry's kind clash).
        self.bin_width_us = self.bin_width_us.max(1);
        self.bins = self.bins.max(1);
        self
    }
}

/// One bin of accumulated samples.
#[derive(Debug, Clone)]
struct Bin {
    /// Absolute bin index this slot currently holds (`EMPTY` if unused).
    index: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Power-of-two buckets; empty vec for non-histogram kinds.
    buckets: Vec<u64>,
}

impl Bin {
    fn unused(histogram: bool) -> Bin {
        Bin {
            index: EMPTY,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: if histogram { vec![0; BUCKETS] } else { Vec::new() },
        }
    }

    fn reset(&mut self, index: u64) {
        self.index = index;
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        for b in &mut self.buckets {
            *b = 0;
        }
    }
}

/// The ring state behind one series.
#[derive(Debug)]
struct Ring {
    slots: Vec<Bin>,
    /// Highest absolute bin index seen so far (`EMPTY` before the first
    /// sample). The retention horizon is `(head − slots.len(), head]`.
    head: u64,
    dropped: u64,
    total_count: u64,
    total_sum: u64,
}

/// Running whole-run totals of a series, independent of ring rotation —
/// the error-budget ledger is built on these, so budget accounting stays
/// exact even when the alert windows only see recent bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeriesTotals {
    /// Samples ingested (including dropped ones).
    pub count: u64,
    /// Sum of all ingested values (including dropped ones).
    pub sum: u64,
    /// Samples older than the retention horizon at ingest time; counted
    /// in the totals but absent from every window.
    pub dropped: u64,
}

/// Windowed aggregate over the bins inside `(end − window, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStats {
    /// Samples in the window.
    pub count: u64,
    /// Sum of sample values in the window.
    pub sum: u64,
    /// Smallest sample (`None` when the window is empty).
    pub min: Option<u64>,
    /// Largest sample (`None` when the window is empty).
    pub max: Option<u64>,
}

impl WindowStats {
    /// Mean sample value, `None` when the window is empty (no NaN).
    pub fn avg(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[derive(Debug)]
struct SeriesCell {
    spec: SeriesSpec,
    ring: Mutex<Ring>,
}

impl SeriesCell {
    fn new(spec: SeriesSpec) -> SeriesCell {
        let histogram = spec.kind == SeriesKind::Histogram;
        SeriesCell {
            spec,
            ring: Mutex::new(Ring {
                slots: (0..spec.bins).map(|_| Bin::unused(histogram)).collect(),
                head: EMPTY,
                dropped: 0,
                total_count: 0,
                total_sum: 0,
            }),
        }
    }

    fn record(&self, t_us: u64, value: u64) {
        let idx = t_us / self.spec.bin_width_us;
        let len = self.spec.bins as u64;
        let mut r = self.ring.lock().expect("series ring poisoned");
        r.total_count += 1;
        r.total_sum = r.total_sum.saturating_add(value);
        if r.head != EMPTY && r.head >= len && idx <= r.head - len {
            // Older than the retention horizon: totalled, not binned.
            r.dropped += 1;
            return;
        }
        if r.head == EMPTY || idx > r.head {
            r.head = idx;
        }
        let slot = &mut r.slots[(idx % len) as usize];
        if slot.index != idx {
            slot.reset(idx);
        }
        slot.count += 1;
        slot.sum = slot.sum.saturating_add(value);
        slot.min = slot.min.min(value);
        slot.max = slot.max.max(value);
        if !slot.buckets.is_empty() {
            slot.buckets[(64 - value.leading_zeros()) as usize] += 1;
        }
    }

    /// Absolute bin range `[lo, hi]` covered by the window
    /// `(end_us − window_us, end_us]`, clamped to the retention horizon.
    fn window_bins(&self, r: &Ring, end_us: u64, window_us: u64) -> Option<(u64, u64)> {
        if r.head == EMPTY {
            return None;
        }
        let w = self.spec.bin_width_us;
        let len = self.spec.bins as u64;
        let hi = end_us / w;
        let want = (window_us.div_ceil(w)).max(1);
        let lo = hi.saturating_sub(want - 1);
        // Bins older than the horizon may have been overwritten; clamp
        // so the answer is always exact over the bins it claims to cover.
        let floor = (r.head + 1).saturating_sub(len);
        Some((lo.max(floor), hi))
    }

    fn window(&self, end_us: u64, window_us: u64) -> WindowStats {
        let r = self.ring.lock().expect("series ring poisoned");
        let Some((lo, hi)) = self.window_bins(&r, end_us, window_us) else {
            return WindowStats::default();
        };
        let mut out = WindowStats::default();
        for slot in &r.slots {
            if slot.index == EMPTY || slot.index < lo || slot.index > hi || slot.count == 0 {
                continue;
            }
            out.count += slot.count;
            out.sum = out.sum.saturating_add(slot.sum);
            out.min = Some(out.min.map_or(slot.min, |m| m.min(slot.min)));
            out.max = Some(out.max.map_or(slot.max, |m| m.max(slot.max)));
        }
        out
    }

    fn quantile(&self, end_us: u64, window_us: u64, pct: u8) -> Option<u64> {
        if self.spec.kind != SeriesKind::Histogram {
            return None;
        }
        let r = self.ring.lock().expect("series ring poisoned");
        let (lo, hi) = self.window_bins(&r, end_us, window_us)?;
        let mut merged = [0u64; BUCKETS];
        let mut count = 0u64;
        let mut vmin = u64::MAX;
        let mut vmax = 0u64;
        for slot in &r.slots {
            if slot.index == EMPTY || slot.index < lo || slot.index > hi || slot.count == 0 {
                continue;
            }
            count += slot.count;
            vmin = vmin.min(slot.min);
            vmax = vmax.max(slot.max);
            for (m, &b) in merged.iter_mut().zip(&slot.buckets) {
                *m += b;
            }
        }
        if count == 0 {
            return None;
        }
        // Upper bound of the bucket holding the p-th value, clamped into
        // the observed [min, max] — same estimator as
        // `HistogramSnapshot`, so windowed and whole-run p99 agree.
        let rank = (count * pct.min(100) as u64).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in merged.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return Some(upper.clamp(vmin, vmax));
            }
        }
        Some(vmax)
    }

    fn totals(&self) -> SeriesTotals {
        let r = self.ring.lock().expect("series ring poisoned");
        SeriesTotals { count: r.total_count, sum: r.total_sum, dropped: r.dropped }
    }

    fn rows(&self) -> Vec<SeriesRow> {
        let r = self.ring.lock().expect("series ring poisoned");
        let mut rows: Vec<SeriesRow> = r
            .slots
            .iter()
            .filter(|s| s.index != EMPTY && s.count > 0)
            .map(|s| SeriesRow {
                name: self.spec.name,
                kind: self.spec.kind,
                bin_start_us: s.index * self.spec.bin_width_us,
                bin_width_us: self.spec.bin_width_us,
                count: s.count,
                sum: s.sum,
                min: s.min,
                max: s.max,
            })
            .collect();
        rows.sort_by_key(|row| row.bin_start_us);
        rows
    }
}

/// A series handle. Cloning shares the ring; the disabled handle
/// ([`Series::noop`], the [`Default`]) costs one `Option` check per op.
#[derive(Debug, Clone, Default)]
pub struct Series(Option<Arc<SeriesCell>>);

impl Series {
    /// A detached no-op series (what [`crate::Obs::noop`] hands out).
    pub fn noop() -> Series {
        Series(None)
    }

    /// A live series not attached to any registry. The supervisor's
    /// SLO-driven ladder uses these: its control loop must see real
    /// windows even when the caller passed [`crate::Obs::noop`].
    pub fn standalone(spec: SeriesSpec) -> Series {
        Series(Some(Arc::new(SeriesCell::new(spec.normalised()))))
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Ingests one sample at simulated time `t_us`. O(1); samples older
    /// than the retention horizon are dropped (totalled, not binned).
    pub fn record(&self, t_us: u64, value: u64) {
        if let Some(cell) = &self.0 {
            cell.record(t_us, value);
        }
    }

    /// Windowed count/sum/min/max over `(end_us − window_us, end_us]`,
    /// clamped to the retention horizon. Zeroed stats on a noop handle.
    pub fn window(&self, end_us: u64, window_us: u64) -> WindowStats {
        self.0.as_ref().map_or_else(WindowStats::default, |c| c.window(end_us, window_us))
    }

    /// Windowed event rate in events per simulated second: windowed
    /// `sum / window_us`, the counter-kind reading. 0.0 on an empty
    /// window (perfect-on-empty, the workspace ratio convention).
    pub fn rate_over(&self, end_us: u64, window_us: u64) -> f64 {
        let w = self.window(end_us, window_us);
        if w.count == 0 || window_us == 0 {
            0.0
        } else {
            w.sum as f64 * 1_000_000.0 / window_us as f64
        }
    }

    /// Windowed percentile (`pct` in 0..=100) for histogram series:
    /// upper bound of the power-of-two bucket holding the p-th value,
    /// clamped into the window's observed `[min, max]`. `None` on an
    /// empty window, a non-histogram kind, or a noop handle — never NaN.
    pub fn quantile_over(&self, end_us: u64, window_us: u64, pct: u8) -> Option<u64> {
        self.0.as_ref().and_then(|c| c.quantile(end_us, window_us, pct))
    }

    /// Whole-run running totals (zeroed on a noop handle).
    pub fn totals(&self) -> SeriesTotals {
        self.0.as_ref().map_or_else(SeriesTotals::default, |c| c.totals())
    }

    /// This series' spec (`None` on a noop handle).
    pub fn spec(&self) -> Option<SeriesSpec> {
        self.0.as_ref().map(|c| c.spec)
    }
}

/// One exported non-empty bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRow {
    /// Series name.
    pub name: &'static str,
    /// Series kind.
    pub kind: SeriesKind,
    /// Simulated-µs start of the bin.
    pub bin_start_us: u64,
    /// Bin width in simulated µs.
    pub bin_width_us: u64,
    /// Samples in the bin.
    pub count: u64,
    /// Sum of sample values in the bin.
    pub sum: u64,
    /// Smallest sample in the bin.
    pub min: u64,
    /// Largest sample in the bin.
    pub max: u64,
}

/// A named collection of series. [`crate::Obs::recording`] owns one for
/// taps; standalone registries back control loops (the supervisor's
/// SLO ladder) that must work even when observability is off.
///
/// Keys are names only (no labels): series are pre-aggregated views for
/// control loops and dashboards, so one ring per name keeps windows
/// whole — per-pillar detail belongs to the labelled metric registry.
#[derive(Debug, Default)]
pub struct SeriesRegistry {
    cells: Mutex<BTreeMap<&'static str, Arc<SeriesCell>>>,
}

impl SeriesRegistry {
    /// An empty registry.
    pub fn new() -> SeriesRegistry {
        SeriesRegistry::default()
    }

    /// Resolves (registering on first use) the series named in `spec`.
    /// Resolve once and keep the handle — resolution takes the registry
    /// lock, ingest takes only the series' own ring lock. A name already
    /// registered with a different spec yields a *detached* live series
    /// (it accumulates but never exports) instead of panicking, the
    /// same clash policy as the metric registry.
    pub fn series(&self, spec: SeriesSpec) -> Series {
        let spec = spec.normalised();
        let mut cells = self.cells.lock().expect("series registry poisoned");
        let cell =
            cells.entry(spec.name).or_insert_with(|| Arc::new(SeriesCell::new(spec))).clone();
        if cell.spec != spec {
            debug_assert!(false, "series {:?} registered with two specs", spec.name);
            return Series::standalone(spec);
        }
        Series(Some(cell))
    }

    /// All non-empty bins of all registered series, sorted by
    /// `(name, bin_start_us)` — deterministic for identical seeded runs.
    pub fn rows(&self) -> Vec<SeriesRow> {
        let cells = self.cells.lock().expect("series registry poisoned");
        let mut rows = Vec::new();
        for cell in cells.values() {
            rows.extend(cell.rows());
        }
        // BTreeMap iteration is name-sorted and rows() is bin-sorted, so
        // the concatenation is already in export order.
        rows
    }

    /// RFC-4180 CSV of [`SeriesRegistry::rows`] (CRLF line endings, like
    /// the metric exporters).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,kind,bin_start_us,bin_width_us,count,sum,min,max\r\n");
        for row in self.rows() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\r\n",
                crate::export::csv_field(row.name),
                row.kind.label(),
                row.bin_start_us,
                row.bin_width_us,
                row.count,
                row.sum,
                row.min,
                row.max,
            ));
        }
        out
    }

    /// JSON-lines of [`SeriesRegistry::rows`], one object per bin.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in self.rows() {
            out.push_str(&format!(
                concat!(
                    "{{\"name\":{},\"kind\":\"{}\",\"bin_start_us\":{},",
                    "\"bin_width_us\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}\n"
                ),
                crate::export::json_str(row.name),
                row.kind.label(),
                row.bin_start_us,
                row.bin_width_us,
                row.count,
                row.sum,
                row.min,
                row.max,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_windows_are_exact_within_horizon() {
        let s = Series::standalone(SeriesSpec::counter("t.ev", 1_000, 8));
        // Bins: 0,0,1,3,7 — values 1 each.
        for t in [100u64, 900, 1_500, 3_000, 7_999] {
            s.record(t, 1);
        }
        let w = s.window(7_999, 8_000);
        assert_eq!(w.count, 5);
        assert_eq!(w.sum, 5);
        let w = s.window(3_999, 3_000); // bins 1..=3
        assert_eq!(w.count, 2, "bins 1 and 3 hold one sample each");
        assert_eq!(s.window(3_999, 2_000).count, 1, "bin 2 is empty, bin 3 holds one");
        let w = s.window(7_999, 1_000); // bin 7 only
        assert_eq!(w.count, 1);
        assert_eq!(s.totals(), SeriesTotals { count: 5, sum: 5, dropped: 0 });
    }

    #[test]
    fn series_rotation_never_double_counts() {
        let s = Series::standalone(SeriesSpec::counter("t.rot", 1_000, 4));
        for bin in 0..10u64 {
            s.record(bin * 1_000 + 5, 1);
        }
        // Ring holds bins 6..=9; older bins were overwritten.
        let w = s.window(9_999, 4_000);
        assert_eq!(w.count, 4);
        // A wider-than-horizon window clamps to the horizon instead of
        // returning partial (hence wrong) older bins.
        let w = s.window(9_999, 100_000);
        assert_eq!(w.count, 4);
        assert_eq!(s.totals().count, 10, "totals survive rotation");
    }

    #[test]
    fn series_too_old_samples_drop_into_totals() {
        let s = Series::standalone(SeriesSpec::counter("t.old", 1_000, 4));
        s.record(9_500, 1); // head = bin 9, horizon = bins 6..=9
        s.record(2_000, 7); // bin 2: older than horizon
        let t = s.totals();
        assert_eq!(t, SeriesTotals { count: 2, sum: 8, dropped: 1 });
        assert_eq!(s.window(9_999, 10_000).count, 1, "dropped sample is in no window");
    }

    #[test]
    fn series_gauge_window_stats_and_empty_avg() {
        let s = Series::standalone(SeriesSpec::gauge("t.depth", 500, 16));
        assert_eq!(s.window(10_000, 5_000), WindowStats::default());
        assert_eq!(WindowStats::default().avg(), None, "empty window has no average");
        s.record(1_000, 3);
        s.record(1_400, 9);
        s.record(2_600, 6);
        let w = s.window(2_999, 2_000);
        assert_eq!((w.count, w.sum, w.min, w.max), (3, 18, Some(3), Some(9)));
        assert_eq!(w.avg(), Some(6.0));
    }

    #[test]
    fn series_windowed_quantiles_match_metric_estimator() {
        let s = Series::standalone(SeriesSpec::histogram("t.lat", 1_000, 32));
        for (t, v) in [(100u64, 0u64), (200, 1), (300, 1), (400, 7), (500, 1000)] {
            s.record(t, v);
        }
        assert_eq!(s.quantile_over(999, 1_000, 50), Some(1));
        assert_eq!(s.quantile_over(999, 1_000, 99), Some(1000), "clamped into observed max");
        assert_eq!(s.quantile_over(999, 1_000, 0), Some(0));
        // Empty window and non-histogram kinds answer None, never NaN.
        assert_eq!(s.quantile_over(50_000, 1_000, 99), None);
        let c = Series::standalone(SeriesSpec::counter("t.c", 1_000, 4));
        c.record(0, 1);
        assert_eq!(c.quantile_over(999, 1_000, 50), None);
    }

    #[test]
    fn series_rate_is_sum_over_window() {
        let s = Series::standalone(SeriesSpec::counter("t.rate", 1_000_000, 8));
        for t in 0..4u64 {
            s.record(t * 1_000_000, 2);
        }
        let rate = s.rate_over(3_999_999, 4_000_000);
        assert!((rate - 2.0).abs() < 1e-12, "8 events / 4 s = 2/s, got {rate}");
        assert_eq!(s.rate_over(3_999_999, 0), 0.0, "zero window is 0, not NaN");
    }

    #[test]
    fn series_noop_is_free_and_zeroed() {
        let s = Series::noop();
        assert!(!s.enabled());
        s.record(0, 10);
        assert_eq!(s.window(0, 1_000), WindowStats::default());
        assert_eq!(s.totals(), SeriesTotals::default());
        assert_eq!(s.quantile_over(0, 1_000, 99), None);
        assert_eq!(s.spec(), None);
    }

    #[test]
    fn series_registry_resolves_once_and_exports_sorted() {
        let reg = SeriesRegistry::new();
        let a = reg.series(SeriesSpec::counter("b.second", 1_000, 8));
        let b = reg.series(SeriesSpec::counter("b.second", 1_000, 8));
        a.record(2_500, 1);
        b.record(2_700, 1);
        reg.series(SeriesSpec::counter("a.first", 1_000, 8)).record(100, 4);
        let rows = reg.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].name, rows[0].count, rows[0].sum), ("a.first", 1, 4));
        assert_eq!((rows[1].name, rows[1].count), ("b.second", 2), "same name shares a ring");
        let csv = reg.to_csv();
        assert!(csv.starts_with("name,kind,bin_start_us,"));
        assert!(csv.contains("a.first,counter,0,1000,1,4,4,4\r\n"));
        let jsonl = reg.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"name\":\"b.second\""));
    }

    #[test]
    fn series_degenerate_spec_is_clamped_not_panicking() {
        let s = Series::standalone(SeriesSpec::counter("t.zero", 0, 0));
        s.record(123, 1);
        assert_eq!(s.window(123, 1).count, 1);
        assert_eq!(s.spec().unwrap().bin_width_us, 1);
        assert_eq!(s.spec().unwrap().bins, 1);
    }
}
