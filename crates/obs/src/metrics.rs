//! The sharded counter/histogram registry and the [`Obs`] handle.
//!
//! Mirrors the `GopCache` design: metric keys hash to one of a fixed
//! set of shards, each behind its own `std::sync::Mutex`, so cohort
//! worker threads registering different metrics never contend on one
//! lock — and a resolved [`Counter`]/[`Histogram`] handle never takes a
//! lock at all (its hot path is one atomic op).
//!
//! Everything a metric accumulates is **commutative** (adds, bucket
//! increments, min/max), so the exported numbers are independent of
//! worker scheduling: two runs of the same seeded cohort snapshot to
//! byte-identical exports no matter how the OS interleaved the threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::span::{SpanRecorder, Trace};
use crate::timeseries::{Series, SeriesRegistry, SeriesRow, SeriesSpec};

/// Number of registry shards (fixed; the registry holds metric *keys*,
/// not per-session state, so a small constant is plenty).
const SHARDS: usize = 16;

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// whose bit length is `i` (bucket 0 holds the value 0).
const BUCKETS: usize = 65;

/// A metric key: a static name plus static key/value labels.
///
/// Labels are `&'static str` on both sides by design — per-session
/// identity belongs in span [`Trace`] labels, not in metric
/// cardinality, so the registry can never grow without bound.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Key {
    name: &'static str,
    labels: Vec<(&'static str, &'static str)>,
}

impl Key {
    /// FNV-1a over name and labels; selects the shard.
    fn shard_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |s: &str| {
            for &b in s.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        eat(self.name);
        for (k, v) in &self.labels {
            eat(k);
            eat(v);
        }
        h
    }
}

/// Lock-free accumulation cell of one histogram.
#[derive(Debug)]
struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let min = if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) };
        let max = self.max.load(Ordering::Relaxed);
        // Percentile = upper bound of the bucket holding the p-th value,
        // clamped into the observed [min, max]: a power-of-two bucket
        // bound can exceed every recorded value (a histogram holding
        // only 1000s sits in the [512, 1023] bucket, and 1023 was never
        // observed), and on a single-value histogram the clamp collapses
        // every percentile to that exact value.
        let pct = |p: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (count * p).div_ceil(100).max(1);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    let upper = match i {
                        0 => 0,
                        64 => u64::MAX,
                        _ => (1u64 << i) - 1,
                    };
                    return upper.clamp(min, max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: pct(50),
            p90: pct(90),
            p99: pct(99),
        }
    }
}

/// A registered metric cell.
#[derive(Debug, Clone)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCell>),
}

#[derive(Debug)]
struct Registry {
    shards: Vec<Mutex<HashMap<Key, Cell>>>,
}

impl Registry {
    fn new() -> Registry {
        Registry { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard(&self, key: &Key) -> &Mutex<HashMap<Key, Cell>> {
        &self.shards[(key.shard_hash() % SHARDS as u64) as usize]
    }

    /// Resolves (registering on first use) the counter under `key`. A
    /// name already registered as a histogram yields a *detached* cell —
    /// it accumulates but never exports — instead of panicking, so an
    /// instrumentation name clash can't take a cohort down.
    fn counter(&self, key: Key) -> Arc<AtomicU64> {
        let mut shard = self.shard(&key).lock().expect("registry shard poisoned");
        match shard.entry(key).or_insert_with(|| Cell::Counter(Arc::new(AtomicU64::new(0)))) {
            Cell::Counter(c) => c.clone(),
            Cell::Gauge(_) | Cell::Histogram(_) => {
                debug_assert!(false, "metric registered under both kinds");
                Arc::new(AtomicU64::new(0))
            }
        }
    }

    fn histogram(&self, key: Key) -> Arc<HistCell> {
        let mut shard = self.shard(&key).lock().expect("registry shard poisoned");
        match shard.entry(key).or_insert_with(|| Cell::Histogram(Arc::new(HistCell::new()))) {
            Cell::Histogram(h) => h.clone(),
            Cell::Counter(_) | Cell::Gauge(_) => {
                debug_assert!(false, "metric registered under both kinds");
                Arc::new(HistCell::new())
            }
        }
    }

    /// Resolves (registering on first use) the high-water gauge under
    /// `key`, with the same kind-clash policy as [`Registry::counter`].
    fn gauge(&self, key: Key) -> Arc<AtomicU64> {
        let mut shard = self.shard(&key).lock().expect("registry shard poisoned");
        match shard.entry(key).or_insert_with(|| Cell::Gauge(Arc::new(AtomicU64::new(0)))) {
            Cell::Gauge(g) => g.clone(),
            Cell::Counter(_) | Cell::Histogram(_) => {
                debug_assert!(false, "metric registered under both kinds");
                Arc::new(AtomicU64::new(0))
            }
        }
    }

    fn rows(&self) -> Vec<MetricRow> {
        let mut rows = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard poisoned");
            for (key, cell) in shard.iter() {
                let value = match cell {
                    Cell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                    Cell::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                rows.push(MetricRow { name: key.name, labels: key.labels.clone(), value });
            }
        }
        // HashMap order is nondeterministic; the export order is not.
        rows.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        rows
    }
}

/// A counter handle. Cloning is cheap; the disabled (`Noop`) handle
/// costs one `Option` check per operation.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what [`Obs::noop`] hands out).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a noop handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A high-water gauge handle: [`Gauge::observe`] keeps the maximum of
/// everything observed, which is commutative, so concurrent observers
/// still snapshot to a scheduling-independent value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Raises the gauge to `value` if it is above the current high water.
    pub fn observe(&self, value: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current high-water value (0 for a noop handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A histogram handle recording `u64` observations (simulated
/// microseconds, frame counts, bytes — integral by convention, so
/// parallel accumulation stays exact).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// A detached no-op histogram.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }
}

/// Exported state of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Upper bound of the bucket holding the median observation.
    pub p50: u64,
    /// Upper bound of the bucket holding the 90th-percentile observation.
    pub p90: u64,
    /// Upper bound of the bucket holding the 99th-percentile observation.
    pub p99: u64,
}

/// One exported metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRow {
    /// Metric name.
    pub name: &'static str,
    /// Static labels, in registration order.
    pub labels: Vec<(&'static str, &'static str)>,
    /// The metric's value.
    pub value: MetricValue,
}

/// A counter value, a gauge high water, or a histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// High-water gauge.
    Gauge(u64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// A deterministic snapshot of everything recorded so far: metrics
/// sorted by `(name, labels)`, traces sorted by label. See [`crate::export`]
/// for the table/CSV/JSONL serialisations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// All registered metrics.
    pub metrics: Vec<MetricRow>,
    /// All attached session traces.
    pub traces: Vec<Trace>,
}

impl Snapshot {
    /// The value of the counter `name`, summed over every label set it
    /// was registered with (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|r| r.name == name)
            .map(|r| match &r.value {
                MetricValue::Counter(v) => *v,
                MetricValue::Gauge(_) | MetricValue::Histogram(_) => 0,
            })
            .sum()
    }

    /// The high water of the gauge `name`, maxed over every label set it
    /// was registered with (0 if absent).
    pub fn gauge_max(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|r| r.name == name)
            .map(|r| match &r.value {
                MetricValue::Gauge(v) => *v,
                MetricValue::Counter(_) | MetricValue::Histogram(_) => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// The snapshot of the histogram `name` (first matching label set).
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.metrics.iter().find_map(|r| match (&r.value, r.name == name) {
            (MetricValue::Histogram(h), true) => Some(*h),
            _ => None,
        })
    }

    /// Total spans recorded under `name` across every trace.
    pub fn span_count(&self, name: &str) -> usize {
        self.traces
            .iter()
            .map(|t| t.spans.iter().filter(|s| s.name == name).count())
            .sum()
    }

    /// Summed simulated duration of every span named `name`, in µs.
    pub fn span_duration_us(&self, name: &str) -> u64 {
        self.traces
            .iter()
            .flat_map(|t| t.spans.iter())
            .filter(|s| s.name == name)
            .map(|s| s.duration_us())
            .sum()
    }
}

struct Inner {
    registry: Registry,
    series: SeriesRegistry,
    traces: Mutex<Vec<Trace>>,
}

/// The observability handle threaded through the platform's hot paths.
///
/// Cloning shares the backend. [`Obs::noop`] (the [`Default`]) is the
/// disabled backend: it hands out detached [`Counter`]/[`Histogram`]
/// handles and [`SpanRecorder::disabled`] recorders, so instrumented
/// code pays one branch per operation and allocates nothing.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.enabled()).finish()
    }
}

impl Obs {
    /// The disabled backend: every handle is detached, nothing is kept.
    pub fn noop() -> Obs {
        Obs { inner: None }
    }

    /// A live recording backend with an empty registry.
    pub fn recording() -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                registry: Registry::new(),
                series: SeriesRegistry::new(),
                traces: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) a counter. Resolve once and
    /// keep the handle — resolution takes a shard lock, increments do not.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &'static str)]) -> Counter {
        match &self.inner {
            None => Counter::noop(),
            Some(inner) => Counter(Some(
                inner.registry.counter(Key { name, labels: labels.to_vec() }),
            )),
        }
    }

    /// Resolves (registering on first use) a high-water gauge.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &'static str)]) -> Gauge {
        match &self.inner {
            None => Gauge::noop(),
            Some(inner) => {
                Gauge(Some(inner.registry.gauge(Key { name, labels: labels.to_vec() })))
            }
        }
    }

    /// Resolves (registering on first use) a histogram.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> Histogram {
        match &self.inner {
            None => Histogram::noop(),
            Some(inner) => Histogram(Some(
                inner.registry.histogram(Key { name, labels: labels.to_vec() }),
            )),
        }
    }

    /// Resolves (registering on first use) a ring-buffer time series.
    /// Like metric handles: resolve once, keep the handle, and a noop
    /// backend hands out a detached [`Series`] whose ingest is one
    /// `Option` check.
    pub fn series(&self, spec: SeriesSpec) -> Series {
        match &self.inner {
            None => Series::noop(),
            Some(inner) => inner.series.series(spec),
        }
    }

    /// All non-empty time-series bins, sorted by `(name, bin_start_us)`
    /// (empty on a noop backend).
    pub fn series_rows(&self) -> Vec<SeriesRow> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| inner.series.rows())
    }

    /// Deterministic CSV of every registered time series (header only on
    /// a noop backend).
    pub fn series_csv(&self) -> String {
        match &self.inner {
            None => SeriesRegistry::new().to_csv(),
            Some(inner) => inner.series.to_csv(),
        }
    }

    /// Deterministic JSON-lines of every registered time series (empty
    /// on a noop backend).
    pub fn series_jsonl(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |inner| inner.series.to_jsonl())
    }

    /// A span recorder for the session labelled `label` (disabled when
    /// this handle is the noop backend).
    pub fn recorder(&self, label: String) -> SpanRecorder {
        if self.enabled() {
            SpanRecorder::new(label)
        } else {
            SpanRecorder::disabled()
        }
    }

    /// Attaches a finished recorder's trace to the snapshot set. Spans
    /// still open are closed at the trace's latest recorded moment —
    /// combined with creating the recorder *outside* any `catch_unwind`,
    /// this is the panic-safe flush path.
    pub fn attach(&self, rec: SpanRecorder) {
        if let (Some(inner), true) = (&self.inner, rec.is_enabled()) {
            inner.traces.lock().expect("trace store poisoned").push(rec.into_trace());
        }
    }

    /// A deterministic snapshot: metrics sorted by `(name, labels)`,
    /// traces sorted by label. Two identical seeded runs produce equal
    /// snapshots — and byte-identical exports — regardless of thread
    /// scheduling.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            None => Snapshot { metrics: Vec::new(), traces: Vec::new() },
            Some(inner) => {
                let metrics = inner.registry.rows();
                let mut traces = inner.traces.lock().expect("trace store poisoned").clone();
                traces.sort_by(|a, b| a.label.cmp(&b.label));
                Snapshot { metrics, traces }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_counters_and_histograms_register_once() {
        let obs = Obs::recording();
        let a = obs.counter("x.hits", &[("pillar", "media")]);
        let b = obs.counter("x.hits", &[("pillar", "media")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3, "same key resolves to the same cell");
        let h = obs.histogram("x.lat", &[]);
        for v in [0u64, 1, 1, 7, 1000] {
            h.record(v);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("x.hits"), 3);
        let hs = snap.histogram("x.lat").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1009);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 1000);
        assert_eq!(hs.p50, 1, "median bucket is [1,1]");
        assert_eq!(hs.p99, 1000, "p99 bucket bound 1023 clamps to the observed max");
    }

    #[test]
    fn obs_series_register_once_and_noop_is_free() {
        let obs = Obs::recording();
        let a = obs.series(SeriesSpec::counter("s.ev", 1_000, 8));
        let b = obs.series(SeriesSpec::counter("s.ev", 1_000, 8));
        a.record(500, 1);
        b.record(700, 2);
        assert_eq!(a.window(999, 1_000).sum, 3, "same name resolves to the same ring");
        assert_eq!(obs.series_rows().len(), 1);
        assert!(obs.series_csv().contains("s.ev,counter,0,1000,2,3,1,2\r\n"));
        assert_eq!(obs.series_jsonl().lines().count(), 1);
        let noop = Obs::noop();
        let s = noop.series(SeriesSpec::counter("s.ev", 1_000, 8));
        s.record(500, 1);
        assert!(!s.enabled());
        assert!(noop.series_rows().is_empty());
        assert_eq!(noop.series_csv(), "name,kind,bin_start_us,bin_width_us,count,sum,min,max\r\n");
        assert_eq!(noop.series_jsonl(), "");
    }

    #[test]
    fn obs_noop_handles_cost_nothing_and_export_nothing() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        let c = obs.counter("n", &[]);
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = obs.histogram("h", &[]);
        h.record(5);
        let mut rec = obs.recorder("s".into());
        rec.enter("root", 0);
        obs.attach(rec);
        let snap = obs.snapshot();
        assert!(snap.metrics.is_empty());
        assert!(snap.traces.is_empty());
        assert_eq!(snap.counter_total("n"), 0);
    }

    #[test]
    fn obs_distinct_labels_are_distinct_series() {
        let obs = Obs::recording();
        obs.counter("y", &[("pillar", "media")]).add(1);
        obs.counter("y", &[("pillar", "stream")]).add(2);
        let snap = obs.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        assert_eq!(snap.counter_total("y"), 3);
    }

    #[test]
    fn obs_snapshot_is_deterministic_across_threads() {
        let run = || {
            let obs = Obs::recording();
            std::thread::scope(|s| {
                for t in 0..8u64 {
                    let obs = obs.clone();
                    s.spawn(move || {
                        let c = obs.counter("work.items", &[]);
                        let h = obs.histogram("work.cost", &[]);
                        for i in 0..100u64 {
                            c.inc();
                            h.record(t * 100 + i);
                        }
                        let mut rec = obs.recorder(format!("worker-{t:02}"));
                        rec.enter("session", 0);
                        rec.exit(1000 + t);
                        obs.attach(rec);
                    });
                }
            });
            obs.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "scheduling must not leak into the snapshot");
        assert_eq!(a.counter_total("work.items"), 800);
        assert_eq!(a.traces.len(), 8);
        assert!(a.traces.windows(2).all(|w| w[0].label < w[1].label));
    }

    #[test]
    fn obs_span_totals_are_queryable() {
        let obs = Obs::recording();
        let mut rec = obs.recorder("s-0".into());
        rec.enter("session", 0);
        rec.enter_with("dwell", 1, 0);
        rec.exit(50);
        rec.enter_with("dwell", 2, 50);
        rec.exit(80);
        rec.exit(80);
        obs.attach(rec);
        let snap = obs.snapshot();
        assert_eq!(snap.span_count("dwell"), 2);
        assert_eq!(snap.span_duration_us("dwell"), 80);
        assert_eq!(snap.span_duration_us("session"), 80);
        assert_eq!(snap.span_count("missing"), 0);
    }

    #[test]
    fn obs_gauge_keeps_high_water() {
        let obs = Obs::recording();
        let g = obs.gauge("queue.depth.max", &[("pillar", "runtime")]);
        g.observe(5);
        g.observe(3);
        assert_eq!(g.get(), 5, "lower observations never pull the gauge down");
        g.observe(9);
        let snap = obs.snapshot();
        assert_eq!(snap.gauge_max("queue.depth.max"), 9);
        assert_eq!(snap.counter_total("queue.depth.max"), 0, "gauges are not counters");
        let noop = Gauge::noop();
        noop.observe(100);
        assert_eq!(noop.get(), 0);
        assert_eq!(Obs::noop().gauge("g", &[]).get(), 0);
    }

    #[test]
    fn obs_histogram_empty_snapshot_is_zeroed() {
        let obs = Obs::recording();
        let _ = obs.histogram("empty", &[]);
        let hs = obs.snapshot().histogram("empty").unwrap();
        assert_eq!(hs, HistogramSnapshot::default());
    }
}
