//! # vgbl-obs — deterministic, headless tracing and metrics
//!
//! Every pillar of the platform simulates time instead of measuring it
//! (stream sessions run on a simulated millisecond clock, playback on the
//! media timeline), so its observability layer can be — and is — fully
//! deterministic: **two identical runs produce byte-identical traces and
//! metric exports**. That determinism is what lets EXP-13 cross-check
//! span totals against the analytics counters exactly, turning silent
//! metric drift into a hard failure.
//!
//! The crate has three parts:
//!
//! * [`span`] — hierarchical spans recorded per session by a
//!   [`SpanRecorder`]. Timestamps are caller-supplied microseconds of
//!   *simulated* time (never wall time); each recorder is single-owner,
//!   so span order inside a trace is deterministic, and traces are
//!   sorted by label at snapshot time, so multi-threaded cohorts export
//!   identically regardless of scheduling.
//! * [`metrics`] — a sharded, thread-safe registry of counters and
//!   histograms with static labels, mirroring the sharded `GopCache`
//!   design: keys hash to one of a fixed set of shards, each behind its
//!   own `std::sync::Mutex`; after handle resolution the hot path is a
//!   single lock-free atomic op. All metric state is commutative
//!   (counter adds, bucket increments, min/max), so concurrent workers
//!   cannot perturb the exported numbers.
//! * [`export`] — exporters for a [`Snapshot`]: an aligned text table,
//!   RFC-4180 CSV, and JSON-lines, alongside `SessionLog::to_csv`.
//! * [`timeseries`] — fixed-width ring-buffer time series on the
//!   simulated clock: O(1) ingest, windowed sum/avg/max/quantile
//!   queries, deterministic CSV/JSONL export. The *when* to the metric
//!   registry's *how much in total*.
//! * [`slo`] — declarative objectives over those series, evaluated with
//!   multi-window multi-burn-rate rules into a deterministic
//!   [`slo::AlertTimeline`] and an exact error-budget ledger.
//! * [`profile`] — folds recorded spans into inferno-compatible
//!   flamegraph text, top-k hotspot tables, and run-to-run diffs.
//! * [`journey`] — causal session journeys: pure-hash [`TraceCtx`]
//!   identities propagated across every fleet boundary, per-shard
//!   [`JourneyLog`]s of typed events, cross-shard [`stitch`]ing into
//!   per-session timelines, and a query/exemplar layer on top.
//!
//! The disabled backend ([`Obs::noop`]) hands out detached handles whose
//! operations are a single `Option` check — instrumented hot paths cost
//! near-zero when observability is off, so benches are unaffected.
//!
//! ```
//! use vgbl_obs::Obs;
//!
//! let obs = Obs::recording();
//! let hits = obs.counter("cache.hits", &[("pillar", "media")]);
//! hits.inc();
//! let mut rec = obs.recorder("session-0000".to_owned());
//! rec.enter("session", 0);
//! rec.enter("dwell", 0);
//! rec.exit(33_333);
//! rec.exit(33_333);
//! obs.attach(rec);
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter_total("cache.hits"), 1);
//! assert_eq!(snap.traces[0].spans.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod journey;
pub mod metrics;
pub mod profile;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use journey::{
    aggregate, aggregate_by, bucket_of, export_journeys, journeys_where, stitch, tail_exemplars,
    CriticalPath, Exemplar, JourneyAggregate, JourneyEvent, JourneyEventKind, JourneyLog,
    JourneyRecorder, SessionJourney, TerminalState, TraceCtx,
};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricRow, MetricValue, Obs, Snapshot,
};
pub use profile::{folded_stacks, hotspot_table, hotspots, profile_diff, Hotspot, ProfileDiff};
pub use slo::{
    AlertEvent, AlertPhase, AlertTimeline, BudgetLedger, BurnRule, Objective, SloEvaluator,
};
pub use span::{SpanRec, SpanRecorder, Trace};
pub use timeseries::{
    Series, SeriesKind, SeriesRegistry, SeriesRow, SeriesSpec, SeriesTotals, WindowStats,
};

/// Converts simulated milliseconds (the stream clock's unit) to the
/// microsecond ticks spans and time counters use. Negative or
/// non-finite inputs clamp to 0 so fault paths can never poison a
/// trace; finite inputs too large for `u64` microseconds saturate to
/// `u64::MAX` (the float-to-int cast is defined to saturate, including
/// when `ms * 1000.0` overflows to `+inf`), so a runaway simulated
/// clock pins at the end of time instead of wrapping.
pub fn us_from_ms(ms: f64) -> u64 {
    if ms.is_finite() && ms > 0.0 {
        (ms * 1000.0).round() as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_us_from_ms_is_total() {
        assert_eq!(us_from_ms(1.5), 1500);
        assert_eq!(us_from_ms(0.0), 0);
        assert_eq!(us_from_ms(-3.0), 0);
        assert_eq!(us_from_ms(f64::NAN), 0);
        assert_eq!(us_from_ms(f64::INFINITY), 0);
        assert_eq!(us_from_ms(0.0004), 0);
        assert_eq!(us_from_ms(0.0006), 1);
    }

    #[test]
    fn obs_us_from_ms_saturates_at_large_simulated_timestamps() {
        // Finite ms too large for u64 µs must saturate, not wrap: both
        // the in-range-f64-but-out-of-u64-range case and the case where
        // `ms * 1000.0` itself overflows to +inf (the cast saturates by
        // definition). A wrapped timestamp would sort a span's end
        // *before* its start and corrupt every export downstream.
        assert_eq!(us_from_ms(f64::MAX), u64::MAX);
        assert_eq!(us_from_ms(1e300), u64::MAX);
        // Largest u64 is ~1.8e19 µs ≈ 1.8e16 ms; just above saturates.
        assert_eq!(us_from_ms(2e16), u64::MAX);
        // Comfortably inside range still converts exactly.
        assert_eq!(us_from_ms(1e12), 1_000_000_000_000_000);
        // Monotone across the boundary: no value maps above MAX.
        assert!(us_from_ms(1.8e16) <= us_from_ms(1.9e16));
    }
}
