//! Declarative service-level objectives over [`crate::timeseries`],
//! evaluated with Google-SRE-style multi-window multi-burn-rate rules.
//!
//! An [`Objective`] names a bad-event fraction and a budget for it
//! (`shed_rate < 0.5%`, `rebuffer_ratio < 1%`). Its **burn rate** over a
//! window is `bad_fraction / budget` — burn 1.0 spends exactly the
//! budget if sustained, burn 14.4 exhausts a 3-day budget in 5 hours. A
//! [`BurnRule`] pairs a long window (is the burn *sustained*?) with a
//! short window (is it *still happening*?); the alert condition is the
//! AND of both exceeding the rule's threshold, which is what keeps a
//! recovered incident from paging for hours after the fact.
//!
//! Evaluation is driven by explicit [`SloEvaluator::tick`] calls on the
//! simulated clock, so the resulting [`AlertTimeline`] — every
//! pending → firing → resolved transition with its exact timestamp — is
//! byte-identical across reruns of a seeded scenario. Each rule moves
//! through at most **one** state transition per tick (hysteresis: an
//! alert can never flap within a single evaluation instant), a property
//! pinned by proptest.
//!
//! Alert windows only see the ring's retention horizon, so the
//! [`BudgetLedger`] is computed from [`crate::timeseries::SeriesTotals`] running totals
//! instead: budget accounting stays exact over the whole run no matter
//! how small the rings are.

use crate::export::{csv_field, json_str};
use crate::timeseries::Series;

/// One multi-window burn-rate rule: fire when the burn rate over *both*
/// the long and the short window is at least `burn`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRule {
    /// Rule label in the timeline (`"fast"`, `"slow"`).
    pub label: &'static str,
    /// Long window (sustained burn) in simulated µs.
    pub long_us: u64,
    /// Short window (still happening) in simulated µs.
    pub short_us: u64,
    /// Burn-rate threshold (1.0 = spending exactly the budget).
    pub burn: f64,
    /// How long the condition must hold before pending becomes firing.
    pub pending_us: u64,
}

impl BurnRule {
    /// The SRE-workbook fast-burn page rule — 14.4× burn over 1 h / 5 m
    /// — with both windows scaled by `us_per_min` simulated µs per
    /// "minute", so scenario clocks that compress time keep the shape.
    pub fn sre_fast(us_per_min: u64) -> BurnRule {
        BurnRule {
            label: "fast",
            long_us: 60 * us_per_min,
            short_us: 5 * us_per_min,
            burn: 14.4,
            pending_us: 0,
        }
    }

    /// The SRE-workbook slow-burn rule — 6× burn over 6 h / 30 m —
    /// scaled by `us_per_min` like [`BurnRule::sre_fast`]. (The 3-day
    /// ticket windows collapse to the same shape under scaling; these
    /// two presets cover the fast/slow split EXP-15 exercises.)
    pub fn sre_slow(us_per_min: u64) -> BurnRule {
        BurnRule {
            label: "slow",
            long_us: 360 * us_per_min,
            short_us: 30 * us_per_min,
            burn: 6.0,
            pending_us: 0,
        }
    }
}

/// How an objective derives its bad-event fraction from series.
#[derive(Debug, Clone)]
enum Sli {
    /// `bad.sum / total.sum` over the window (0 when no events — the
    /// workspace perfect-on-empty convention).
    EventRatio {
        /// Counter series of bad events.
        bad: Series,
        /// Counter series of all events.
        total: Series,
    },
    /// `busy.sum / window` — the fraction of the window spent in a bad
    /// state (rebuffering), for series whose values are µs of bad time.
    TimeFraction {
        /// Counter series whose values are bad µs.
        busy: Series,
    },
}

/// A service-level objective: a bad-event fraction, the budget for it,
/// and the burn-rate rules that alert on overspending.
#[derive(Debug, Clone)]
pub struct Objective {
    /// Objective name in timelines and ledgers (`"shed_rate"`).
    pub name: &'static str,
    /// Maximum acceptable bad fraction, in (0, 1].
    pub budget: f64,
    sli: Sli,
    /// Burn-rate rules evaluated each tick.
    pub rules: Vec<BurnRule>,
}

impl Objective {
    /// An event-ratio objective: `bad.sum / total.sum < budget`.
    pub fn event_ratio(
        name: &'static str,
        budget: f64,
        bad: Series,
        total: Series,
        rules: Vec<BurnRule>,
    ) -> Objective {
        Objective { name, budget: sane_budget(budget), sli: Sli::EventRatio { bad, total }, rules }
    }

    /// A time-fraction objective: `busy µs / elapsed µs < budget`.
    pub fn time_fraction(
        name: &'static str,
        budget: f64,
        busy: Series,
        rules: Vec<BurnRule>,
    ) -> Objective {
        Objective { name, budget: sane_budget(budget), sli: Sli::TimeFraction { busy }, rules }
    }

    /// Bad-event fraction over `(end_us − window_us, end_us]`. Empty
    /// windows are perfect (0.0), never NaN.
    pub fn bad_fraction_over(&self, end_us: u64, window_us: u64) -> f64 {
        match &self.sli {
            Sli::EventRatio { bad, total } => {
                let t = total.window(end_us, window_us).sum;
                if t == 0 {
                    0.0
                } else {
                    bad.window(end_us, window_us).sum as f64 / t as f64
                }
            }
            Sli::TimeFraction { busy } => {
                if window_us == 0 {
                    0.0
                } else {
                    busy.window(end_us, window_us).sum as f64 / window_us as f64
                }
            }
        }
    }

    /// Burn rate over the window: bad fraction divided by budget.
    pub fn burn_over(&self, end_us: u64, window_us: u64) -> f64 {
        self.bad_fraction_over(end_us, window_us) / self.budget
    }

    /// The whole-run error-budget ledger for this objective, from the
    /// running [`crate::timeseries::SeriesTotals`] (exact regardless of ring retention).
    /// `end_us` anchors time-fraction objectives; event-ratio ledgers
    /// ignore it.
    pub fn ledger(&self, end_us: u64) -> BudgetLedger {
        let (bad, total) = match &self.sli {
            Sli::EventRatio { bad, total } => (bad.totals().sum, total.totals().sum),
            Sli::TimeFraction { busy } => (busy.totals().sum, end_us),
        };
        BudgetLedger { objective: self.name, budget: self.budget, bad, total }
    }
}

/// Budgets must be a usable divisor: clamp junk into (0, 1] instead of
/// letting a bad config produce NaN/∞ burn rates.
fn sane_budget(budget: f64) -> f64 {
    if budget.is_finite() && budget > 0.0 {
        budget.min(1.0)
    } else {
        debug_assert!(false, "objective budget must be in (0, 1]");
        1.0
    }
}

/// Alert lifecycle phase recorded in the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertPhase {
    /// Condition newly true; waiting out the rule's `pending_us`.
    Pending,
    /// Condition held long enough — the alert is live.
    Firing,
    /// Condition no longer true; the alert closed.
    Resolved,
}

impl AlertPhase {
    /// Lowercase name used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            AlertPhase::Pending => "pending",
            AlertPhase::Firing => "firing",
            AlertPhase::Resolved => "resolved",
        }
    }
}

/// One state transition of one objective/rule pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertEvent {
    /// Simulated-µs tick at which the transition happened.
    pub t_us: u64,
    /// Objective name.
    pub objective: &'static str,
    /// Rule label within the objective.
    pub rule: &'static str,
    /// Phase entered.
    pub phase: AlertPhase,
}

/// The deterministic record of every alert transition, in tick order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AlertTimeline {
    /// Transitions in the order they happened (ties broken by objective
    /// then rule registration order — both deterministic).
    pub events: Vec<AlertEvent>,
}

impl AlertTimeline {
    /// Number of transitions into `phase`.
    pub fn count(&self, phase: AlertPhase) -> usize {
        self.events.iter().filter(|e| e.phase == phase).count()
    }

    /// Whether any transition was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merges `other`'s transitions into this timeline, keeping the
    /// result sorted by `t_us` with ties broken by input order (`self`'s
    /// events before `other`'s at the same tick). Both inputs are already
    /// tick-ordered, so the merge is a stable linear zip — the fleet uses
    /// it to fold per-shard timelines into one deterministic record.
    pub fn merge(&mut self, other: &AlertTimeline) {
        let mut out = Vec::with_capacity(self.events.len() + other.events.len());
        let mut rhs = other.events.iter().peekable();
        for e in self.events.drain(..) {
            while rhs.peek().is_some_and(|r| r.t_us < e.t_us) {
                out.push(*rhs.next().unwrap());
            }
            out.push(e);
        }
        out.extend(rhs.cloned());
        self.events = out;
    }

    /// Folds any number of timelines into one, in input order — see
    /// [`AlertTimeline::merge`].
    pub fn merged<'a>(timelines: impl IntoIterator<Item = &'a AlertTimeline>) -> AlertTimeline {
        let mut acc = AlertTimeline::default();
        for t in timelines {
            acc.merge(t);
        }
        acc
    }

    /// RFC-4180 CSV (CRLF line endings, like the metric exporters).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_us,objective,rule,phase\r\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{}\r\n",
                e.t_us,
                csv_field(e.objective),
                csv_field(e.rule),
                e.phase.label(),
            ));
        }
        out
    }

    /// JSON-lines, one object per transition.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{{\"t_us\":{},\"objective\":{},\"rule\":{},\"phase\":\"{}\"}}\n",
                e.t_us,
                json_str(e.objective),
                json_str(e.rule),
                e.phase.label(),
            ));
        }
        out
    }
}

/// Whole-run error-budget accounting for one objective.
///
/// Built from running series totals, so `bad` and `total` match the
/// scenario's own exact counts (EXP-15 cross-checks them against
/// `SupervisorReport` field by field).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetLedger {
    /// Objective name.
    pub objective: &'static str,
    /// Budget the objective was declared with.
    pub budget: f64,
    /// Bad units observed over the run (events, or µs for
    /// time-fraction objectives).
    pub bad: u64,
    /// Total units over the run (events, or elapsed µs).
    pub total: u64,
}

impl BudgetLedger {
    /// Observed bad fraction; 0.0 on an empty run (perfect-on-empty).
    pub fn bad_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bad as f64 / self.total as f64
        }
    }

    /// Fraction of the error budget spent (1.0 = exactly exhausted).
    pub fn spend(&self) -> f64 {
        self.bad_fraction() / self.budget
    }

    /// Whether the run stayed within its error budget.
    pub fn within_budget(&self) -> bool {
        self.spend() <= 1.0
    }
}

/// Per-rule alert state machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleState {
    Inactive,
    Pending { since_us: u64 },
    Firing,
}

/// Evaluates a set of objectives tick by tick on the simulated clock,
/// accumulating the [`AlertTimeline`].
#[derive(Debug, Clone, Default)]
pub struct SloEvaluator {
    objectives: Vec<Objective>,
    states: Vec<Vec<RuleState>>,
    timeline: AlertTimeline,
    last_tick_us: Option<u64>,
}

impl SloEvaluator {
    /// An evaluator with no objectives.
    pub fn new() -> SloEvaluator {
        SloEvaluator::default()
    }

    /// Adds an objective; its rules start `Inactive`.
    pub fn add(&mut self, objective: Objective) {
        self.states.push(vec![RuleState::Inactive; objective.rules.len()]);
        self.objectives.push(objective);
    }

    /// The registered objectives, in registration order.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Evaluates every rule at simulated time `t_us`. Out-of-order ticks
    /// clamp to the latest tick seen, keeping the timeline monotone.
    /// Each rule makes **at most one** transition per tick.
    pub fn tick(&mut self, t_us: u64) {
        let t = self.last_tick_us.map_or(t_us, |last| t_us.max(last));
        self.last_tick_us = Some(t);
        for (obj, states) in self.objectives.iter().zip(self.states.iter_mut()) {
            for (rule, state) in obj.rules.iter().zip(states.iter_mut()) {
                let cond = obj.burn_over(t, rule.long_us) >= rule.burn
                    && obj.burn_over(t, rule.short_us) >= rule.burn;
                let (next, phase) = match (*state, cond) {
                    (RuleState::Inactive, true) => {
                        (RuleState::Pending { since_us: t }, Some(AlertPhase::Pending))
                    }
                    (RuleState::Pending { since_us }, true) if t - since_us >= rule.pending_us => {
                        (RuleState::Firing, Some(AlertPhase::Firing))
                    }
                    (RuleState::Pending { .. }, false) | (RuleState::Firing, false) => {
                        (RuleState::Inactive, Some(AlertPhase::Resolved))
                    }
                    (s, _) => (s, None),
                };
                *state = next;
                if let Some(phase) = phase {
                    self.timeline.events.push(AlertEvent {
                        t_us: t,
                        objective: obj.name,
                        rule: rule.label,
                        phase,
                    });
                }
            }
        }
    }

    /// Number of rules currently firing.
    pub fn firing(&self) -> usize {
        self.states
            .iter()
            .flatten()
            .filter(|s| matches!(s, RuleState::Firing))
            .count()
    }

    /// The timeline accumulated so far.
    pub fn timeline(&self) -> &AlertTimeline {
        &self.timeline
    }

    /// Consumes the evaluator, returning its timeline.
    pub fn into_timeline(self) -> AlertTimeline {
        self.timeline
    }

    /// Whole-run ledgers for every objective, in registration order.
    pub fn ledgers(&self, end_us: u64) -> Vec<BudgetLedger> {
        self.objectives.iter().map(|o| o.ledger(end_us)).collect()
    }
}

// Re-exported here so `use vgbl_obs::slo::*` pulls the series types the
// objective constructors need.
#[allow(unused_imports)]
pub use crate::timeseries::SeriesSpec;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::SeriesSpec;

    fn rule(long_us: u64, short_us: u64, burn: f64, pending_us: u64) -> BurnRule {
        BurnRule { label: "fast", long_us, short_us, burn, pending_us }
    }

    #[test]
    fn slo_pending_firing_resolved_have_exact_timestamps() {
        let bad = Series::standalone(SeriesSpec::counter("bad", 1_000, 64));
        let total = Series::standalone(SeriesSpec::counter("total", 1_000, 64));
        let mut ev = SloEvaluator::new();
        ev.add(Objective::event_ratio(
            "shed_rate",
            0.10,
            bad.clone(),
            total.clone(),
            vec![rule(8_000, 2_000, 1.0, 2_000)],
        ));
        // Healthy traffic: burn 0.
        for t in [500u64, 1_500, 2_500] {
            total.record(t, 1);
            ev.tick(t);
        }
        assert!(ev.timeline().is_empty());
        // 100% bad traffic: burn 10 ≥ 1 → pending at 3_500.
        for t in [3_500u64, 4_500, 5_500, 6_500] {
            bad.record(t, 1);
            total.record(t, 1);
            ev.tick(t);
        }
        // Recovery: short window drains → resolved.
        for t in [9_500u64, 10_500, 11_500] {
            total.record(t, 1);
            ev.tick(t);
        }
        let tl = ev.timeline();
        let phases: Vec<(u64, AlertPhase)> = tl.events.iter().map(|e| (e.t_us, e.phase)).collect();
        assert_eq!(
            phases,
            vec![
                (3_500, AlertPhase::Pending),
                (5_500, AlertPhase::Firing), // first tick with ≥ 2_000 µs pending
                (9_500, AlertPhase::Resolved),
            ],
        );
        assert_eq!(ev.firing(), 0);
    }

    #[test]
    fn slo_short_spike_without_sustained_burn_never_fires() {
        let bad = Series::standalone(SeriesSpec::counter("bad", 1_000, 64));
        let total = Series::standalone(SeriesSpec::counter("total", 1_000, 64));
        let mut ev = SloEvaluator::new();
        ev.add(Objective::event_ratio(
            "spiky",
            0.10,
            bad.clone(),
            total.clone(),
            vec![rule(32_000, 1_000, 2.0, 0)],
        ));
        // A long healthy baseline, then one bad millisecond: the short
        // window condition is true but the long window stays below
        // threshold, so the AND never triggers.
        for t in 0..30u64 {
            total.record(t * 1_000 + 500, 10);
        }
        bad.record(30_500, 1);
        total.record(30_500, 1);
        ev.tick(30_900);
        assert!(ev.timeline().is_empty(), "multi-window AND suppresses blips");
    }

    #[test]
    fn slo_at_most_one_transition_per_tick_and_ticks_are_monotone() {
        let bad = Series::standalone(SeriesSpec::counter("bad", 1_000, 64));
        let total = Series::standalone(SeriesSpec::counter("total", 1_000, 64));
        let mut ev = SloEvaluator::new();
        ev.add(Objective::event_ratio(
            "strict",
            0.01,
            bad.clone(),
            total.clone(),
            vec![rule(4_000, 1_000, 1.0, 0)],
        ));
        bad.record(100, 1);
        total.record(100, 1);
        ev.tick(100);
        assert_eq!(ev.timeline().events.len(), 1, "inactive jumps to pending, not to firing");
        assert_eq!(ev.timeline().events[0].phase, AlertPhase::Pending);
        ev.tick(100);
        assert_eq!(ev.timeline().events.len(), 2);
        assert_eq!(ev.timeline().events[1].phase, AlertPhase::Firing);
        // An out-of-order tick clamps instead of rewinding the timeline.
        ev.tick(50);
        assert!(ev.timeline().events.iter().all(|e| e.t_us == 100));
    }

    #[test]
    fn slo_time_fraction_objective_reads_busy_time() {
        let stall = Series::standalone(SeriesSpec::counter("stall_us", 10_000, 64));
        let obj = Objective::time_fraction("rebuffer_ratio", 0.01, stall.clone(), Vec::new());
        stall.record(25_000, 5_000); // 5 ms of stall inside a 100 ms window
        assert!((obj.bad_fraction_over(99_999, 100_000) - 0.05).abs() < 1e-9);
        assert!((obj.burn_over(99_999, 100_000) - 5.0).abs() < 1e-9);
        assert_eq!(obj.bad_fraction_over(99_999, 0), 0.0, "zero window is 0, not NaN");
        let ledger = obj.ledger(100_000);
        assert_eq!((ledger.bad, ledger.total), (5_000, 100_000));
        assert!(!ledger.within_budget(), "5% stall against a 1% budget");
    }

    #[test]
    fn slo_ledger_is_exact_and_perfect_on_empty() {
        let bad = Series::standalone(SeriesSpec::counter("bad", 1_000, 2));
        let total = Series::standalone(SeriesSpec::counter("total", 1_000, 2));
        let obj =
            Objective::event_ratio("shed_rate", 0.005, bad.clone(), total.clone(), Vec::new());
        let empty = obj.ledger(0);
        assert_eq!(empty.bad_fraction(), 0.0);
        assert_eq!(empty.spend(), 0.0);
        assert!(empty.within_budget());
        // 2-bin ring, 10 bins of traffic: windows forget, the ledger must not.
        for bin in 0..10u64 {
            total.record(bin * 1_000, 1);
            if bin % 2 == 0 {
                bad.record(bin * 1_000, 1);
            }
        }
        let ledger = obj.ledger(10_000);
        assert_eq!((ledger.bad, ledger.total), (5, 10), "ledger survives ring rotation");
        assert!((ledger.bad_fraction() - 0.5).abs() < 1e-12);
        assert!((ledger.spend() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn slo_timeline_exports_are_deterministic() {
        let make = || {
            let bad = Series::standalone(SeriesSpec::counter("bad", 1_000, 64));
            let total = Series::standalone(SeriesSpec::counter("total", 1_000, 64));
            let mut ev = SloEvaluator::new();
            ev.add(Objective::event_ratio(
                "shed_rate",
                0.10,
                bad.clone(),
                total.clone(),
                vec![rule(4_000, 1_000, 1.0, 0)],
            ));
            for t in [500u64, 1_500, 2_500, 6_500] {
                bad.record(t, 1);
                total.record(t, 1);
                ev.tick(t);
            }
            (ev.timeline().to_csv(), ev.timeline().to_jsonl())
        };
        let (csv_a, jsonl_a) = make();
        let (csv_b, jsonl_b) = make();
        assert_eq!(csv_a, csv_b);
        assert_eq!(jsonl_a, jsonl_b);
        assert!(csv_a.starts_with("t_us,objective,rule,phase\r\n"));
        assert!(csv_a.contains("500,shed_rate,fast,pending\r\n"));
        assert!(jsonl_a.contains("\"phase\":\"firing\""));
    }

    #[test]
    fn slo_sre_presets_scale_with_the_simulated_minute() {
        let fast = BurnRule::sre_fast(1_000);
        assert_eq!((fast.long_us, fast.short_us), (60_000, 5_000));
        assert!((fast.burn - 14.4).abs() < 1e-12);
        let slow = BurnRule::sre_slow(1_000);
        assert_eq!((slow.long_us, slow.short_us), (360_000, 30_000));
        assert!((slow.burn - 6.0).abs() < 1e-12);
    }

    #[test]
    fn alert_timeline_merge_is_ordered_and_tie_stable() {
        let ev = |t_us, objective, phase| AlertEvent { t_us, objective, rule: "fast", phase };
        let a = AlertTimeline {
            events: vec![
                ev(10, "a", AlertPhase::Pending),
                ev(30, "a", AlertPhase::Firing),
                ev(50, "a", AlertPhase::Resolved),
            ],
        };
        let b = AlertTimeline {
            events: vec![ev(10, "b", AlertPhase::Pending), ev(40, "b", AlertPhase::Firing)],
        };
        let m = AlertTimeline::merged([&a, &b]);
        let order: Vec<(u64, &str)> = m.events.iter().map(|e| (e.t_us, e.objective)).collect();
        // Sorted by t_us; at the t=10 tie the first input wins.
        assert_eq!(order, vec![(10, "a"), (10, "b"), (30, "a"), (40, "b"), (50, "a")]);
        // Merging with an empty side is the identity in both directions.
        assert_eq!(AlertTimeline::merged([&a, &AlertTimeline::default()]), a);
        assert_eq!(AlertTimeline::merged([&AlertTimeline::default(), &a]), a);
    }
}
