//! Hierarchical spans over simulated clocks.
//!
//! A [`SpanRecorder`] belongs to exactly one logical session (one
//! streaming trace, one playback walk, one bot playthrough). It is not
//! shared across threads — each cohort worker records into its own
//! recorder — so the span order inside a trace is the deterministic
//! program order of that session. Cross-session determinism comes from
//! sorting traces by label at snapshot time.
//!
//! Timestamps are caller-supplied **microseconds of simulated time**:
//! the streaming simulation passes its simulated millisecond clock
//! (scaled by [`crate::us_from_ms`]), playback passes the media
//! timeline. Wall clocks never enter a trace, which is what makes two
//! identical runs byte-identical.

/// One recorded span: a named interval of simulated time at a depth in
/// the session's span tree (pre-order; a span's parent is the nearest
/// earlier span with a smaller depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Static span name (e.g. `"session"`, `"dwell"`, `"stall"`).
    pub name: &'static str,
    /// Free-form numeric argument (segment id, chunk id, …); 0 when the
    /// span carries none.
    pub arg: u64,
    /// Start of the interval in simulated microseconds.
    pub start_us: u64,
    /// End of the interval in simulated microseconds.
    pub end_us: u64,
    /// Nesting depth; the root span of a recorder has depth 0.
    pub depth: u32,
}

impl SpanRec {
    /// The span's duration in simulated microseconds (0 for a span that
    /// was closed by [`SpanRecorder::close_all`] before it ended, or an
    /// instantaneous event).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// The finished spans of one session, exported under a stable label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Session label; snapshots sort traces by it, so cohorts should use
    /// zero-padded indices (`"playback-0007"`) for a stable order.
    pub label: String,
    /// Spans in pre-order (parents before children).
    pub spans: Vec<SpanRec>,
}

/// Records the hierarchical spans of one session.
///
/// A disabled recorder (from [`crate::Obs::noop`]) ignores every call,
/// so instrumented code needs no `if` guards around span bookkeeping.
#[derive(Debug)]
pub struct SpanRecorder {
    enabled: bool,
    label: String,
    /// Indices into `spans` of the currently open spans, root first.
    open: Vec<usize>,
    spans: Vec<SpanRec>,
}

impl SpanRecorder {
    /// A recorder that drops everything — the `Noop` backend's handle.
    pub fn disabled() -> SpanRecorder {
        SpanRecorder { enabled: false, label: String::new(), open: Vec::new(), spans: Vec::new() }
    }

    /// A live recorder for the session labelled `label`.
    pub fn new(label: String) -> SpanRecorder {
        SpanRecorder { enabled: true, label, open: Vec::new(), spans: Vec::new() }
    }

    /// Whether this recorder keeps what it is given.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span named `name` at simulated time `t_us`.
    pub fn enter(&mut self, name: &'static str, t_us: u64) {
        self.enter_with(name, 0, t_us);
    }

    /// Opens a span carrying a numeric argument (segment id, chunk id …).
    pub fn enter_with(&mut self, name: &'static str, arg: u64, t_us: u64) {
        if !self.enabled {
            return;
        }
        let depth = self.open.len() as u32;
        self.open.push(self.spans.len());
        self.spans.push(SpanRec { name, arg, start_us: t_us, end_us: t_us, depth });
    }

    /// Closes the innermost open span at simulated time `t_us`. Calling
    /// this with no span open is a no-op (never a panic): instrumented
    /// fault paths must not be able to corrupt the trace.
    pub fn exit(&mut self, t_us: u64) {
        if !self.enabled {
            return;
        }
        if let Some(idx) = self.open.pop() {
            self.spans[idx].end_us = self.spans[idx].end_us.max(t_us);
        }
    }

    /// Records an instantaneous event (a zero-duration leaf span).
    pub fn event(&mut self, name: &'static str, arg: u64, t_us: u64) {
        self.enter_with(name, arg, t_us);
        self.exit(t_us);
    }

    /// Closes every span still open at `t_us` — the panic-safe flush the
    /// cohort servers use: a session that dies mid-span still exports a
    /// well-formed trace.
    pub fn close_all(&mut self, t_us: u64) {
        while !self.open.is_empty() {
            self.exit(t_us);
        }
    }

    /// Current nesting depth (number of open spans).
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Number of spans recorded so far (open spans included).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Consumes the recorder into its finished trace, closing any spans
    /// left open at the timestamp of the latest recorded moment.
    pub(crate) fn into_trace(mut self) -> Trace {
        let last = self.spans.iter().map(|s| s.end_us).max().unwrap_or(0);
        self.close_all(last);
        Trace { label: self.label, spans: self.spans }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_spans_nest_and_close_in_program_order() {
        let mut rec = SpanRecorder::new("s".into());
        rec.enter("session", 0);
        rec.enter_with("dwell", 3, 0);
        rec.event("stall", 7, 10);
        rec.exit(40);
        rec.enter_with("dwell", 1, 40);
        rec.exit(90);
        rec.exit(90);
        let trace = rec.into_trace();
        let shape: Vec<(&str, u64, u64, u64, u32)> = trace
            .spans
            .iter()
            .map(|s| (s.name, s.arg, s.start_us, s.end_us, s.depth))
            .collect();
        assert_eq!(
            shape,
            vec![
                ("session", 0, 0, 90, 0),
                ("dwell", 3, 0, 40, 1),
                ("stall", 7, 10, 10, 2),
                ("dwell", 1, 40, 90, 1),
            ]
        );
        assert_eq!(trace.spans[2].duration_us(), 0);
        assert_eq!(trace.spans[0].duration_us(), 90);
    }

    #[test]
    fn obs_unbalanced_exits_are_ignored() {
        let mut rec = SpanRecorder::new("s".into());
        rec.exit(5); // nothing open: no-op
        rec.enter("a", 0);
        rec.exit(3);
        rec.exit(9); // again nothing open
        assert_eq!(rec.into_trace().spans.len(), 1);
    }

    #[test]
    fn obs_close_all_flushes_open_spans() {
        let mut rec = SpanRecorder::new("s".into());
        rec.enter("session", 0);
        rec.enter("dwell", 5);
        // Simulated panic: the worker never exits its spans.
        rec.close_all(42);
        assert_eq!(rec.depth(), 0);
        let trace = rec.into_trace();
        assert_eq!(trace.spans[0].end_us, 42);
        assert_eq!(trace.spans[1].end_us, 42);
    }

    #[test]
    fn obs_disabled_recorder_records_nothing() {
        let mut rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.enter("a", 0);
        rec.event("b", 1, 2);
        rec.exit(3);
        assert!(rec.is_empty());
        assert_eq!(rec.len(), 0);
        assert_eq!(rec.depth(), 0);
    }

    #[test]
    fn obs_into_trace_closes_at_latest_moment() {
        let mut rec = SpanRecorder::new("s".into());
        rec.enter("session", 0);
        rec.event("e", 0, 77);
        let trace = rec.into_trace();
        assert_eq!(trace.spans[0].end_us, 77);
    }
}
