//! Fault injection for the save-game parser: `SaveGame::from_text` must
//! be total over arbitrary damage — truncation, bit flips, garbage — and
//! always answer with a typed `Err` or a valid parse, never a panic.
//! Wrong-content-hash saves must be caught by `verify`, not load silently
//! into the wrong game.

use proptest::prelude::*;
use vgbl_runtime::error::RuntimeError;
use vgbl_runtime::fixtures::{fix_the_computer, two_room_loop};
use vgbl_runtime::save::{content_hash, SaveGame};
use vgbl_runtime::{GameState, Inventory};

/// A representative save with every section populated.
fn sample_save() -> SaveGame {
    let graph = fix_the_computer();
    let mut state = GameState::new("market");
    state.visited.insert("classroom".into());
    state.score = -3;
    state.scenario_clock_ms = 1234;
    state.total_clock_ms = 9876;
    state.avatar = (30, -2);
    state.set_flag("diagnosed", true);
    state.examined.insert("computer".into());
    let mut inventory = Inventory::new();
    inventory.add("fan");
    inventory.add("coin");
    inventory.award("computer_medic");
    SaveGame::capture(&graph, &state, &inventory)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Truncated saves: every prefix of a valid save either parses (a
    // prefix can coincidentally be complete) or returns a typed error —
    // never panics.
    #[test]
    fn fault_truncated_save_never_panics(cut_fraction in 0.0f64..1.0) {
        let text = sample_save().to_text();
        let cut = (text.len() as f64 * cut_fraction) as usize;
        // Stay on a char boundary (the text is ASCII, but be safe).
        let cut = (0..=cut).rev().find(|&c| text.is_char_boundary(c)).unwrap_or(0);
        match SaveGame::from_text(&text[..cut]) {
            Ok(_) => {}
            Err(RuntimeError::CorruptSave(msg)) => prop_assert!(!msg.is_empty()),
            Err(other) => prop_assert!(false, "wrong error type: {other:?}"),
        }
    }

    // Bit-flipped saves: flip one bit anywhere in the serialised text;
    // parsing either fails with `CorruptSave` or yields a save that
    // differs in a recoverable way — and in no case panics.
    #[test]
    fn fault_bit_flipped_save_never_panics(
        byte_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let text = sample_save().to_text();
        let mut bytes = text.into_bytes();
        let idx = ((bytes.len() - 1) as f64 * byte_fraction) as usize;
        bytes[idx] ^= 1 << bit;
        // The damaged bytes may no longer be UTF-8; both layers must
        // reject gracefully.
        if let Ok(damaged) = String::from_utf8(bytes) {
            match SaveGame::from_text(&damaged) {
                Ok(_) => {}
                Err(RuntimeError::CorruptSave(_)) => {}
                Err(other) => prop_assert!(false, "wrong error type: {other:?}"),
            }
        }
        // else: not even a string — nothing to parse
    }

    // Arbitrary garbage: `from_text` is total over any string.
    #[test]
    fn fault_arbitrary_text_never_panics(text in "\\PC*") {
        match SaveGame::from_text(&text) {
            Ok(_) => {}
            Err(RuntimeError::CorruptSave(_)) => {}
            Err(other) => prop_assert!(false, "wrong error type: {other:?}"),
        }
    }

    // Arbitrary *byte* strings — not even valid UTF-8 — lossy-decoded
    // and fed to the parser: still total, still typed.
    #[test]
    fn fault_arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        match SaveGame::from_text(&text) {
            Ok(_) => {}
            Err(RuntimeError::CorruptSave(_)) => {}
            Err(other) => prop_assert!(false, "wrong error type: {other:?}"),
        }
    }

    // Byte damage *around a valid save*: splice arbitrary bytes into a
    // well-formed save at an arbitrary point, exercising the per-key
    // parsers with near-miss lines rather than pure noise.
    #[test]
    fn fault_spliced_bytes_never_panic(
        at_fraction in 0.0f64..1.0,
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = sample_save().to_text().into_bytes();
        let at = (bytes.len() as f64 * at_fraction) as usize;
        bytes.splice(at..at, junk);
        let text = String::from_utf8_lossy(&bytes);
        match SaveGame::from_text(&text) {
            Ok(_) => {}
            Err(RuntimeError::CorruptSave(_)) => {}
            Err(other) => prop_assert!(false, "wrong error type: {other:?}"),
        }
    }

    // Adversarial item counts load in constant space and time — a
    // hostile `item bomb 4294967295` line must never cost four billion
    // iterations or allocations.
    #[test]
    fn fault_huge_item_counts_load_in_constant_space(count in any::<u32>()) {
        let text = format!(
            "vgbl-save 1\ngame 00000000000000aa\nscenario start\nitem bomb {count}\n"
        );
        let save = SaveGame::from_text(&text).expect("well-formed text parses");
        prop_assert_eq!(save.inventory.count("bomb"), count);
    }

    // Checkpoint-only keys (dialogue, fired timers) round-trip for
    // arbitrary node ids, timer stamps, and space-containing NPC names.
    #[test]
    fn fault_checkpoint_keys_roundtrip(
        node in any::<u32>(),
        ms in any::<u64>(),
        npc in "[a-z]{1,8}( [a-z]{1,8}){0,2}",
    ) {
        let mut save = sample_save();
        save.dialogue = Some((npc.clone(), node));
        save.fired_timers.insert(ms);
        let loaded = SaveGame::from_text(&save.to_text()).expect("checkpoint text parses");
        prop_assert_eq!(loaded.dialogue, Some((npc, node)));
        prop_assert!(loaded.fired_timers.contains(&ms));
        prop_assert_eq!(loaded.state, save.state);
        prop_assert_eq!(loaded.inventory, save.inventory);
    }

    // Wrong-content-hash saves parse (the text is well-formed) but are
    // rejected by `verify` against the real graph with a typed error.
    #[test]
    fn fault_wrong_game_hash_is_rejected_by_verify(hash in any::<u64>()) {
        let mut save = sample_save();
        save.game_hash = hash;
        let text = save.to_text();
        let loaded = SaveGame::from_text(&text).expect("well-formed text parses");
        prop_assert_eq!(loaded.game_hash, hash);
        let graph = fix_the_computer();
        if hash == content_hash(&graph) {
            prop_assert!(loaded.verify(&graph).is_ok());
        } else {
            prop_assert!(matches!(
                loaded.verify(&graph),
                Err(RuntimeError::SaveMismatch(_))
            ));
        }
        // And it can never verify against a different game.
        prop_assert!(hash == content_hash(&two_room_loop())
            || loaded.verify(&two_room_loop()).is_err());
    }
}

/// Deterministic spot-checks of damage classes proptest may not hit.
#[test]
fn fault_specific_damage_is_typed() {
    let text = sample_save().to_text();
    // Cut mid-number.
    let cut = text.find("clock").unwrap() + 8;
    assert!(matches!(
        SaveGame::from_text(&text[..cut]),
        Ok(_) | Err(RuntimeError::CorruptSave(_))
    ));
    // Swap the version digit.
    let bad = text.replacen("vgbl-save 1", "vgbl-save 2", 1);
    assert!(matches!(
        SaveGame::from_text(&bad),
        Err(RuntimeError::CorruptSave(msg)) if msg.contains("version")
    ));
    // Corrupt the hash hex.
    let bad = text.replacen("game ", "game zz", 1);
    assert!(matches!(
        SaveGame::from_text(&bad),
        Err(RuntimeError::CorruptSave(msg)) if msg.contains("hash")
    ));
}
