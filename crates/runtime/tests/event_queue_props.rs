//! Properties of the deterministic event queue every simulator in this
//! repo runs on (supervisor slot stepping, fleet segment/fault/control
//! events, power-loss scheduling): pops come out sorted by the full
//! `(at, class, tie, seq)` key, equal keys fire strictly in push order
//! (FIFO), and an interleaved push/pop session matches a naive
//! sorted-vector oracle exactly.

use proptest::prelude::*;
use vgbl_runtime::EventQueue;

/// Keys drawn from tiny domains so equal-time, equal-class, equal-tie
/// collisions are common — the collisions are where ordering bugs live.
fn key() -> impl Strategy<Value = (u64, u8, u64)> {
    (0u64..4, 0u8..3, 0u64..3)
}

/// The oracle: a stable sort by `(at, class, tie)`. Stability is
/// exactly the FIFO-among-equal-keys contract, because the inputs are
/// enumerated in push order.
fn oracle_order(events: &[(u64, u8, u64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..events.len()).collect();
    idx.sort_by_key(|&i| events[i]);
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Draining the queue yields keys in non-decreasing `(at, class,
    // tie)` order, and payloads with fully-equal keys surface in the
    // order they were pushed.
    #[test]
    fn pops_are_sorted_and_fifo_among_equal_keys(events in prop::collection::vec(key(), 0..64)) {
        let mut q = EventQueue::new();
        for (i, &(at, class, tie)) in events.iter().enumerate() {
            q.push_keyed(at, class, tie, i);
        }
        let mut prev: Option<(u64, u8, u64, usize)> = None;
        let mut drained = 0usize;
        while let Some(t) = q.pop() {
            drained += 1;
            let cur = (t.at, t.class, t.tie, t.payload);
            if let Some(p) = prev {
                let pk = (p.0, p.1, p.2);
                let ck = (cur.0, cur.1, cur.2);
                prop_assert!(pk <= ck, "keys regressed: {p:?} then {cur:?}");
                if pk == ck {
                    prop_assert!(p.3 < cur.3, "equal keys must pop FIFO: {p:?} then {cur:?}");
                }
            }
            prev = Some(cur);
        }
        prop_assert_eq!(drained, events.len());
        prop_assert!(q.is_empty());
    }

    // The drained payload sequence is byte-for-byte the stable sort of
    // the pushed events — nothing about the heap's internal layout is
    // ever observable.
    #[test]
    fn drain_matches_stable_sort_oracle(events in prop::collection::vec(key(), 0..64)) {
        let mut q = EventQueue::new();
        for (i, &(at, class, tie)) in events.iter().enumerate() {
            q.push_keyed(at, class, tie, i);
        }
        let mut got = Vec::new();
        while let Some(t) = q.pop() {
            got.push(t.payload);
        }
        prop_assert_eq!(got, oracle_order(&events));
    }

    // Interleaving pushes and pops never breaks the contract: at every
    // pop, the queue agrees with a naive oracle that scans a plain
    // vector for the minimal `(at, class, tie, insertion)` entry.
    #[test]
    fn interleaved_push_pop_matches_naive_oracle(
        ops in prop::collection::vec(prop_oneof![key().prop_map(Some), Just(None)], 0..96),
    ) {
        let mut q = EventQueue::new();
        let mut oracle: Vec<(u64, u8, u64, u64, u64)> = Vec::new(); // (at, class, tie, seq, payload)
        let mut seq = 0u64;
        for op in ops {
            match op {
                Some((at, class, tie)) => {
                    q.push_keyed(at, class, tie, seq);
                    oracle.push((at, class, tie, seq, seq));
                    seq += 1;
                }
                None => {
                    let got = q.pop();
                    let want = oracle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| (e.0, e.1, e.2, e.3))
                        .map(|(i, _)| i);
                    match (got, want) {
                        (None, None) => {}
                        (Some(t), Some(i)) => {
                            let e = oracle.remove(i);
                            prop_assert_eq!(
                                (t.at, t.class, t.tie, t.payload),
                                (e.0, e.1, e.2, e.4),
                                "queue diverged from the oracle"
                            );
                        }
                        (g, w) => prop_assert!(false, "emptiness disagrees: {g:?} vs {w:?}"),
                    }
                }
            }
        }
        prop_assert_eq!(q.len(), oracle.len());
    }

    // `peek_at`/`peek` always agree with the next pop, and `push` is
    // exactly `push_keyed` with class 0 and tie 0.
    #[test]
    fn peek_agrees_with_pop(events in prop::collection::vec(0u64..8, 1..32)) {
        let mut q = EventQueue::new();
        for (i, &at) in events.iter().enumerate() {
            q.push(at, i);
        }
        while !q.is_empty() {
            let at = q.peek_at().unwrap();
            let (pat, &payload) = q.peek().unwrap();
            let t = q.pop().unwrap();
            prop_assert_eq!(at, t.at);
            prop_assert_eq!(pat, t.at);
            prop_assert_eq!(payload, t.payload);
            prop_assert_eq!((t.class, t.tie), (0, 0));
        }
    }
}
