//! Digest discrimination and round-trip stability for save games — the
//! durable store (PR 9) trusts `SaveGame::digest` as its checksum
//! identity, so two different saves colliding, or a digest drifting
//! across serialise→parse, would silently defeat corruption detection
//! and migration handoff verification alike.
//!
//! Two properties:
//! - **stability**: `digest(parse(to_text(s))) == digest(s)` — the
//!   digest is a fixed point of the round trip, so a checkpoint written
//!   by one shard and restored by another re-digests identically.
//! - **discrimination**: two saves differing in exactly one field
//!   (including the PR 4 checkpoint-only `dialogue` and `fired` keys)
//!   never share a digest.

use std::collections::BTreeSet;

use proptest::prelude::*;
use vgbl_runtime::save::SaveGame;
use vgbl_runtime::{GameState, Inventory};

/// Identifier-ish names; mutations below use a `zz` prefix outside this
/// alphabet's reach (these are 1–6 chars of `[a-y]`) so an injected
/// value can never collide with a generated one.
fn name() -> impl Strategy<Value = String> {
    "[a-y]{1,6}"
}

fn arb_save() -> impl Strategy<Value = SaveGame> {
    let state = (
        name(),
        -100i64..100,
        0u64..100_000,
        0u64..100_000,
        (-50i32..50, -50i32..50),
        prop::collection::btree_map(name(), any::<bool>(), 0..4),
        prop::collection::btree_set(name(), 0..4),
        prop::collection::btree_set(name(), 0..4),
        prop::option::of(name()),
    );
    let extras = (
        any::<u64>(),
        prop::collection::vec(name(), 0..4),
        prop::collection::vec(name(), 0..3),
        prop::option::of((name(), 0u32..50)),
        prop::collection::btree_set(0u64..1_000_000, 0..4),
    );
    (state, extras).prop_map(
        |(
            (scenario, score, sclk, tclk, avatar, flags, visited, examined, ended),
            (game_hash, items, rewards, dialogue, fired_timers),
        )| {
            let mut state = GameState::new(scenario);
            state.score = score;
            state.scenario_clock_ms = sclk;
            state.total_clock_ms = tclk;
            state.avatar = avatar;
            state.flags = flags;
            state.visited.extend(visited);
            state.examined = examined;
            state.ended = ended;
            let mut inventory = Inventory::new();
            for i in &items {
                inventory.add(i.clone());
            }
            for r in &rewards {
                inventory.award(r.clone());
            }
            SaveGame { game_hash, state, inventory, dialogue, fired_timers, trace: None }
        },
    )
}

/// Applies exactly one field-level mutation, chosen by `which`. Every
/// arm guarantees the mutated save differs from the original (injected
/// names use the `zz` prefix the generator cannot produce; numeric
/// tweaks are add-one-with-wraparound into in-range values).
fn mutate(save: &SaveGame, which: u8) -> SaveGame {
    let mut m = save.clone();
    match which % 13 {
        0 => m.game_hash ^= 1,
        1 => m.state.score += 1,
        2 => m.state.scenario_clock_ms += 1,
        3 => m.state.total_clock_ms += 1,
        4 => m.state.avatar.0 += 1,
        5 => {
            m.state.set_flag("zzflag", true);
        }
        6 => m.inventory.add("zzitem"),
        7 => {
            m.inventory.award("zzreward");
        }
        8 => {
            m.state.visited.insert("zzroom".into());
        }
        9 => {
            m.state.examined.insert("zzobject".into());
        }
        10 => {
            m.state.ended = match m.state.ended {
                Some(_) => None,
                None => Some("zzend".into()),
            }
        }
        // The two PR 4 checkpoint-only keys: an open dialogue and the
        // already-fired scenario timers.
        11 => {
            m.dialogue = match m.dialogue {
                Some(_) => None,
                None => Some(("zznpc".into(), 1)),
            }
        }
        _ => {
            m.fired_timers.insert(2_000_000);
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Serialise → parse → digest is the identity on digests, and the
    // round-tripped save is structurally equal too.
    #[test]
    fn digest_is_stable_across_serialise_parse(save in arb_save()) {
        let text = save.to_text();
        let back = SaveGame::from_text(&text).expect("own serialisation must parse");
        prop_assert_eq!(&back, &save, "round trip must be lossless");
        prop_assert_eq!(back.digest(), save.digest());
        // And a second round trip is bit-identical text.
        prop_assert_eq!(back.to_text(), text);
    }

    // One changed field — any field, including dialogue and fired
    // timers — always changes the digest.
    #[test]
    fn digest_separates_single_field_deltas(save in arb_save(), which in any::<u8>()) {
        let mutated = mutate(&save, which);
        prop_assert!(mutated != save, "mutation {} must change the save", which % 13);
        prop_assert!(
            mutated.digest() != save.digest(),
            "digest collision on single-field delta {}\n a: {}\n b: {}",
            which % 13,
            save.to_text(),
            mutated.to_text()
        );
    }

    // Digests are a pure function of content: independently-built equal
    // saves digest equally.
    #[test]
    fn equal_saves_digest_equally(save in arb_save()) {
        let twin = SaveGame {
            game_hash: save.game_hash,
            state: save.state.clone(),
            inventory: save.inventory.clone(),
            dialogue: save.dialogue.clone(),
            fired_timers: save.fired_timers.iter().copied().collect::<BTreeSet<u64>>(),
            // A trace context is identity metadata, never state: the twin
            // carrying one must digest identically to the bare original.
            trace: Some((save.game_hash ^ 0xABCD, 7)),
        };
        prop_assert_eq!(twin.digest(), save.digest());
    }
}
