//! EXP-20 property: journey stitching is **total** and **exclusive**.
//!
//! For any seeded chaos campaign — shard crashes, stalls, degraded
//! links, whole-fleet power losses, and seeded disk faults composed
//! over one horizon — every session the fleet accounts for appears in
//! exactly one stitched journey, every journey carries exactly one
//! terminal event that agrees with the session's fleet outcome, and
//! every span chain links parent to child across shard hops and cold
//! restarts. No fault composition may produce a session the journey
//! log cannot explain, or explains twice.

use proptest::prelude::*;
use vgbl_obs::{JourneyEventKind, TerminalState};
use vgbl_runtime::{run_chaos, ChaosConfig, SessionOutcome};
use vgbl_store::{DiskFaultPlan, StoreConfig};

fn chaos_configs() -> impl Strategy<Value = ChaosConfig> {
    (
        any::<u64>(),
        10usize..50,
        2u32..6,
        0u32..3, // crashes
        0u32..3, // stalls
        0u32..3, // degraded links
        0u32..3, // power losses
        2u32..7, // mean segments
        prop_oneof![Just(false), Just(true)],
    )
        .prop_map(
            |(seed, sessions, shards, crashes, stalls, links, power, segs, dirty)| ChaosConfig {
                seed,
                sessions,
                shards,
                arrival_interval_ms: 1.0 + (seed % 5) as f64,
                mean_segments: segs,
                crashes,
                stalls,
                degraded_links: links,
                power_losses: power,
                horizon_ms: 400.0,
                store: if dirty {
                    StoreConfig {
                        snapshot_every: 4,
                        dual_write: seed % 2 == 0,
                        faults: DiskFaultPlan::new(seed ^ 0xD15C)
                            .with_torn_writes(0.4)
                            .unwrap()
                            .with_bit_rot(0.3)
                            .unwrap()
                            .with_lost_flushes(0.2)
                            .unwrap()
                            .with_stale_reads(0.2)
                            .unwrap(),
                    }
                } else {
                    StoreConfig::default()
                },
            },
        )
}

fn agrees(terminal: TerminalState, outcome: &SessionOutcome) -> bool {
    matches!(
        (terminal, outcome),
        (TerminalState::Completed, SessionOutcome::Completed)
            | (TerminalState::Recovered, SessionOutcome::Recovered { .. })
            | (TerminalState::Failed, SessionOutcome::Failed { .. })
            | (TerminalState::Shed, SessionOutcome::Shed { .. })
            | (TerminalState::GaveUp, SessionOutcome::GaveUp { .. })
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Totality: one journey per offered session, exactly, sorted by id.
    // Exclusivity: one terminal event per journey, agreeing with the
    // fleet outcome — no session ends twice or not at all.
    #[test]
    fn stitching_is_total_and_exclusive(cfg in chaos_configs()) {
        let report = run_chaos(&cfg).unwrap();
        prop_assert!(report.all_pass(), "{:?}", report.first_failure());
        let fleet = &report.fleet;

        prop_assert_eq!(fleet.journeys.len(), fleet.sessions, "totality");
        for (expect, j) in fleet.journeys.iter().enumerate() {
            prop_assert_eq!(j.session, expect as u64, "exactly one journey per session, in order");

            let terminals = j.events.iter().filter(|e| e.kind.is_terminal()).count();
            prop_assert_eq!(terminals, 1, "session {} must end exactly once", j.session);
            prop_assert!(
                j.events.last().is_some_and(|e| e.kind.is_terminal()),
                "session {}'s terminal must be its last event",
                j.session
            );
            prop_assert!(j.terminal != TerminalState::Unresolved);
            prop_assert!(
                agrees(j.terminal, &fleet.outcomes[j.session as usize]),
                "session {}: journey says {:?}, fleet says {:?}",
                j.session, j.terminal, fleet.outcomes[j.session as usize]
            );

            // Stitched order is chronological and the span chain links
            // parent to child across every hop and cold restart.
            prop_assert!(j.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
            prop_assert!(j.chain_ok(), "session {}: broken span chain", j.session);
        }
    }

    // Boundary events pair up: every migration handoff leaves one shard
    // and lands on another, and every cold resume follows a power loss
    // the same session witnessed.
    #[test]
    fn boundary_events_pair_up(cfg in chaos_configs()) {
        let report = run_chaos(&cfg).unwrap();
        for j in &report.fleet.journeys {
            let outs = j.events.iter().filter(
                |e| matches!(e.kind, JourneyEventKind::MigratedOut { .. })).count();
            let ins = j.events.iter().filter(
                |e| matches!(e.kind, JourneyEventKind::MigratedIn { .. })).count();
            prop_assert_eq!(outs, ins, "session {}: unmatched handoff", j.session);
            for (i, e) in j.events.iter().enumerate() {
                if let JourneyEventKind::ColdResume { .. } = e.kind {
                    prop_assert!(
                        j.events[..i].iter().any(|p| matches!(
                            p.kind, JourneyEventKind::PowerLoss) && p.at_ms == e.at_ms),
                        "session {}: cold resume without its power loss",
                        j.session
                    );
                }
            }
        }
    }
}
