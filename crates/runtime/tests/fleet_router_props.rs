//! Properties of the fleet's consistent-hash router (EXP-17's routing
//! layer): determinism across independently-built rings, minimal
//! (~K/N) remapping when shards join or leave, and bounded imbalance
//! for any seed once there are enough virtual nodes.

use proptest::prelude::*;
use vgbl_runtime::FleetRouter;

const KEYS: u64 = 2_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Two routers built from the same (seed, vnodes, shard set) agree on
    // every key — the ring is a pure function of its inputs, so any
    // replica of the control plane routes identically.
    #[test]
    fn identically_built_routers_agree(
        seed in any::<u64>(),
        vnodes in 8u32..48,
        shards in 2u32..9,
    ) {
        let a = FleetRouter::new(seed, vnodes, shards).unwrap();
        let b = FleetRouter::new(seed, vnodes, shards).unwrap();
        for k in 0..KEYS {
            prop_assert_eq!(a.route(k), b.route(k));
        }
    }

    // Removing a shard re-homes exactly the keys it owned: every other
    // key keeps its shard (the consistent-hashing contract — ~K/N keys
    // move, not a full reshuffle), and no key still routes to the
    // removed shard.
    #[test]
    fn removal_remaps_only_the_lost_shards_keys(
        seed in any::<u64>(),
        vnodes in 8u32..48,
        shards in 2u32..9,
        victim_pick in any::<u64>(),
    ) {
        let full = FleetRouter::new(seed, vnodes, shards).unwrap();
        let victim = (victim_pick % u64::from(shards)) as u32;
        let mut pruned = full.clone();
        pruned.remove_shard(victim);
        let mut moved = 0u64;
        for k in 0..KEYS {
            let before = full.route(k).unwrap();
            let after = pruned.route(k).unwrap();
            prop_assert_ne!(after, victim);
            if before == victim {
                moved += 1;
            } else {
                prop_assert_eq!(before, after);
            }
        }
        // The victim owned roughly K/N keys; everything else stayed.
        prop_assert!(moved < KEYS, "removal cannot re-home every key");
    }

    // Adding a shard only *steals* keys for the newcomer: every key
    // either keeps its old shard or routes to the new one.
    #[test]
    fn addition_only_steals_for_the_new_shard(
        seed in any::<u64>(),
        vnodes in 8u32..48,
        shards in 2u32..9,
    ) {
        let old = FleetRouter::new(seed, vnodes, shards).unwrap();
        let mut grown = old.clone();
        grown.add_shard(shards);
        let mut stolen = 0u64;
        for k in 0..KEYS {
            let before = old.route(k).unwrap();
            let after = grown.route(k).unwrap();
            if after == shards {
                stolen += 1;
            } else {
                prop_assert_eq!(before, after);
            }
        }
        prop_assert!(stolen < KEYS, "a new shard cannot steal every key");
    }

    // Growing a ring then removing the newcomer restores the original
    // routing bit-for-bit — membership, not history, decides the ring.
    #[test]
    fn remove_undoes_add_exactly(
        seed in any::<u64>(),
        vnodes in 8u32..48,
        shards in 2u32..9,
    ) {
        let original = FleetRouter::new(seed, vnodes, shards).unwrap();
        let mut churned = original.clone();
        churned.add_shard(shards);
        churned.remove_shard(shards);
        for k in 0..KEYS {
            prop_assert_eq!(original.route(k), churned.route(k));
        }
    }

    // With enough virtual nodes the load spread is bounded for any
    // seed: every shard owns keys, and no shard owns more than a small
    // multiple of its fair share.
    #[test]
    fn vnode_balance_is_bounded(
        seed in any::<u64>(),
        shards in 2u32..9,
    ) {
        let vnodes = 64u32;
        let router = FleetRouter::new(seed, vnodes, shards).unwrap();
        let mut counts = vec![0u64; shards as usize];
        for k in 0..KEYS {
            counts[router.route(k).unwrap() as usize] += 1;
        }
        let fair = KEYS / u64::from(shards);
        for (s, &c) in counts.iter().enumerate() {
            prop_assert!(c > 0, "shard {} owns nothing: {:?}", s, counts);
            prop_assert!(
                c < fair * 4,
                "shard {} owns {} of {} (fair {}): {:?}",
                s, c, KEYS, fair, counts
            );
        }
    }
}
