//! The cooperative executor's one promise: scheduling is invisible.
//!
//! `run_cohort` / `run_playback_cohort*` now step their sessions on the
//! deterministic executor (seeded run queue, yield-at-fetch state
//! machines, per-tick batched prewarm), while the original
//! thread-per-session implementations survive as `*_threaded` reference
//! paths. These properties pin the two byte-identical on the same
//! inputs: per-session outcomes, frame/switch accounting, learning
//! aggregates, and the full obs exports (traces, series, counters) —
//! including cohorts with a panicking bot, whose failure must stay
//! isolated to its own row on both paths.
//!
//! Two accounting differences by design: the executor prewarms a
//! tick's GOPs through the shared cache before sessions serve, so cache
//! *lookup* counts (hits) differ while *decode* work does not (with a
//! full-capacity cache both paths decode every distinct GOP exactly
//! once, so `frames_decoded` is compared too; reuse hit counts are
//! not), and the executor exports its own scheduling telemetry
//! (`executor.*` run-queue/fetch-batch metrics) that a
//! thread-per-session path cannot have, so those rows are projected
//! out before the exports are compared.

use std::panic;
use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;
use vgbl_media::cache::GopCache;
use vgbl_media::codec::{EncodeConfig, EncodedVideo, Encoder};
use vgbl_media::color::Rgb;
use vgbl_media::synth::{FootageSpec, ShotSpec};
use vgbl_media::timeline::FrameRate;
use vgbl_media::SegmentTable;
use vgbl_obs::Obs;
use vgbl_runtime::bot::{Bot, GuidedBot, RandomBot};
use vgbl_runtime::engine::{GameSession, SessionConfig};
use vgbl_runtime::fixtures::{fix_the_computer, FRAME};
use vgbl_runtime::input::InputEvent;
use vgbl_runtime::{
    run_cohort, run_cohort_threaded, run_playback_cohort_observed,
    run_playback_cohort_observed_threaded, PlaybackCohortReport, Result, RuntimeError,
};

/// A bot that panics the moment it is asked for input.
struct PanicBot;
impl Bot for PanicBot {
    fn next_input(&mut self, _session: &GameSession) -> Result<Option<InputEvent>> {
        panic!("deliberately broken bot");
    }
}

/// A bot whose session errors (typed failure, not a panic).
struct ErrBot;
impl Bot for ErrBot {
    fn next_input(&mut self, _session: &GameSession) -> Result<Option<InputEvent>> {
        Err(RuntimeError::UnknownScenario("err-bot".into()))
    }
}

/// A three-segment encoded clip: `shot_len` frames per shot, GOP 6.
fn clip(shot_len: usize, noise_seed: u64) -> (Arc<EncodedVideo>, SegmentTable) {
    let footage = FootageSpec {
        width: 32,
        height: 24,
        rate: FrameRate::FPS30,
        shots: vec![
            ShotSpec::plain(shot_len, Rgb::new(210, 40, 40)),
            ShotSpec::plain(shot_len, Rgb::new(40, 210, 40)),
            ShotSpec::plain(shot_len, Rgb::new(40, 40, 210)),
        ],
        noise_seed,
    }
    .render()
    .unwrap();
    let video = Encoder::new(EncodeConfig { gop: 6, ..Default::default() })
        .encode(&footage.frames, footage.rate)
        .unwrap();
    let total = shot_len * 3;
    let table = SegmentTable::from_cuts(total, &[shot_len, shot_len * 2]).unwrap();
    (Arc::new(video), table)
}

/// Drops the executor's own scheduling telemetry (`executor.*` — run
/// queue depth, fetch batch sizes) from a text export: the threaded
/// reference has no run queue or fetch batches by definition, so those
/// rows are scheduler-specific the same way cache reuse counts are.
fn strip_executor_metrics(export: &str) -> String {
    export
        .lines()
        .filter(|l| !l.contains("executor."))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Everything a playback run produced, exports included, with the
/// scheduling-sensitive reuse counters and the executor's own
/// telemetry projected out.
fn playback_fingerprint(
    report: &PlaybackCohortReport,
    obs: &Obs,
) -> (Vec<String>, usize, usize, usize, usize, usize, String, String, String, String) {
    let snap = obs.snapshot();
    (
        report.outcomes.iter().map(|o| format!("{o:?}")).collect(),
        report.sessions,
        report.failed,
        report.frames_served,
        report.frames_decoded,
        report.switches,
        strip_executor_metrics(&snap.to_table()),
        strip_executor_metrics(&snap.metrics_csv()),
        snap.spans_csv(),
        strip_executor_metrics(&snap.to_jsonl()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The executor-scheduled playback cohort is byte-identical to the
    // thread-per-session reference on the same inputs: every outcome
    // row, every aggregate, and all four obs export formats. The caches
    // are fresh and full-capacity on both sides, so decode totals match
    // even though the executor front-loads them into batch prewarms.
    #[test]
    fn playback_cohort_matches_threaded_reference(
        n_sessions in 1usize..10,
        steps in 0usize..32,
        workers in 1usize..5,
        shot_len in 6usize..16,
        noise_seed in any::<u64>(),
    ) {
        let (video, table) = clip(shot_len, noise_seed);
        let obs_exec = Obs::recording();
        let exec = run_playback_cohort_observed(
            video.clone(),
            &table,
            Arc::new(GopCache::new(64)),
            n_sessions,
            workers,
            steps,
            &obs_exec,
        )
        .unwrap();
        let obs_thr = Obs::recording();
        let threaded = run_playback_cohort_observed_threaded(
            video,
            &table,
            Arc::new(GopCache::new(64)),
            n_sessions,
            workers,
            steps,
            &obs_thr,
        )
        .unwrap();
        prop_assert_eq!(
            playback_fingerprint(&exec, &obs_exec),
            playback_fingerprint(&threaded, &obs_thr)
        );
    }

    // Bot cohorts agree row-for-row with the reference, including a
    // session that panics mid-cohort and one that errors: both paths
    // isolate them to their own `Failed` rows and aggregate the rest
    // identically (learning report, total steps, outcome order).
    #[test]
    fn bot_cohort_matches_threaded_reference(
        n_sessions in 1usize..24,
        workers in 1usize..5,
        panic_at in 0usize..24,
        err_at in 0usize..24,
        max_steps in 10usize..80,
    ) {
        let factory = move |i: usize| -> Box<dyn Bot> {
            if i == panic_at {
                Box::new(PanicBot)
            } else if i == err_at {
                Box::new(ErrBot)
            } else if i.is_multiple_of(3) {
                Box::new(RandomBot::new(rand::rngs::StdRng::seed_from_u64(i as u64)))
            } else {
                Box::new(GuidedBot::new())
            }
        };
        let config = SessionConfig::for_frame(FRAME.0, FRAME.1);
        // Keep the deliberate panics from spamming the test output.
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let exec = run_cohort(
            Arc::new(fix_the_computer()),
            config.clone(),
            n_sessions,
            workers,
            &factory,
            max_steps,
            50,
        );
        let threaded = run_cohort_threaded(
            Arc::new(fix_the_computer()),
            config,
            n_sessions,
            workers,
            &factory,
            max_steps,
            50,
        );
        panic::set_hook(prev);
        prop_assert_eq!(
            format!("{:?}", exec.unwrap()),
            format!("{:?}", threaded.unwrap())
        );
    }
}
