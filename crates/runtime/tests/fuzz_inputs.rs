//! Failure injection: the engine must be total over *arbitrary* input
//! sequences — no panics, no invariant violations — because real players
//! (and buggy front-ends) will produce exactly that.

use std::sync::Arc;

use proptest::prelude::*;
use vgbl_runtime::engine::{GameSession, SessionConfig};
use vgbl_runtime::error::RuntimeError;
use vgbl_runtime::fixtures::{fix_the_computer, FRAME};
use vgbl_runtime::input::InputEvent;
use vgbl_scene::Point;

fn any_input() -> impl Strategy<Value = InputEvent> {
    prop_oneof![
        (-100i32..200, -100i32..200).prop_map(|(x, y)| InputEvent::Click(Point::new(x, y))),
        (-100i32..200, -100i32..200, -100i32..200, -100i32..200)
            .prop_map(|(a, b, c, d)| InputEvent::drag(a, b, c, d)),
        ("[a-z]{1,8}", -10i32..80, -10i32..60)
            .prop_map(|(item, x, y)| InputEvent::apply(item, x, y)),
        proptest::char::any().prop_map(InputEvent::Key),
        (0usize..10).prop_map(InputEvent::Choose),
        (0u64..100_000).prop_map(InputEvent::Tick),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_is_total_over_arbitrary_inputs(
        inputs in proptest::collection::vec(any_input(), 0..120),
    ) {
        let (mut session, _) = GameSession::new(
            Arc::new(fix_the_computer()),
            SessionConfig::for_frame(FRAME.0, FRAME.1),
        )
        .unwrap();
        for input in inputs {
            match session.handle(input) {
                Ok(feedback) => prop_assert!(!feedback.is_empty()),
                Err(RuntimeError::GameOver { .. }) => break,
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
            // Invariants that must hold after every input:
            // the current scenario always resolves,
            let _ = session.current_scenario();
            // visited always contains the current scenario,
            prop_assert!(session
                .state()
                .visited
                .contains(&session.state().current_scenario));
            // clocks are consistent,
            prop_assert!(session.state().scenario_clock_ms <= session.state().total_clock_ms);
            // and dialogue (when open) points at a real node.
            if let Some(d) = session.dialogue() {
                prop_assert!(session
                    .graph()
                    .npc(&d.npc)
                    .and_then(|n| n.dialogue.get(d.node))
                    .is_some());
            }
        }
    }

    #[test]
    fn save_restore_at_any_point_preserves_state(
        inputs in proptest::collection::vec(any_input(), 0..40),
    ) {
        use vgbl_runtime::save::SaveGame;
        let graph = Arc::new(fix_the_computer());
        let config = SessionConfig::for_frame(FRAME.0, FRAME.1);
        let (mut session, _) = GameSession::new(graph.clone(), config.clone()).unwrap();
        for input in inputs {
            if session.handle(input).is_err() {
                break;
            }
        }
        let save = SaveGame::capture(&graph, session.state(), session.inventory());
        let loaded = SaveGame::from_text(&save.to_text()).unwrap();
        loaded.verify(&graph).unwrap();
        prop_assert_eq!(&loaded.state, session.state());
        prop_assert_eq!(&loaded.inventory, session.inventory());
    }
}
