//! Checkpoint → restore → replay round-trips: after restoring from a
//! [`GameSession::checkpoint`], feeding the same post-checkpoint input
//! tail must reproduce the original session's log tail bit-identically,
//! with the engine transients a plain save drops (the open dialogue,
//! the fired timers) surviving the hop. This is the invariant the
//! supervisor's crash recovery (EXP-14) leans on.

use std::sync::Arc;

use vgbl_runtime::engine::{GameSession, SessionConfig};
use vgbl_runtime::feedback::Feedback;
use vgbl_runtime::fixtures::{fix_the_computer, two_room_loop, FRAME};
use vgbl_runtime::input::InputEvent;
use vgbl_runtime::save::SaveGame;
use vgbl_scene::SceneGraph;
use vgbl_script::{Action, EventKind, Trigger};

fn config() -> SessionConfig {
    SessionConfig::for_frame(FRAME.0, FRAME.1)
}

fn drive(session: &mut GameSession, inputs: &[InputEvent]) {
    for input in inputs {
        session
            .handle(input.clone())
            .expect("scripted input is valid");
    }
}

/// Restores through the *text* round-trip — serialise, parse, verify,
/// restore — so the test covers the same path a persisted checkpoint
/// store would take, not just the in-memory clone.
fn reload(graph: &Arc<SceneGraph>, ckpt: &SaveGame) -> GameSession {
    let parsed = SaveGame::from_text(&ckpt.to_text()).expect("checkpoint text parses");
    GameSession::restore_checkpoint(graph.clone(), config(), &parsed)
        .expect("checkpoint restores")
}

#[test]
fn mid_inventory_checkpoint_replays_a_bit_identical_log_tail() {
    let graph = Arc::new(fix_the_computer());
    let (mut original, _) = GameSession::new(graph.clone(), config()).unwrap();
    let prefix = [
        InputEvent::click(25, 20), // diagnose the computer
        InputEvent::Tick(200),
        InputEvent::click(42, 4), // to the market
        InputEvent::Tick(200),
        InputEvent::drag(12, 12, 60, 20), // take the fan
        InputEvent::Tick(200),
    ];
    drive(&mut original, &prefix);
    assert_eq!(original.inventory().count("fan"), 1);

    let ckpt = original.checkpoint();
    let ckpt_len = original.log().events().len();

    let mut restored = reload(&graph, &ckpt);
    assert_eq!(restored.state(), original.state());
    assert_eq!(restored.inventory(), original.inventory());
    assert!(restored.log().events().is_empty());

    let tail = [
        InputEvent::click(42, 4), // back to the classroom
        InputEvent::Tick(200),
        InputEvent::apply("fan", 25, 20), // install the fan
    ];
    drive(&mut original, &tail);
    drive(&mut restored, &tail);

    // The restored session's entire log equals the original's post-
    // checkpoint tail, event for event, timestamp for timestamp.
    assert_eq!(restored.log().events(), &original.log().events()[ckpt_len..]);
    assert_eq!(original.state().ended.as_deref(), Some("fixed"));
    assert_eq!(restored.state(), original.state());
    assert_eq!(restored.inventory(), original.inventory());
    assert!(restored.inventory().has_reward("computer_medic"));
}

#[test]
fn mid_dialogue_checkpoint_resumes_the_conversation() {
    let graph = Arc::new(fix_the_computer());
    let (mut original, _) = GameSession::new(graph.clone(), config()).unwrap();
    drive(&mut original, &[InputEvent::Tick(100), InputEvent::click(8, 18)]);
    assert!(original.dialogue().is_some(), "clicking the teacher opens dialogue");

    let ckpt = original.checkpoint();
    assert_eq!(
        ckpt.dialogue.as_ref().map(|(npc, node)| (npc.as_str(), *node)),
        Some(("teacher", 0))
    );
    let ckpt_len = original.log().events().len();

    // A plain restore drops the open conversation — it is an engine
    // transient, deliberately outside the player-facing save format …
    let plain = GameSession::restore(
        graph.clone(),
        config(),
        ckpt.state.clone(),
        ckpt.inventory.clone(),
    )
    .unwrap();
    assert!(plain.dialogue().is_none());

    // … while the checkpoint restore resumes mid-sentence.
    let mut restored = reload(&graph, &ckpt);
    assert_eq!(
        restored.dialogue().map(|d| (d.npc.as_str(), d.node)),
        Some(("teacher", 0))
    );

    let tail = [InputEvent::Choose(0), InputEvent::Choose(0)];
    drive(&mut original, &tail);
    drive(&mut restored, &tail);
    assert!(original.dialogue().is_none(), "two choices walk off the tree");
    assert!(restored.dialogue().is_none());
    assert_eq!(restored.log().events(), &original.log().events()[ckpt_len..]);
    assert_eq!(restored.state(), original.state());
}

#[test]
fn cross_shard_migration_round_trips_bit_identically() {
    let graph = Arc::new(fix_the_computer());
    // The un-migrated control: one session plays start to finish.
    let (mut control, _) = GameSession::new(graph.clone(), config()).unwrap();
    let prefix = [
        InputEvent::click(25, 20), // diagnose the computer
        InputEvent::Tick(200),
        InputEvent::click(42, 4), // to the market
        InputEvent::Tick(200),
        InputEvent::drag(12, 12, 60, 20), // take the fan
        InputEvent::Tick(200),
    ];
    let tail = [
        InputEvent::click(42, 4), // back to the classroom
        InputEvent::Tick(200),
        InputEvent::apply("fan", 25, 20), // install the fan
    ];
    drive(&mut control, &prefix);

    // "Shard A" plays the same prefix, then drains at the boundary: its
    // last act is the checkpoint it hands away.
    let (mut shard_a, _) = GameSession::new(graph.clone(), config()).unwrap();
    drive(&mut shard_a, &prefix);
    let handoff = shard_a.checkpoint();
    let digest = handoff.digest();
    drop(shard_a);

    // "Shard B" restores through the persisted text form — the same
    // wire a real handoff would cross — and the digest check the fleet
    // performs holds: restore → re-checkpoint reproduces the exact
    // canonical bytes.
    let mut shard_b = reload(&graph, &handoff);
    assert_eq!(shard_b.checkpoint().digest(), digest);
    assert_eq!(shard_b.checkpoint().to_text(), handoff.to_text());

    // Same post-migration inputs on both sides: the migrated session's
    // entire log is bit-identical to the control's post-checkpoint
    // tail, and both finish in the same terminal state.
    let ckpt_len = control.log().events().len();
    drive(&mut control, &tail);
    drive(&mut shard_b, &tail);
    assert_eq!(shard_b.log().events(), &control.log().events()[ckpt_len..]);
    assert_eq!(control.state().ended.as_deref(), Some("fixed"));
    assert_eq!(shard_b.state(), control.state());
    assert_eq!(shard_b.inventory(), control.inventory());
}

#[test]
fn fleet_crash_migration_matches_checkpoint_replay() {
    use vgbl_runtime::{
        run_fleet, ArrivalPlan, Bot, FleetConfig, FleetWorkload, GuidedBot, MigrationReason,
        ShardFault, ShardFaultKind, SupervisorConfig,
    };

    // The same invariant end-to-end through the public fleet API: kill
    // a shard mid-stampede and every migrated session must replay its
    // pre-migration checkpoint byte-identically on the new shard.
    let cfg = FleetConfig {
        shards: 2,
        vnodes: 32,
        shard: SupervisorConfig {
            queue_capacity: 16,
            queue_deadline_ms: 1e9,
            slots: 1,
            step_ms: 50.0,
            checkpoint_every: 3,
            ..SupervisorConfig::default()
        },
        faults: vec![ShardFault { at_ms: 400.0, shard: 0, kind: ShardFaultKind::Crash }],
        ..FleetConfig::default()
    };
    let factory = |_: usize, _: u32| -> Box<dyn Bot> { Box::new(GuidedBot::new()) };
    let workload = FleetWorkload::Engine {
        graph: Arc::new(fix_the_computer()),
        config: config(),
        factory: &factory,
    };
    let arrivals = ArrivalPlan::new(5, 1.0).unwrap();
    let report = run_fleet(&workload, &cfg, 10, &arrivals).unwrap();
    assert!(report.accounts_exactly());
    assert!(!report.migrations.is_empty(), "a crash mid-stampede must migrate someone");
    for m in &report.migrations {
        assert_eq!(m.reason, MigrationReason::Crash);
        assert_eq!(m.handoff_ok, Some(true), "handoff digest mismatch: {m:?}");
        assert_ne!(m.verified, Some(false), "replay diverged: {m:?}");
    }
    assert!(report.migrations.iter().any(|m| m.verified == Some(true)));
}

#[test]
fn fired_timers_survive_a_checkpoint_and_do_not_refire() {
    let mut g = two_room_loop();
    g.scenario_by_name_mut("a")
        .unwrap()
        .entry_triggers
        .push(Trigger::unconditional(
            EventKind::Timer(1000),
            vec![Action::ShowText("hint: press the button".into())],
        ));
    let graph = Arc::new(g);
    let (mut original, _) = GameSession::new(graph.clone(), config()).unwrap();
    let fb = original.handle(InputEvent::Tick(1200)).unwrap();
    assert!(
        fb.iter().any(|f| matches!(f, Feedback::Text(t) if t.contains("hint"))),
        "the timer fires once its threshold passes"
    );

    let ckpt = original.checkpoint();
    assert!(ckpt.fired_timers.contains(&1000));
    // The fired set round-trips through the persisted text form.
    let parsed = SaveGame::from_text(&ckpt.to_text()).unwrap();
    assert!(parsed.fired_timers.contains(&1000));

    let ckpt_len = original.log().events().len();
    let mut restored = reload(&graph, &ckpt);

    // Replaying the same post-checkpoint tail keeps the two sessions in
    // lockstep: the fired timer stays silent on both, and re-entering
    // the scenario re-arms it on both — identical feedback, identical
    // log tail.
    let tail = [
        InputEvent::Tick(5000),  // no re-fire: threshold already crossed
        InputEvent::click(2, 2), // to b
        InputEvent::click(2, 2), // back to a (re-arms the timer)
        InputEvent::Tick(1500),  // fires again after re-entry
    ];
    for input in &tail {
        let a = original.handle(input.clone()).unwrap();
        let b = restored.handle(input.clone()).unwrap();
        assert_eq!(a, b, "restored session diverged on {input:?}");
    }
    assert!(
        !matches!(
            original.handle(InputEvent::Tick(9000)).unwrap().as_slice(),
            [Feedback::Text(_), ..]
        ),
        "the re-armed timer fires once per entry, not per tick"
    );
    drive(&mut restored, &[InputEvent::Tick(9000)]);
    assert_eq!(restored.log().events(), &original.log().events()[ckpt_len..]);
    assert_eq!(restored.state(), original.state());
}
