//! Player input.
//!
//! §3.1: "mouse and keyboard are responsible for delivering users'
//! interactions … Players can examine and move objects in a scenario by
//! clicking or holding their mouse keys." The engine translates these raw
//! device events into the scene model's [`vgbl_script::EventKind`]s via
//! hit-testing.

use vgbl_scene::Point;

/// A raw input event from the player's devices (or a bot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputEvent {
    /// A left-click at frame coordinates — examine the object there, or
    /// walk the avatar there if the click hits nothing.
    Click(Point),
    /// A press-drag-release from one point to another — dragging an item
    /// into the inventory window collects it.
    Drag {
        /// Where the drag started (must hit an object).
        from: Point,
        /// Where the drag ended.
        to: Point,
    },
    /// Using an inventory item on a point of the scene ("use them in an
    /// adequate scene to trigger events", §3.1).
    ApplyItem {
        /// The inventory item's name.
        item: String,
        /// Where it is applied.
        at: Point,
    },
    /// A key press (with an object in focus when one is under the avatar).
    Key(char),
    /// Picking a response in an active NPC conversation (index into the
    /// last [`crate::feedback::Feedback::DialogueChoices`]).
    Choose(usize),
    /// Wall-clock advance of `ms` milliseconds (drives timer triggers and
    /// the playback clock).
    Tick(u64),
}

impl InputEvent {
    /// Convenience constructor for clicks.
    pub fn click(x: i32, y: i32) -> InputEvent {
        InputEvent::Click(Point::new(x, y))
    }

    /// Convenience constructor for drags.
    pub fn drag(fx: i32, fy: i32, tx: i32, ty: i32) -> InputEvent {
        InputEvent::Drag { from: Point::new(fx, fy), to: Point::new(tx, ty) }
    }

    /// Convenience constructor for item application.
    pub fn apply(item: impl Into<String>, x: i32, y: i32) -> InputEvent {
        InputEvent::ApplyItem { item: item.into(), at: Point::new(x, y) }
    }

    /// Short tag for analytics ("click", "drag", "apply", "key", "tick").
    pub fn tag(&self) -> &'static str {
        match self {
            InputEvent::Click(_) => "click",
            InputEvent::Drag { .. } => "drag",
            InputEvent::ApplyItem { .. } => "apply",
            InputEvent::Key(_) => "key",
            InputEvent::Choose(_) => "choose",
            InputEvent::Tick(_) => "tick",
        }
    }

    /// Whether this event counts as a *decision* for analytics (ticks do
    /// not — they are just time passing).
    pub fn is_decision(&self) -> bool {
        !matches!(self, InputEvent::Tick(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(InputEvent::click(3, 4), InputEvent::Click(Point::new(3, 4)));
        assert_eq!(
            InputEvent::drag(1, 2, 3, 4),
            InputEvent::Drag { from: Point::new(1, 2), to: Point::new(3, 4) }
        );
        assert_eq!(
            InputEvent::apply("ram", 5, 6),
            InputEvent::ApplyItem { item: "ram".into(), at: Point::new(5, 6) }
        );
    }

    #[test]
    fn tags_and_decisions() {
        assert_eq!(InputEvent::click(0, 0).tag(), "click");
        assert_eq!(InputEvent::Tick(16).tag(), "tick");
        assert!(InputEvent::click(0, 0).is_decision());
        assert!(InputEvent::Key('e').is_decision());
        assert!(!InputEvent::Tick(16).is_decision());
    }
}
