//! Video playback over encoded segments.
//!
//! §4.3: "The gaming platform is an augmented video player." This module
//! is the *player* part: it holds the project's encoded video and segment
//! table, tracks which segment a scenario is showing, loops the segment
//! while the player explores it, and switches segments on scenario
//! changes (a seek, measured by EXP-3). Decoded GOPs come from a
//! [`GopCache`] that can be **shared across sessions**: a cohort of
//! players over the same content decodes each GOP once in total, instead
//! of once per player (EXP-11 measures exactly this).

use std::collections::HashSet;
use std::sync::Arc;

use vgbl_media::cache::{GopCache, VideoId};
use vgbl_media::codec::{Decoder, EncodedVideo};
use vgbl_media::{Frame, GopChecksums, MediaError, Segment, SegmentId, SegmentTable};
use vgbl_obs::{Counter, Obs, Series, SeriesSpec};

use crate::Result;

/// GOP capacity of the private cache a standalone player creates.
const PRIVATE_CACHE_GOPS: usize = 8;

/// Accumulated playback-cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaybackStats {
    /// Frames served to the UI.
    pub frames_served: usize,
    /// Frames *this session* decoded (its cache misses, GOP walks
    /// included). Frames served from another session's decode count as 0.
    pub frames_decoded: usize,
    /// Segment switches performed.
    pub switches: usize,
    /// GOPs currently resident in the (possibly shared) cache.
    pub cached_gops: usize,
    /// Frames served by freeze-frame concealment because their GOP was
    /// corrupt or undecodable.
    pub concealed: usize,
}

/// Resolved observability handles for the player's event sites; the
/// default (all-noop) handles keep an unobserved player's hot path at
/// one `Option` check per event.
#[derive(Debug, Default)]
struct PlayObs {
    frames_served: Counter,
    frames_decoded: Counter,
    switches: Counter,
    concealed: Counter,
    // Windowed series on the playhead clock (accumulated `advance_ms`
    // wall time), so a concealment burst is attributable to *when in
    // the session* it happened.
    served_series: Series,
    concealed_series: Series,
}

/// Bin width for the playback series: half-second bins of playhead time.
const PLAY_BIN_US: u64 = 500_000;
/// Ring length for the playback series (a 32 s sliding horizon).
const PLAY_BINS: usize = 64;

/// The segment-looping video player.
#[derive(Debug)]
pub struct PlaybackController {
    video: Arc<EncodedVideo>,
    video_id: VideoId,
    segments: SegmentTable,
    decoder: Decoder,
    cache: Arc<GopCache>,
    current: SegmentId,
    /// Position within the current segment, in frames.
    cursor: usize,
    /// Microseconds of accumulated time not yet worth a whole frame.
    residual_us: u64,
    stats: PlaybackStats,
    /// Pristine per-GOP checksums; when present, every GOP is verified
    /// before it is decoded (or fetched from the shared cache), so a
    /// corrupted GOP can never poison other sessions through the cache.
    checksums: Option<GopChecksums>,
    /// Keyframes whose GOP failed verification or decoding. Memoised so
    /// a looping segment does not re-attempt a known-bad decode every
    /// frame; playback resyncs at the next intact keyframe.
    failed_keys: HashSet<usize>,
    /// The most recent successfully served frame — what concealment
    /// freezes on while waiting for the next intact keyframe.
    last_good: Option<Frame>,
    /// Playhead wall clock: total time fed through
    /// [`PlaybackController::advance_ms`], in microseconds. Timestamps
    /// the `playback.*` series so windows mean "the last N seconds of
    /// this session".
    played_us: u64,
    obs: PlayObs,
}

impl PlaybackController {
    /// Creates a standalone player positioned at the start of `initial`,
    /// with its own private decoded-GOP cache.
    ///
    /// # Errors
    /// Fails when the segment table does not match the video length or
    /// `initial` is not in the table.
    pub fn new(
        video: EncodedVideo,
        segments: SegmentTable,
        initial: SegmentId,
    ) -> Result<PlaybackController> {
        Self::shared(
            Arc::new(video),
            segments,
            initial,
            Arc::new(GopCache::new(PRIVATE_CACHE_GOPS)),
        )
    }

    /// Creates a player whose decoded GOPs live in `cache`, which may be
    /// shared with any number of other players of any videos (entries
    /// are keyed by content fingerprint, so distinct streams coexist).
    pub fn shared(
        video: Arc<EncodedVideo>,
        segments: SegmentTable,
        initial: SegmentId,
        cache: Arc<GopCache>,
    ) -> Result<PlaybackController> {
        if segments.frame_count() != video.len() {
            return Err(MediaError::InvalidSegment(format!(
                "segment table covers {} frames but video has {}",
                segments.frame_count(),
                video.len()
            ))
            .into());
        }
        segments
            .get(initial)
            .ok_or_else(|| MediaError::InvalidSegment(format!("unknown segment {initial}")))?;
        let video_id = VideoId::of(&video);
        Ok(PlaybackController {
            video,
            video_id,
            segments,
            decoder: Decoder::default(),
            cache,
            current: initial,
            cursor: 0,
            residual_us: 0,
            stats: PlaybackStats::default(),
            checksums: None,
            failed_keys: HashSet::new(),
            last_good: None,
            played_us: 0,
            obs: PlayObs::default(),
        })
    }

    /// Attaches an observability backend: served/decoded/concealed
    /// frames and segment switches additionally feed `playback.*`
    /// counters (labelled `pillar=runtime`) in `obs`'s registry,
    /// mirroring [`PlaybackStats`] through an independent accumulation
    /// path. With a noop backend this is free.
    pub fn with_obs(mut self, obs: &Obs) -> PlaybackController {
        let labels: &[(&str, &str)] = &[("pillar", "runtime")];
        self.obs = PlayObs {
            frames_served: obs.counter("playback.frames_served", labels),
            frames_decoded: obs.counter("playback.frames_decoded", labels),
            switches: obs.counter("playback.switches", labels),
            concealed: obs.counter("playback.concealed", labels),
            served_series: obs
                .series(SeriesSpec::counter("playback.served_series", PLAY_BIN_US, PLAY_BINS)),
            concealed_series: obs.series(SeriesSpec::counter(
                "playback.concealed_series",
                PLAY_BIN_US,
                PLAY_BINS,
            )),
        };
        self
    }

    /// Enables GOP integrity verification against `checksums` (built
    /// from the pristine stream, see [`GopChecksums::build`]). With
    /// verification on, a GOP whose payload was damaged in transit or
    /// storage is detected *before* decoding and concealed, instead of
    /// producing garbage frames or a mid-decode error.
    pub fn with_integrity(mut self, checksums: GopChecksums) -> PlaybackController {
        self.checksums = Some(checksums);
        self
    }

    /// The segment currently playing.
    pub fn current_segment(&self) -> &Segment {
        self.segments.get(self.current).expect("current id stays valid")
    }

    /// Playback-cost counters so far.
    pub fn stats(&self) -> PlaybackStats {
        let mut s = self.stats;
        s.cached_gops = self.cache.stats().resident_gops;
        s
    }

    /// The decoded-GOP cache this player uses (shared or private).
    pub fn cache(&self) -> &Arc<GopCache> {
        &self.cache
    }

    /// The encoded video being played.
    pub fn video(&self) -> &EncodedVideo {
        &self.video
    }

    /// The absolute source-frame index currently displayed.
    pub fn absolute_frame(&self) -> usize {
        let seg = self.current_segment();
        seg.start + self.cursor
    }

    /// Switches to another segment (a scenario change), rewinding to its
    /// first frame. Returns the number of frames decoded to show it
    /// (0 when the target's GOP was already resident).
    pub fn switch_segment(&mut self, id: SegmentId) -> Result<usize> {
        self.seek_segment(id)?;
        let before = self.stats.frames_decoded;
        self.current_frame()?;
        Ok(self.stats.frames_decoded - before)
    }

    /// Moves the playhead to the first frame of `id` **without serving a
    /// frame**. This is [`PlaybackController::switch_segment`] minus the
    /// implicit render: the batched cohort runner (`crate::batch`) moves
    /// every session first, prewarms the union of needed GOPs once, and
    /// only then serves — so the switch is counted here and the serve
    /// happens on the follow-up [`PlaybackController::current_frame`].
    pub fn seek_segment(&mut self, id: SegmentId) -> Result<()> {
        self.segments
            .get(id)
            .ok_or_else(|| MediaError::InvalidSegment(format!("unknown segment {id}")))?;
        self.current = id;
        self.cursor = 0;
        self.residual_us = 0;
        self.stats.switches += 1;
        self.obs.switches.inc();
        Ok(())
    }

    /// The keyframe whose GOP the next [`PlaybackController::current_frame`]
    /// call will need. Batch planners use this to prewarm the shared
    /// cache; it performs no decode and touches no counters.
    pub fn pending_keyframe(&self) -> Result<usize> {
        Ok(self.video.keyframe_before(self.absolute_frame())?)
    }

    /// Advances playback by `ms` of wall time, looping within the current
    /// segment. Returns how many frames the cursor moved.
    ///
    /// Arithmetic saturates: a pathological `ms` near `u64::MAX` pins
    /// the playhead clock at the end of time instead of wrapping it
    /// back to zero (the same shape as the `deadline_ms` overflow fix).
    pub fn advance_ms(&mut self, ms: u64) -> usize {
        let frame_us = self
            .video
            .rate
            .frame_duration()
            .as_micros()
            .max(1);
        let advance_us = ms.saturating_mul(1000);
        self.played_us = self.played_us.saturating_add(advance_us);
        let total_us = self.residual_us.saturating_add(advance_us);
        let steps = (total_us / frame_us) as usize;
        self.residual_us = total_us % frame_us;
        let len = self.current_segment().len().max(1);
        self.cursor = (self.cursor + steps) % len;
        steps
    }

    /// Serves the frame under the cursor, from the cache when its GOP is
    /// resident, decoding the GOP (once, for everyone sharing the cache)
    /// when it is not.
    ///
    /// When the GOP is corrupt (checksum mismatch, see
    /// [`PlaybackController::with_integrity`]) or fails to decode, the
    /// player *conceals* instead of erroring: it freezes on the last
    /// good frame, counts the loss in [`PlaybackStats::concealed`], and
    /// resynchronises automatically at the next intact keyframe (GOPs
    /// are independently decodable, so one bad GOP never cascades).
    ///
    /// # Errors
    /// Only structural failures escape: a cursor outside the video, or
    /// an unrecoverable GOP before *any* frame was served (nothing to
    /// freeze on).
    pub fn current_frame(&mut self) -> Result<Frame> {
        let abs = self.absolute_frame();
        let key = self.video.keyframe_before(abs)?;
        match self.fetch_gop(key) {
            Ok(gop) => {
                self.stats.frames_served += 1;
                self.obs.frames_served.inc();
                self.obs.served_series.record(self.played_us, 1);
                let frame = gop[abs - key].clone();
                self.last_good = Some(frame.clone());
                Ok(frame)
            }
            Err(e) => match &self.last_good {
                Some(frame) => {
                    // Freeze-frame concealment; the cursor keeps
                    // advancing, so the next intact GOP resyncs.
                    self.stats.frames_served += 1;
                    self.stats.concealed += 1;
                    self.obs.frames_served.inc();
                    self.obs.served_series.record(self.played_us, 1);
                    self.obs.concealed.inc();
                    self.obs.concealed_series.record(self.played_us, 1);
                    Ok(frame.clone())
                }
                None => Err(e),
            },
        }
    }

    /// Verifies (when integrity is enabled) and decodes the GOP at
    /// `key`, memoising failures so known-bad GOPs are not re-attempted
    /// on every looped frame.
    fn fetch_gop(&mut self, key: usize) -> Result<Arc<Vec<Frame>>> {
        if self.failed_keys.contains(&key) {
            return Err(MediaError::CorruptGop { keyframe: key }.into());
        }
        if let Some(sums) = &self.checksums {
            if let Err(e) = sums.verify(&self.video, key) {
                self.failed_keys.insert(key);
                return Err(e.into());
            }
        }
        let mut decoded = 0usize;
        let outcome = self.cache.get_or_decode(self.video_id, key, || {
            let frames = self.decoder.decode_gop_at(&self.video, key)?;
            decoded = frames.len();
            Ok(frames)
        });
        match outcome {
            Ok(gop) => {
                self.stats.frames_decoded += decoded;
                self.obs.frames_decoded.add(decoded as u64);
                Ok(gop)
            }
            Err(e) => {
                self.failed_keys.insert(key);
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::codec::{EncodeConfig, Encoder};
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec};
    use vgbl_media::timeline::FrameRate;

    /// 3 segments of 10 frames each (30 frames total), GOP 5.
    fn encoded_video() -> (EncodedVideo, SegmentTable) {
        let footage = FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(10, Rgb::new(200, 40, 40)),
                ShotSpec::plain(10, Rgb::new(40, 200, 40)),
                ShotSpec::plain(10, Rgb::new(40, 40, 200)),
            ],
            noise_seed: 9,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop: 5, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let table = SegmentTable::from_cuts(30, &[10, 20]).unwrap();
        (video, table)
    }

    fn player() -> PlaybackController {
        let (video, table) = encoded_video();
        PlaybackController::new(video, table, SegmentId(0)).unwrap()
    }

    #[test]
    fn construction_validates() {
        let mut p = player();
        assert_eq!(p.current_segment().id, SegmentId(0));
        assert_eq!(p.absolute_frame(), 0);
        assert!(p.current_frame().is_ok());
        // Mismatched table rejected.
        let video2 = p.video().clone();
        let bad_table = SegmentTable::from_cuts(29, &[10]).unwrap();
        assert!(PlaybackController::new(video2, bad_table, SegmentId(0)).is_err());
    }

    #[test]
    fn advance_loops_within_segment() {
        let mut p = player();
        // 30fps → one frame every 33.333 ms. 100 ms ≈ 3 frames.
        let moved = p.advance_ms(100);
        assert_eq!(moved, 3);
        assert_eq!(p.absolute_frame(), 3);
        // 400 ms more ≈ 12 frames → wraps inside the 10-frame segment.
        p.advance_ms(400);
        assert!(p.absolute_frame() < 10);
        // Never leaves the segment.
        for _ in 0..50 {
            p.advance_ms(77);
            assert!(p.current_segment().contains(p.absolute_frame()));
        }
    }

    #[test]
    fn residual_time_accumulates() {
        let mut p = player();
        // 20 ms < one frame: no step, but residual carries.
        assert_eq!(p.advance_ms(20), 0);
        assert_eq!(p.advance_ms(20), 1); // 40 ms total → 1 frame
    }

    #[test]
    fn switch_segment_seeks_and_counts() {
        let mut p = player();
        let decoded = p.switch_segment(SegmentId(2)).unwrap();
        // Segment 2 starts at frame 20, which is a keyframe (GOP 5): one
        // GOP decode of 5 frames.
        assert_eq!(decoded, 5);
        assert_eq!(p.absolute_frame(), 20);
        let f = p.current_frame().unwrap();
        // Blue-ish shot.
        let c = f.get(1, 1).unwrap();
        assert!(c.b > c.r && c.b > c.g);
        assert!(p.switch_segment(SegmentId(9)).is_err());
        assert_eq!(p.stats().switches, 1);
    }

    #[test]
    fn cache_avoids_redecoding_in_loops() {
        let mut p = player();
        p.current_frame().unwrap();
        let decoded_after_first = p.stats().frames_decoded;
        // Loop through the same segment repeatedly.
        for _ in 0..30 {
            p.advance_ms(33);
            p.current_frame().unwrap();
        }
        let decoded_after_loop = p.stats().frames_decoded;
        // The 10-frame segment spans 2 GOPs (10 frames); both decode once.
        assert!(decoded_after_loop <= decoded_after_first + 10);
        assert!(p.stats().frames_served >= 30);
        assert_eq!(p.stats().cached_gops, 2);
    }

    #[test]
    fn frames_match_direct_decode() {
        let mut p = player();
        let direct = Decoder::default().decode_all(p.video()).unwrap();
        for target in [0usize, 3, 7] {
            p.cursor = target;
            let f = p.current_frame().unwrap();
            assert_eq!(f, direct.frames[target], "frame {target}");
        }
        p.switch_segment(SegmentId(1)).unwrap();
        let f = p.current_frame().unwrap();
        assert_eq!(f, direct.frames[10]);
    }

    /// Corrupts the GOP starting at `keyframe` by flipping payload bits
    /// of its first non-empty frame.
    fn corrupt_gop(video: &mut EncodedVideo, keyframe: usize, gop: usize) {
        let victim = (keyframe..keyframe + gop)
            .find(|&i| !video.frames[i].data.is_empty())
            .expect("GOP has payload bytes");
        for b in &mut video.frames[victim].data {
            *b ^= 0xA5;
        }
    }

    #[test]
    fn faulty_gop_is_concealed_and_playback_resyncs() {
        let (mut video, table) = encoded_video();
        let sums = GopChecksums::build(&video);
        corrupt_gop(&mut video, 5, 5); // second GOP of segment 0
        let mut p = PlaybackController::new(video, table, SegmentId(0))
            .unwrap()
            .with_integrity(sums);
        let direct_first = p.current_frame().unwrap(); // frame 0, intact GOP
        assert_eq!(p.stats().concealed, 0);
        // Walk into the corrupt GOP: frames freeze on the last good one.
        p.cursor = 7;
        let frozen = p.current_frame().unwrap();
        assert_eq!(frozen, direct_first, "freeze-frame shows the last good frame");
        p.cursor = 9;
        p.current_frame().unwrap();
        assert_eq!(p.stats().concealed, 2);
        // The loop wraps back into the intact GOP: resync, real frames again.
        p.cursor = 2;
        let resynced = p.current_frame().unwrap();
        let direct = Decoder::default().decode_gop_at(p.video(), 0).unwrap();
        assert_eq!(resynced, direct[2], "resynced frame is the real frame 2");
        assert_eq!(p.stats().concealed, 2, "no concealment after resync");
        assert!(p.stats().frames_served >= 4);
    }

    #[test]
    fn faulty_initial_gop_with_nothing_to_freeze_on_errors() {
        let (mut video, table) = encoded_video();
        let sums = GopChecksums::build(&video);
        corrupt_gop(&mut video, 0, 5);
        let mut p = PlaybackController::new(video, table, SegmentId(0))
            .unwrap()
            .with_integrity(sums);
        let err = p.current_frame().unwrap_err();
        assert!(matches!(
            err,
            crate::RuntimeError::Media(MediaError::CorruptGop { keyframe: 0 })
        ));
        assert_eq!(p.stats().concealed, 0);
    }

    #[test]
    fn faulty_decode_without_checksums_is_memoised_and_concealed() {
        let (mut video, table) = encoded_video();
        // Truncate a payload so the bitstream itself fails to decode —
        // the detection path when no pristine checksums are available.
        let victim = (5..10)
            .find(|&i| video.frames[i].data.len() > 2)
            .expect("inter frame with payload");
        video.frames[victim].data.truncate(1);
        let mut p = PlaybackController::new(video, table, SegmentId(0)).unwrap();
        p.current_frame().unwrap(); // intact first GOP
        let decoded_before = p.stats().frames_decoded;
        p.cursor = 8;
        p.current_frame().unwrap(); // concealed
        p.current_frame().unwrap(); // concealed again, decode NOT retried
        assert_eq!(p.stats().concealed, 2);
        assert_eq!(
            p.stats().frames_decoded,
            decoded_before,
            "known-bad GOP must not be re-decoded every frame"
        );
    }

    #[test]
    fn shared_cache_deduplicates_across_players() {
        let (video, table) = encoded_video();
        let video = Arc::new(video);
        let cache = Arc::new(GopCache::new(16));
        let mut players: Vec<PlaybackController> = (0..4)
            .map(|_| {
                PlaybackController::shared(
                    video.clone(),
                    table.clone(),
                    SegmentId(0),
                    cache.clone(),
                )
                .unwrap()
            })
            .collect();
        // Every player walks every segment.
        for p in &mut players {
            for seg in [0u32, 1, 2] {
                p.switch_segment(SegmentId(seg)).unwrap();
                for _ in 0..12 {
                    p.advance_ms(33);
                    p.current_frame().unwrap();
                }
            }
        }
        // 6 GOPs of 5 frames: decoded once in total, not once per player.
        let total_decoded: usize = players.iter().map(|p| p.stats().frames_decoded).sum();
        assert_eq!(total_decoded, 30, "each GOP decodes exactly once");
        let s = cache.stats();
        assert_eq!(s.misses, 6);
        assert!(s.hits > 100, "hits {}", s.hits);
    }

    #[test]
    fn obs_counters_mirror_playback_stats() {
        let (mut video, table) = encoded_video();
        let sums = GopChecksums::build(&video);
        corrupt_gop(&mut video, 5, 5);
        let obs = Obs::recording();
        let mut p = PlaybackController::new(video, table, SegmentId(0))
            .unwrap()
            .with_integrity(sums)
            .with_obs(&obs);
        p.current_frame().unwrap();
        p.cursor = 7;
        p.current_frame().unwrap(); // concealed
        p.switch_segment(SegmentId(2)).unwrap();
        p.current_frame().unwrap();
        let s = p.stats();
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("playback.frames_served"), s.frames_served as u64);
        assert_eq!(snap.counter_total("playback.frames_decoded"), s.frames_decoded as u64);
        assert_eq!(snap.counter_total("playback.switches"), s.switches as u64);
        assert_eq!(snap.counter_total("playback.concealed"), s.concealed as u64);
        assert_eq!(snap.counter_total("playback.concealed"), 1);
    }

    #[test]
    fn disabled_shared_cache_decodes_every_lookup() {
        let (video, table) = encoded_video();
        let mut p = PlaybackController::shared(
            Arc::new(video),
            table,
            SegmentId(0),
            Arc::new(GopCache::new(0)),
        )
        .unwrap();
        let f1 = p.current_frame().unwrap();
        let f2 = p.current_frame().unwrap();
        assert_eq!(f1, f2);
        // Two lookups, two full GOP decodes.
        assert_eq!(p.stats().frames_decoded, 10);
        assert_eq!(p.stats().cached_gops, 0);
    }
}
